"""Update aggregation rules for federated training."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AlgorithmError


def fedavg(updates: Sequence[np.ndarray], weights: Sequence[float]) -> np.ndarray:
    """Weighted average of worker updates (weights ~ local sample counts)."""
    if not updates:
        raise AlgorithmError("no updates to aggregate")
    if len(updates) != len(weights):
        raise AlgorithmError("updates/weights length mismatch")
    total = float(sum(weights))
    if total <= 0:
        raise AlgorithmError("non-positive total weight")
    stacked = np.stack([np.asarray(u, dtype=np.float64) for u in updates])
    weight_column = np.asarray(weights, dtype=np.float64)[:, None] / total
    return (stacked * weight_column).sum(axis=0)


def fedsgd(updates: Sequence[np.ndarray]) -> np.ndarray:
    """Unweighted mean of worker gradients."""
    if not updates:
        raise AlgorithmError("no updates to aggregate")
    return np.mean(np.stack([np.asarray(u, dtype=np.float64) for u in updates]), axis=0)
