"""The federated training loop with DP and secure-aggregation paths."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.context import DataView, ExecutionContext
from repro.durability.checkpoint import ExperimentCheckpoint
from repro.errors import AlgorithmError, PrivacyError
from repro.federation.controller import Federation
from repro.federation.messages import new_job_id
from repro.federation.scheduler import plan_shipping
from repro.learning.aggregation import fedsgd
from repro.observability.log import get_logger
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanisms import gaussian_sigma
from repro.smpc.cluster import NoiseSpec
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)

logger = get_logger("learning.trainer")


def _config_fingerprint(config: "TrainingConfig") -> str:
    """Content hash of a training config (the checkpoint-compatibility key)."""
    from dataclasses import asdict

    from repro.core.plan import canonical_fingerprint

    return canonical_fingerprint(asdict(config))


@udf(params_in=literal(), return_type=[transfer()])
def publish_params(params_in):
    """Materialize model parameters as a broadcastable transfer."""
    return {"weights": params_in}


@udf(data=relation(), covariates=literal(), metadata=literal(), return_type=[secure_transfer()])
def feature_moments_local(data, covariates, metadata):
    """Design-column moments for global feature standardization."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    return {
        "n": {"data": int(design.shape[0]), "operation": "sum"},
        "sums": {"data": design.sum(axis=0).tolist(), "operation": "sum"},
        "sumsq": {"data": (design**2).sum(axis=0).tolist(), "operation": "sum"},
    }


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    scaler=literal(),
    model_kind=literal(),
    params=transfer(),
    clip_norm=literal(),
    noise_sigma=literal(),
    seed=literal(),
    return_type=[transfer()],
)
def dp_update_local(
    data, covariates, response, positive_level, metadata, scaler, model_kind, params,
    clip_norm, noise_sigma, seed,
):
    """Local-DP path: clipped gradient + Gaussian noise, per worker."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    design = _h.apply_scaler(design, scaler)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    weights = np.asarray(params["weights"], dtype=np.float64)
    gradient = _h.model_gradient(design, y, weights, model_kind)
    norm = float(np.linalg.norm(gradient))
    if norm > clip_norm and norm > 0:
        gradient = gradient * (clip_norm / norm)
    rng = np.random.default_rng(seed)
    noisy = gradient + rng.normal(0.0, noise_sigma, gradient.shape)
    return {"gradient": noisy.tolist(), "n": int(len(y))}


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    scaler=literal(),
    model_kind=literal(),
    params=transfer(),
    clip_norm=literal(),
    return_type=[secure_transfer()],
)
def sa_update_local(data, covariates, response, positive_level, metadata, scaler, model_kind, params, clip_norm):
    """Secure-aggregation path: the clipped exact gradient, secret-shared."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    design = _h.apply_scaler(design, scaler)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    weights = np.asarray(params["weights"], dtype=np.float64)
    gradient = _h.model_gradient(design, y, weights, model_kind)
    norm = float(np.linalg.norm(gradient))
    if norm > clip_norm and norm > 0:
        gradient = gradient * (clip_norm / norm)
    return {"gradient": {"data": gradient.tolist(), "operation": "sum"}}


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    scaler=literal(),
    params=transfer(),
    return_type=[secure_transfer()],
)
def newton_update_local(data, covariates, response, positive_level, metadata, scaler, params):
    """Second-order path: exact local gradient and Hessian, secret-shared.

    The paper notes "excellent results for model training with other methods
    too"; the distributed Newton update is the natural one when the model is
    logistic — each round aggregates the full curvature, so convergence takes
    a handful of rounds instead of dozens of SGD steps.
    """
    design, names = _h.build_design_matrix(data, covariates, metadata)
    design = _h.apply_scaler(design, scaler)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    weights = np.asarray(params["weights"], dtype=np.float64)
    stats = _h.logistic_gradient_hessian(design, y, weights)
    return {
        "gradient": {"data": stats["gradient"].tolist(), "operation": "sum"},
        "hessian": {"data": stats["hessian"].tolist(), "operation": "sum"},
    }


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    scaler=literal(),
    model_kind=literal(),
    params=transfer(),
    return_type=[secure_transfer()],
)
def evaluate_local(data, covariates, response, positive_level, metadata, scaler, model_kind, params):
    """Diagnostic evaluation: loss and correct-prediction sums."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    design = _h.apply_scaler(design, scaler)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    weights = np.asarray(params["weights"], dtype=np.float64)
    loss_sum, correct = _h.model_loss_sums(design, y, weights, model_kind)
    return {
        "loss_sum": {"data": loss_sum, "operation": "sum"},
        "correct": {"data": correct, "operation": "sum"},
        "n": {"data": int(len(y)), "operation": "sum"},
    }


@dataclass(frozen=True)
class TrainingConfig:
    """One federated training run."""

    data_model: str
    datasets: tuple[str, ...]
    response: str
    covariates: tuple[str, ...]
    mode: str = "sa"  # 'dp' | 'sa' | 'none' | 'newton'
    model_kind: str = "logistic"  # 'logistic' | 'linear'
    rounds: int = 20
    learning_rate: float = 0.5
    clip_norm: float = 1.0
    epsilon: float = 1.0  # total privacy budget across all rounds
    delta: float = 1e-5
    seed: int = 0
    evaluate_every: int = 1
    standardize: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("dp", "sa", "none", "newton"):
            raise AlgorithmError(f"unknown training mode {self.mode!r}")
        if self.rounds < 1:
            raise AlgorithmError("training needs at least one round")
        if self.mode in ("dp", "sa") and self.epsilon <= 0:
            raise PrivacyError("epsilon must be positive for private training")
        if self.model_kind not in ("logistic", "linear"):
            raise AlgorithmError(f"unknown model kind {self.model_kind!r}")
        if self.mode == "newton" and self.model_kind != "logistic":
            raise AlgorithmError("the Newton path is implemented for logistic models")


@dataclass
class TrainingResult:
    """Final weights plus the per-round diagnostics."""

    weights: np.ndarray
    design_names: list[str]
    history: list[dict[str, float]] = field(default_factory=list)
    epsilon_spent: float = 0.0
    delta_spent: float = 0.0
    mode: str = "none"

    @property
    def final_accuracy(self) -> float:
        return self.history[-1]["accuracy"] if self.history else float("nan")

    @property
    def final_loss(self) -> float:
        return self.history[-1]["loss"] if self.history else float("nan")


class FederatedTrainer:
    """Drives the paper's training cycle against a federation."""

    def __init__(self, federation: Federation) -> None:
        self.federation = federation

    def train(
        self,
        config: TrainingConfig,
        checkpoints=None,
        checkpoint_id: str | None = None,
        stop_after_round: int | None = None,
    ) -> TrainingResult:
        """Run (or resume) one training cycle.

        With ``checkpoints`` (a
        :class:`~repro.durability.checkpoint.CheckpointStore`) the trainer
        persists round-granular state — completed-round counter, weights,
        history, recorded privacy spend — after every round, keyed by
        ``checkpoint_id`` and fingerprinted over the config so a checkpoint
        from a different run is never resumed.  A matching checkpoint fast-
        forwards the loop to its round; the noise-free modes (``none``,
        ``newton``) make the resumed trajectory byte-identical to an
        uninterrupted one.  ``stop_after_round`` returns early after that
        many completed rounds (the crash-injection hook for recovery tests);
        the checkpoint is deleted only when all rounds complete.
        """
        master = self.federation.master
        master.refresh_catalog()
        availability = master.availability.get(config.data_model, {})
        plan = plan_shipping(availability, config.datasets)
        n_workers = len(plan.assignments)

        metadata = self._metadata(config)
        design_names = self._design_names(config, metadata)
        n_features = len(design_names)
        positive_level = self._positive_level(config, metadata)

        per_round_epsilon = config.epsilon / config.rounds
        per_round_delta = config.delta / config.rounds
        train_job = new_job_id("train")
        accountant = PrivacyAccountant(
            epsilon_budget=config.epsilon * (1 + 1e-9) if config.mode != "none" else None,
            audit=master.audit,
            scope=train_job,
        )
        sigma = (
            gaussian_sigma(per_round_epsilon, per_round_delta, config.clip_norm)
            if config.mode in ("dp", "sa")
            else 0.0
        )

        # Separate contexts: SA updates get in-protocol noise, evaluation and
        # DP updates do not (DP noise is injected at the worker).
        noise = NoiseSpec("gaussian", sigma) if config.mode == "sa" else None
        update_context = ExecutionContext(
            master, config.data_model, plan.assignments,
            aggregation="smpc" if self.federation.smpc_cluster else "plain",
            noise=noise, job_prefix=train_job,
        )
        eval_context = ExecutionContext(
            master, config.data_model, plan.assignments,
            aggregation="smpc" if self.federation.smpc_cluster else "plain",
            job_prefix=new_job_id("eval"),
        )

        variables = [config.response] + list(config.covariates)
        view = DataView.of(variables)
        weights = np.zeros(n_features)
        history: list[dict[str, float]] = []
        start_round = 0
        fingerprint = _config_fingerprint(config)
        if checkpoints is not None and checkpoint_id is None:
            checkpoint_id = f"train_{fingerprint[:16]}"
        if checkpoints is not None:
            saved = checkpoints.load(checkpoint_id)
            if saved is not None and saved.fingerprint == fingerprint:
                state = saved.state
                start_round = int(state["round"])
                weights = np.asarray(state["weights"], dtype=np.float64)
                history = [dict(entry) for entry in state["history"]]
                # Re-record the completed rounds' spend so budget
                # enforcement (and the audit trail of this process) covers
                # the whole logical run, not just the resumed tail.
                if config.mode in ("dp", "sa"):
                    for _ in range(start_round):
                        accountant.record(per_round_epsilon, per_round_delta)
                logger.info(
                    "training_resumed",
                    checkpoint_id=checkpoint_id,
                    round=start_round,
                    rounds=config.rounds,
                )
        scaler = None
        if config.standardize:
            moments_handle = eval_context.local_run(
                feature_moments_local,
                {"data": view, "covariates": list(config.covariates), "metadata": metadata},
                [True],
            )
            moments = eval_context.get_transfer_data(moments_handle)
            n_rows = max(float(moments["n"]), 1.0)
            means = np.asarray(moments["sums"], dtype=np.float64) / n_rows
            variances = np.clip(
                np.asarray(moments["sumsq"], dtype=np.float64) / n_rows - means**2, 0.0, None
            )
            stds = np.sqrt(variances)
            stds[0] = 0.0  # never scale the intercept
            scaler = {"means": means.tolist(), "stds": stds.tolist()}
        common = {
            "covariates": list(config.covariates),
            "response": config.response,
            "positive_level": positive_level,
            "metadata": metadata,
            "scaler": scaler,
            "model_kind": config.model_kind,
        }
        for round_index in range(start_round, config.rounds):
            params_transfer = update_context.global_run(
                publish_params, {"params_in": weights.tolist()}, [True]
            )
            if config.mode == "dp":
                handle = update_context.local_run(
                    dp_update_local,
                    {
                        "data": view,
                        **common,
                        "params": params_transfer,
                        "clip_norm": config.clip_norm,
                        "noise_sigma": sigma,
                        "seed": config.seed + round_index,
                    },
                    [True],
                )
                per_worker = update_context.get_transfer_data(handle)
                gradient = fedsgd([np.asarray(t["gradient"]) for t in per_worker])
                weights = weights - config.learning_rate * gradient
            elif config.mode == "newton":
                newton_args = {k: v for k, v in common.items() if k != "model_kind"}
                handle = update_context.local_run(
                    newton_update_local,
                    {"data": view, **newton_args, "params": params_transfer},
                    [True],
                )
                aggregate = update_context.get_transfer_data(handle)
                gradient = np.asarray(aggregate["gradient"], dtype=np.float64)
                hessian = np.asarray(aggregate["hessian"], dtype=np.float64)
                weights = weights + np.linalg.solve(
                    hessian + 1e-10 * np.eye(n_features), gradient
                )
            else:
                handle = update_context.local_run(
                    sa_update_local,
                    {
                        "data": view,
                        **common,
                        "params": params_transfer,
                        "clip_norm": config.clip_norm,
                    },
                    [True],
                )
                aggregate = update_context.get_transfer_data(handle)
                gradient = np.asarray(aggregate["gradient"], dtype=np.float64) / n_workers
                weights = weights - config.learning_rate * gradient
            if config.mode in ("dp", "sa"):
                accountant.record(per_round_epsilon, per_round_delta)

            if (round_index + 1) % config.evaluate_every == 0 or round_index == config.rounds - 1:
                eval_params = eval_context.global_run(
                    publish_params, {"params_in": weights.tolist()}, [True]
                )
                eval_handle = eval_context.local_run(
                    evaluate_local,
                    {"data": view, **common, "params": eval_params},
                    [True],
                )
                metrics = eval_context.get_transfer_data(eval_handle)
                n_total = max(float(metrics["n"]), 1.0)
                entry = {
                    "round": round_index + 1,
                    "loss": float(metrics["loss_sum"]) / n_total,
                    "accuracy": float(metrics["correct"]) / n_total,
                }
                history.append(entry)
                logger.info("training_round", mode=config.mode, **entry)
            if checkpoints is not None:
                checkpoints.save(
                    ExperimentCheckpoint(
                        job_id=checkpoint_id,
                        fingerprint=fingerprint,
                        reads=[],
                        state={
                            "round": round_index + 1,
                            "weights": weights.tolist(),
                            "history": history,
                        },
                    )
                )
            if stop_after_round is not None and round_index + 1 >= stop_after_round:
                update_context.cleanup()
                eval_context.cleanup()
                spent = accountant.spent()
                logger.info(
                    "training_stopped",
                    rounds_completed=round_index + 1,
                    rounds=config.rounds,
                )
                return TrainingResult(
                    weights=weights,
                    design_names=design_names,
                    history=history,
                    epsilon_spent=spent.epsilon,
                    delta_spent=spent.delta,
                    mode=config.mode,
                )
        if checkpoints is not None:
            checkpoints.delete(checkpoint_id)
        update_context.cleanup()
        eval_context.cleanup()
        spent = accountant.spent()
        logger.info(
            "training_finished",
            mode=config.mode,
            rounds=config.rounds,
            epsilon_spent=spent.epsilon,
            delta_spent=spent.delta,
            final_loss=history[-1]["loss"] if history else None,
            final_accuracy=history[-1]["accuracy"] if history else None,
        )
        return TrainingResult(
            weights=weights,
            design_names=design_names,
            history=history,
            epsilon_spent=spent.epsilon,
            delta_spent=spent.delta,
            mode=config.mode,
        )

    # ------------------------------------------------------------- internals

    def _metadata(self, config: TrainingConfig) -> dict[str, Any]:
        from repro.data.cdes import cde_registry

        if config.data_model not in cde_registry:
            return {}
        model = cde_registry.get(config.data_model)
        return model.metadata_for([config.response] + list(config.covariates))

    def _design_names(self, config: TrainingConfig, metadata: dict[str, Any]) -> list[str]:
        names = ["intercept"]
        for variable in config.covariates:
            info = metadata.get(variable, {})
            if info.get("is_categorical"):
                for level in list(info.get("enumerations", []))[1:]:
                    names.append(f"{variable}[{level}]")
            else:
                names.append(variable)
        return names

    def _positive_level(self, config: TrainingConfig, metadata: dict[str, Any]):
        info = metadata.get(config.response, {})
        if info.get("is_categorical"):
            levels = list(info.get("enumerations", []))
            if len(levels) != 2:
                raise AlgorithmError(
                    f"training needs a binary response; {config.response!r} has "
                    f"{len(levels)} levels"
                )
            return levels[1]
        return None
