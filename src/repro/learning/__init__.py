"""Federated model training (paper §2, *Training*).

"The Master sends to Workers (data holders) the current model parameters.
Each Worker computes the parameter updates of the model on his local
dataset.  Next, we have two options: use differential privacy (DP) or secure
aggregation (SA)."

- **DP path** — each worker clips its update and injects Gaussian noise
  locally before the update leaves the node (local DP; the master sees a
  noisy individual update per worker).
- **SA path** — each worker clips and secret-shares its exact update to the
  SMPC cluster; noise is injected *inside* the protocol once, on the sum.

At equal privacy budget the SA path adds one noise draw where local DP adds
one per worker — the utility gap the E6 benchmark measures.
"""

from repro.learning.models import LinearModel, LogisticModel
from repro.learning.trainer import FederatedTrainer, TrainingConfig, TrainingResult

__all__ = [
    "FederatedTrainer",
    "LinearModel",
    "LogisticModel",
    "TrainingConfig",
    "TrainingResult",
]
