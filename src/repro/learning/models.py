"""Gradient-trained models for the federated learning loop."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlgorithmError
from repro.udfgen.udf_helpers import sigmoid


@dataclass
class LogisticModel:
    """Binary logistic classifier trained by (federated) gradient descent."""

    weights: np.ndarray

    @classmethod
    def zeros(cls, n_features: int) -> "LogisticModel":
        return cls(np.zeros(n_features))

    def predict_probability(self, design: np.ndarray) -> np.ndarray:
        return sigmoid(design @ self.weights)

    def predict(self, design: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_probability(design) >= threshold).astype(np.int64)

    def gradient(self, design: np.ndarray, response: np.ndarray) -> np.ndarray:
        """Mean negative log-likelihood gradient."""
        if len(response) == 0:
            raise AlgorithmError("cannot compute a gradient on zero rows")
        probabilities = self.predict_probability(design)
        return design.T @ (probabilities - response) / len(response)

    def loss(self, design: np.ndarray, response: np.ndarray) -> float:
        probabilities = np.clip(self.predict_probability(design), 1e-12, 1 - 1e-12)
        return float(
            -np.mean(
                response * np.log(probabilities)
                + (1 - response) * np.log(1 - probabilities)
            )
        )


@dataclass
class LinearModel:
    """Linear regressor trained by (federated) gradient descent."""

    weights: np.ndarray

    @classmethod
    def zeros(cls, n_features: int) -> "LinearModel":
        return cls(np.zeros(n_features))

    def predict(self, design: np.ndarray) -> np.ndarray:
        return design @ self.weights

    def gradient(self, design: np.ndarray, response: np.ndarray) -> np.ndarray:
        """Mean squared-error gradient."""
        if len(response) == 0:
            raise AlgorithmError("cannot compute a gradient on zero rows")
        residuals = self.predict(design) - response
        return 2.0 * design.T @ residuals / len(response)

    def loss(self, design: np.ndarray, response: np.ndarray) -> float:
        residuals = self.predict(design) - response
        return float(np.mean(residuals**2))
