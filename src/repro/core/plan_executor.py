"""Dependency-driven plan execution and cross-experiment step dedup.

:class:`PlanExecutor` runs the flow-plan IR recorded by the
:class:`~repro.core.context.ExecutionContext`:

- ``mode="eager"`` executes each node inline at record time — the
  imperative-equivalent reference path (and the forced mode under an
  active simulation, where scheduling must stay cooperative),
- ``mode="pipeline"`` dispatches every node the moment it is submitted:
  each node runs on its own daemon thread that first waits for its
  dependency edges, so independent local steps in one flow overlap on the
  shared transport fan-out pool while handles materialize only at true
  data dependencies.

Both modes run the *same* node bodies and emit the same span shapes, which
is what makes the plan/imperative equivalence suite a byte-level check.

:class:`StepCache` adds cross-experiment dedup: local-step nodes are
fingerprinted (UDF identity + canonical bound args + data view + worker
set + catalog epoch; references contribute upstream fingerprints, never
physical table names) and identical steps submitted by concurrent
experiments share one computation.  In-flight dedup means seven of eight
identical concurrent experiments wait on the first instead of recomputing.
Cached worker tables are refcounted: the owner's cleanup retains them
while any entry is live, and entries die on catalog-epoch change or LRU
capacity pressure.
"""

from __future__ import annotations

import contextvars
import threading
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.plan import (
    BarrierNode,
    BroadcastNode,
    GlobalStepNode,
    LocalStepNode,
    PlainAggregateNode,
    PlanArg,
    PlanNode,
    SecureAggregateNode,
    canonical_fingerprint,
    literal_key,
    source_hash,
)
from repro.errors import AlgorithmError, ExperimentCancelledError
from repro.federation import transport as transport_mod
from repro.observability import profiler as profiler_mod
from repro.observability.trace import tracer
from repro.simtest import hooks as sim_hooks
from repro.udfgen.decorators import udf_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import ExecutionContext

#: How often a blocked cache waiter re-checks its experiment's cancel flag.
_WAIT_POLL_SECONDS = 0.05

DEFAULT_CACHE_CAPACITY = 128


# --------------------------------------------------------------- step cache


class _CacheEntry:
    __slots__ = (
        "fingerprint", "state", "event", "owner", "outputs",
        "refs", "epoch", "seq",
    )

    COMPUTING = "computing"
    READY = "ready"

    def __init__(self, fingerprint: str, owner: str, epoch: int, seq: int) -> None:
        self.fingerprint = fingerprint
        self.state = self.COMPUTING
        self.event = threading.Event()
        self.owner = owner
        self.outputs: list[dict[str, Any]] | None = None
        self.refs: set[str] = {owner}
        self.epoch = epoch
        self.seq = seq

    def tables(self) -> dict[str, list[str]]:
        """Every worker table this entry pins, keyed by worker."""
        pinned: dict[str, list[str]] = {}
        for output in self.outputs or ():
            for worker, table in output["tables"].items():
                pinned.setdefault(worker, []).append(table)
        return pinned


class _Claim:
    __slots__ = ("hit", "outputs", "owner")

    def __init__(self, hit: bool, outputs=None, owner: str | None = None) -> None:
        self.hit = hit
        self.outputs = outputs
        self.owner = owner


class StepCache:
    """Cross-experiment local-step result cache (fingerprint keyed).

    One instance lives on each :class:`~repro.federation.controller.Federation`;
    every runner against that federation shares it.  Hit/miss totals feed
    the unified metrics registry (``repro_plan_cache_hits_total`` /
    ``repro_plan_cache_misses_total``).
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._entries: dict[str, _CacheEntry] = {}
        self._seq = 0
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }

    def acquire(
        self,
        fingerprint: str,
        job_id: str,
        cancel_event: threading.Event | None = None,
    ) -> _Claim:
        """Claim ownership of a fingerprint or wait for/receive its result.

        Returns a hit claim (with the cached outputs) or a miss claim — the
        caller then computes and must :meth:`publish` or :meth:`fail`.
        A waiter blocked on another experiment's in-flight computation keeps
        observing its own cancel flag.
        """
        while True:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is None:
                    self._seq += 1
                    self._entries[fingerprint] = _CacheEntry(
                        fingerprint, job_id, epoch=-1, seq=self._seq
                    )
                    self.misses += 1
                    return _Claim(hit=False)
                if entry.state == _CacheEntry.READY:
                    entry.refs.add(job_id)
                    self.hits += 1
                    return _Claim(hit=True, outputs=entry.outputs, owner=entry.owner)
                event = entry.event
            # In-flight dedup: another experiment is computing this very
            # step.  Wait for it (polling our own cancellation), then loop:
            # on publish we hit; on failure the entry is gone and we own it.
            while not event.wait(_WAIT_POLL_SECONDS):
                if cancel_event is not None and cancel_event.is_set():
                    raise ExperimentCancelledError(
                        f"experiment {job_id} was cancelled mid-flow"
                    )

    def publish(
        self, fingerprint: str, job_id: str, outputs: list[dict[str, Any]], epoch: int
    ) -> None:
        """Complete a claimed computation; wakes every in-flight waiter."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or entry.owner != job_id:
                return
            entry.outputs = outputs
            entry.epoch = epoch
            entry.state = _CacheEntry.READY
            entry.event.set()

    def fail(self, fingerprint: str, job_id: str) -> None:
        """Abandon a claimed computation; waiters recompute for themselves."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None or entry.owner != job_id or entry.state == _CacheEntry.READY:
                return
            del self._entries[fingerprint]
            entry.event.set()

    def release_job(
        self, job_id: str, epoch: int
    ) -> tuple[list[str], dict[str, list[str]]]:
        """Drop a finished experiment's references; sweep dead entries.

        Returns ``(keep, drops)``: ``keep`` is the table names the
        experiment's own cleanup must retain (they back live cache
        entries); ``drops`` maps worker id to cached tables whose entries
        just died (stale epoch or LRU overflow) and must be dropped
        explicitly.
        """
        keep: set[str] = set()
        drops: dict[str, list[str]] = {}

        def bury(fp: str, entry: _CacheEntry) -> None:
            del self._entries[fp]
            if entry.owner == job_id:
                # The releasing experiment's own prefix cleanup drops these.
                return
            for worker, tables in entry.tables().items():
                drops.setdefault(worker, []).extend(tables)

        with self._lock:
            for fp, entry in list(self._entries.items()):
                entry.refs.discard(job_id)
                if entry.state != _CacheEntry.READY:
                    if entry.owner == job_id:
                        # The owner died without publish/fail (should not
                        # happen, but a stuck COMPUTING entry would wedge
                        # every future waiter).
                        del self._entries[fp]
                        entry.event.set()
                    continue
                if not entry.refs and entry.epoch != epoch:
                    bury(fp, entry)
                    continue
                if entry.owner == job_id:
                    for tables in entry.tables().values():
                        keep.update(tables)
            # LRU capacity: evict the oldest unreferenced entries.
            idle = sorted(
                (
                    (fp, entry)
                    for fp, entry in self._entries.items()
                    if entry.state == _CacheEntry.READY and not entry.refs
                ),
                key=lambda item: item[1].seq,
            )
            overflow = len(self._entries) - self.capacity
            for fp, entry in idle[: max(0, overflow)]:
                if entry.owner == job_id:
                    keep.difference_update(
                        t for tables in entry.tables().values() for t in tables
                    )
                bury(fp, entry)
        return sorted(keep), drops

    def clear(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                entry.event.set()
            self._entries.clear()


# ------------------------------------------------------------ node execution


class _NodeState:
    __slots__ = ("node", "done", "result", "error", "failed_dep", "parent_span",
                 "fingerprint", "thread", "ghost")

    def __init__(self, node: PlanNode, parent_span) -> None:
        self.node = node
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.failed_dep: int | None = None
        self.parent_span = parent_span
        self.fingerprint: str | None = None
        self.thread: threading.Thread | None = None
        #: Checkpoint replay: a ghost node is recorded in the plan but not
        #: executed — its value either arrives from the resume log
        #: (:meth:`PlanExecutor.set_replayed`) or it materializes lazily
        #: when a live node references it.
        self.ghost = False


class PlanExecutor:
    """Schedules flow-plan nodes for one experiment's context."""

    def __init__(
        self,
        context: "ExecutionContext",
        mode: str = "eager",
        cache: StepCache | None = None,
    ) -> None:
        if mode not in ("eager", "pipeline"):
            raise AlgorithmError(f"unknown flow mode {mode!r}")
        sim = sim_hooks.current()
        if sim is not None:
            # Simulated runs stay cooperative and byte-deterministic: no
            # free-running node threads, no cross-experiment sharing.
            mode = "eager"
            cache = None
        self.ctx = context
        self.mode = mode
        self.cache = cache
        self._states: dict[int, _NodeState] = {}
        self._order: list[int] = []
        self._lock = threading.Lock()
        #: Cache hits scored by this experiment (surfaces on `repro jobs`).
        self.dedup_hits = 0
        self._flushed_error: BaseException | None = None

    # ------------------------------------------------------------- submission

    def submit(self, node: PlanNode) -> None:
        """Accept a freshly recorded node; dispatch it when ready."""
        state = _NodeState(node, tracer.current())
        with self._lock:
            self._states[node.node_id] = state
            self._order.append(node.node_id)
        sim = sim_hooks.current()
        if sim is not None:
            sim.plan_node(f"{node.kind}:n{node.node_id}")
        if self.mode == "eager":
            self._run_node(state)
            if state.error is not None:
                raise state.error
            return
        caller_context = contextvars.copy_context()
        thread = threading.Thread(
            target=caller_context.run,
            args=(self._pipeline_node, state),
            name=f"plan-node-{self.ctx.job_id}-n{node.node_id}",
            daemon=True,
        )
        state.thread = thread
        thread.start()

    def submit_ghost(self, node: PlanNode) -> None:
        """Record a node during checkpoint replay without executing it.

        Replay answers the flow's reads from the recorded frontier, so the
        steps behind those reads must not re-run (their side effects —
        worker tables, SMPC traffic, privacy spend — already happened in a
        previous life).  A ghost that a post-replay *live* node references
        materializes on demand via :meth:`_ensure`.
        """
        state = _NodeState(node, tracer.current())
        state.ghost = True
        with self._lock:
            self._states[node.node_id] = state
            self._order.append(node.node_id)

    def set_replayed(self, node_id: int, value: Any) -> None:
        """Resolve a ghost read node to its checkpointed value."""
        state = self._states[node_id]
        state.result = value
        state.done.set()

    def _ensure(self, node_id: int) -> _NodeState:
        """The node's state, materialized if it is still an unrun ghost."""
        state = self._states[node_id]
        if state.ghost and not state.done.is_set():
            # Materializing binds the node's arguments, which recurses into
            # _ensure for its referenced ghosts — only the true data
            # dependencies re-execute, never the whole recorded prefix.
            state.ghost = False
            self._run_node(state)
            if state.error is not None:
                raise state.error
        return state

    def _pipeline_node(self, state: _NodeState) -> None:
        """Thread body: wait for dependency edges, then run the node."""
        job = transport_mod.current_job()
        token = profiler_mod.bind_current_thread(job) if job else None
        try:
            for dep in state.node.deps:
                dep_state = self._states[dep]
                dep_state.done.wait()
                if dep_state.error is not None or dep_state.failed_dep is not None:
                    state.failed_dep = (
                        dep if dep_state.error is not None else dep_state.failed_dep
                    )
                    return
            self._run_node(state)
        finally:
            if token is not None:
                profiler_mod.unbind_thread(token)
            state.done.set()

    # ---------------------------------------------------------------- forcing

    def result(self, node_id: int, index: int | None = None) -> Any:
        """Materialize one node's result (the data-dependency barrier)."""
        state = self._ensure(node_id)
        if self.mode == "pipeline":
            state.done.wait()
        if state.error is not None:
            raise state.error
        if state.failed_dep is not None:
            raise self._states[state.failed_dep].error  # type: ignore[misc]
        if index is None:
            return state.result
        return state.result[index]

    def raise_pending(self) -> None:
        """Surface the earliest already-failed node without blocking."""
        for node_id in self._order:
            state = self._states[node_id]
            if state.done.is_set() and state.error is not None:
                raise state.error

    def flush(self) -> None:
        """Wait for every submitted node; raise the first failure in order."""
        for node_id in list(self._order):
            state = self._states[node_id]
            if state.ghost and not state.done.is_set():
                # An unreferenced ghost never ran — there is nothing to
                # wait for and no failure to surface.
                continue
            if self.mode == "pipeline":
                state.done.wait()
            if state.error is not None:
                self._flushed_error = state.error
                raise state.error

    def close(self) -> None:
        """Quiesce: wait out in-flight nodes, swallow their errors.

        Used on cleanup paths (including cancellation) where the
        interesting exception is already propagating.
        """
        if self.mode != "pipeline":
            return
        for node_id in list(self._order):
            self._states[node_id].done.wait()

    # -------------------------------------------------------------- execution

    def _run_node(self, state: _NodeState) -> None:
        node = state.node
        try:
            state.fingerprint = self._fingerprint(node)
            if isinstance(node, LocalStepNode):
                state.result = self._exec_local_step(node, state)
            elif isinstance(node, BroadcastNode):
                state.result = self._exec_broadcast(node, state)
            elif isinstance(node, SecureAggregateNode):
                state.result = self._exec_secure_aggregate(node, state)
            elif isinstance(node, PlainAggregateNode):
                state.result = self._exec_plain_aggregate(node, state)
            elif isinstance(node, GlobalStepNode):
                state.result = self._exec_global_step(node, state)
            elif isinstance(node, BarrierNode):
                state.result = self._exec_barrier(node, state)
            else:  # pragma: no cover - the IR is closed
                raise AlgorithmError(f"unknown plan node {type(node).__name__}")
        except BaseException as error:  # noqa: BLE001 - re-raised at force
            state.error = error
        finally:
            state.done.set()

    # ------------------------------------------------------------ local steps

    def _exec_local_step(
        self, node: LocalStepNode, state: _NodeState
    ) -> list[dict[str, Any]]:
        ctx = self.ctx
        with tracer.span(
            "flow.local_step",
            parent=state.parent_span,
            step=node.step_id,
            udf=node.udf,
            workers=len(ctx.workers),
        ) as span:
            cache = self.cache
            fingerprint = state.fingerprint
            claim = None
            if cache is not None and fingerprint is not None:
                claim = cache.acquire(
                    fingerprint, ctx.job_id, cancel_event=ctx.cancel_event
                )
                if claim.hit:
                    span.set_attribute("plan_cache", "hit")
                    self.dedup_hits += 1
                    ctx.master.audit.record(
                        "plan_cache_hit",
                        job_id=node.step_id,
                        fingerprint=fingerprint[:12],
                        owner=claim.owner,
                    )
                    return claim.outputs
                span.set_attribute("plan_cache", "miss")
            workers_before = list(ctx.workers)
            try:
                outputs = self._compute_local_step(node, span)
            except BaseException:
                if claim is not None:
                    cache.fail(fingerprint, ctx.job_id)
                raise
            if claim is not None:
                if list(ctx.workers) == workers_before:
                    cache.publish(
                        fingerprint, ctx.job_id, outputs,
                        epoch=ctx.master.catalog_epoch,
                    )
                else:
                    # A worker was evicted mid-step: the result covers a
                    # degraded quorum and must not be shared.
                    cache.fail(fingerprint, ctx.job_id)
            return outputs

    def _compute_local_step(self, node: LocalStepNode, span) -> list[dict[str, Any]]:
        ctx = self.ctx
        workers = list(ctx.workers)
        per_worker: dict[str, dict[str, Any]] = {}
        for worker in workers:
            arguments: dict[str, Any] = {}
            for pname, arg in node.args:
                arguments[pname] = self._bind_local(arg, pname, worker)
            per_worker[worker] = arguments
        if self.mode == "eager":
            # Inline dispatch: identical call sites to the historical
            # imperative path (and no free threads under a simulation).
            results = ctx.master.run_local_step(node.step_id, node.udf, per_worker)
        else:
            future = ctx.master.run_local_step_async(
                node.step_id, node.udf, per_worker, parent_span=tracer.current()
            )
            results = future.result()
        lost = [worker for worker in ctx.workers if worker not in results]
        if lost:
            span.set_attribute("evicted", sorted(lost))
            ctx._evict(lost, node.step_id)
        outputs: list[dict[str, Any]] = []
        for index in range(len(node.out_kinds)):
            tables = {
                worker: results[worker][index]["table"] for worker in ctx.workers
            }
            kind = results[ctx.workers[0]][index]["kind"]
            outputs.append({"kind": kind, "tables": tables})
        return outputs

    def _bind_local(self, arg: PlanArg, pname: str, worker: str) -> dict[str, Any]:
        ctx = self.ctx
        if arg.kind == "view":
            return {
                "kind": "view",
                "query": ctx.view_query(arg.view, worker),
                "variables": list(arg.view.variables),
                "datasets": list(ctx.worker_datasets[worker]),
            }
        if arg.kind == "literal":
            return {"kind": "literal", "value": arg.value}
        if arg.kind == "local_tables":
            if worker not in arg.value:
                raise AlgorithmError(
                    f"parameter {pname!r}: no local table for worker {worker!r}"
                )
            return {"kind": "table", "name": arg.value[worker]}
        # A reference: either an upstream local step's output slot or a
        # broadcast node's placement map.
        assert arg.ref is not None
        upstream = self._ensure(arg.ref.node_id)
        value = upstream.result
        if isinstance(upstream.node, BroadcastNode):
            placements: Mapping[str, str] = value
            if worker not in placements:
                raise AlgorithmError(
                    f"parameter {pname!r}: no local table for worker {worker!r}"
                )
            return {"kind": "table", "name": placements[worker]}
        output = value[arg.ref.index]
        if worker not in output["tables"]:
            raise AlgorithmError(
                f"parameter {pname!r}: no local table for worker {worker!r}"
            )
        return {"kind": "table", "name": output["tables"][worker]}

    # -------------------------------------------------------------- broadcast

    def _exec_broadcast(self, node: BroadcastNode, state: _NodeState) -> dict[str, str]:
        ctx = self.ctx
        table = self._resolve_global_table(node.source)
        with tracer.span(
            "flow.broadcast", parent=state.parent_span, table=table
        ):
            with ctx._broadcast_lock:
                missing = [
                    w for w in ctx.workers if (table, w) not in ctx._broadcasts
                ]
                if missing:
                    placed = ctx.master.broadcast_transfer(ctx.job_id, table, missing)
                    for worker, remote_table in placed.items():
                        ctx._broadcasts[(table, worker)] = remote_table
                    lost = [worker for worker in missing if worker not in placed]
                    if lost:
                        ctx._evict(lost, node.step_id or f"{ctx.job_id}_bcast")
                return {
                    worker: ctx._broadcasts[(table, worker)]
                    for worker in ctx.workers
                    if (table, worker) in ctx._broadcasts
                }

    # ------------------------------------------------------------- aggregates

    def _resolve_local_tables(self, source: PlanArg) -> dict[str, str]:
        if source.kind == "local_tables":
            return dict(source.value)
        assert source.ref is not None
        output = self._ensure(source.ref.node_id).result[source.ref.index]
        return dict(output["tables"])

    def _resolve_global_table(self, source: PlanArg) -> str:
        if source.kind == "global_table":
            return str(source.value)
        assert source.ref is not None
        return self._ensure(source.ref.node_id).result[source.ref.index]["table"]

    def _exec_secure_aggregate(self, node: SecureAggregateNode, state: _NodeState):
        ctx = self.ctx
        with tracer.span(
            "flow.aggregate", parent=state.parent_span, step=node.gather_id,
            mode="secure", path=node.path,
        ):
            tables = self._resolve_local_tables(node.source)
            if node.path == "smpc":
                aggregated = ctx.master.gather_transfers_secure(
                    node.gather_id, tables, noise=ctx.noise
                )
            else:
                from repro.federation.aggregation import aggregate_plain

                transfers = ctx.master.gather_transfers_plain(node.gather_id, tables)
                aggregated = aggregate_plain(transfers)
            if node.store_id is None:
                return aggregated
            return ctx.master.store_global_transfer(node.store_id, aggregated)

    def _exec_plain_aggregate(self, node: PlainAggregateNode, state: _NodeState):
        ctx = self.ctx
        with tracer.span(
            "flow.aggregate", parent=state.parent_span, step=node.gather_id,
            mode="plain",
        ):
            tables = self._resolve_local_tables(node.source)
            transfers = ctx.master.gather_transfers_plain(node.gather_id, tables)
            if not node.store:
                return transfers
            return [
                ctx.master.store_global_transfer(node.gather_id, transfer)
                for transfer in transfers
            ]

    # ------------------------------------------------------------ global step

    def _exec_global_step(
        self, node: GlobalStepNode, state: _NodeState
    ) -> list[dict[str, str]]:
        ctx = self.ctx
        with tracer.span(
            "flow.global_step", parent=state.parent_span,
            step=node.step_id, udf=node.udf,
        ):
            arguments: dict[str, Any] = {}
            for pname, arg in node.args:
                arguments[pname] = self._bind_global(arg)
            return ctx.master.run_global_step(node.step_id, node.udf, arguments)

    def _bind_global(self, arg: PlanArg) -> Any:
        if arg.kind == "literal":
            return arg.value
        if arg.kind == "global_table":
            return str(arg.value)
        assert arg.ref is not None
        upstream = self._ensure(arg.ref.node_id)
        if isinstance(upstream.node, (SecureAggregateNode, PlainAggregateNode)):
            return upstream.result
        return upstream.result[arg.ref.index]["table"]

    # ---------------------------------------------------------------- barrier

    def _exec_barrier(self, node: BarrierNode, state: _NodeState) -> dict[str, Any]:
        table = self._resolve_global_table(node.source)
        with tracer.span("flow.barrier", parent=state.parent_span, table=table):
            return self.ctx.master.read_transfer(table)

    # ---------------------------------------------------------- fingerprints

    def _fingerprint(self, node: PlanNode) -> str | None:
        """Deterministic identity of a node's *result*, or None (uncacheable).

        References contribute the upstream node's fingerprint, so equality
        is transitive over the dataflow and independent of physical table
        names.  Noise-bearing aggregates are uncacheable (a DP draw must
        never be shared), which poisons everything downstream of them.
        """
        ctx = self.ctx
        if isinstance(node, (LocalStepNode, GlobalStepNode)):
            spec = udf_registry.get(node.udf)
            args: dict[str, Any] = {}
            for pname, arg in node.args:
                key = self._arg_key(arg)
                if key is None:
                    return None
                args[pname] = key
            scope = "local" if isinstance(node, LocalStepNode) else "global"
            payload = {
                "scope": scope,
                "udf": node.udf,
                "src": source_hash(spec.source),
                "args": args,
                "epoch": ctx.master.catalog_epoch,
            }
            if isinstance(node, LocalStepNode):
                payload["workers"] = list(ctx.workers)
                payload["datasets"] = {
                    worker: list(ctx.worker_datasets[worker])
                    for worker in ctx.workers
                }
                payload["data_model"] = ctx.data_model
                payload["filter"] = ctx.filter_sql
            return canonical_fingerprint(payload)
        if isinstance(node, BroadcastNode):
            return self._source_key(node.source)
        if isinstance(node, SecureAggregateNode):
            if ctx.noise is not None:
                return None
            source = self._source_key(node.source)
            if source is None:
                return None
            return canonical_fingerprint(
                {"agg": "secure", "path": node.path, "source": source}
            )
        if isinstance(node, PlainAggregateNode):
            source = self._source_key(node.source)
            if source is None:
                return None
            return canonical_fingerprint(
                {"agg": "plain", "store": node.store, "source": source}
            )
        if isinstance(node, BarrierNode):
            return self._source_key(node.source)
        return None

    def _source_key(self, source: PlanArg) -> str | None:
        if source.ref is None:
            # Constant handles come from outside the plan; their provenance
            # is unknown, so nothing downstream of them is cacheable.
            return None
        upstream = self._states[source.ref.node_id]
        if upstream.fingerprint is None:
            return None
        return f"{upstream.fingerprint}:{source.ref.index}"

    def _arg_key(self, arg: PlanArg) -> Any:
        if arg.kind == "literal":
            return literal_key(arg.value)
        if arg.kind == "view":
            return {
                "view": {
                    "variables": list(arg.view.variables),
                    "dropna": bool(arg.view.dropna),
                }
            }
        if arg.kind in ("local_tables", "global_table"):
            return None
        return self._source_key(arg)
