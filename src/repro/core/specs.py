"""Algorithm specifications: typed, validated experiment parameters.

Block (c) of the paper's federated-algorithm model: "the algorithm
specifications involving implementation details".  Each algorithm declares
its parameters; the platform validates user input against the declaration
before anything ships to a worker — the MIP UI renders these same
declarations as the parameter form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import SpecificationError

_TYPES = {"int", "real", "text", "bool"}


@dataclass(frozen=True)
class ParameterSpec:
    """One declared algorithm parameter."""

    name: str
    param_type: str  # 'int' | 'real' | 'text' | 'bool'
    label: str = ""
    required: bool = False
    default: Any = None
    min_value: float | None = None
    max_value: float | None = None
    enums: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if self.param_type not in _TYPES:
            raise SpecificationError(f"unknown parameter type {self.param_type!r}")

    def validate(self, value: Any) -> Any:
        if value is None:
            if self.required:
                raise SpecificationError(f"parameter {self.name!r} is required")
            return self.default
        value = self._coerce(value)
        if self.min_value is not None and value < self.min_value:
            raise SpecificationError(
                f"parameter {self.name!r}: {value} below minimum {self.min_value}"
            )
        if self.max_value is not None and value > self.max_value:
            raise SpecificationError(
                f"parameter {self.name!r}: {value} above maximum {self.max_value}"
            )
        if self.enums is not None and value not in self.enums:
            raise SpecificationError(
                f"parameter {self.name!r}: {value!r} not in {list(self.enums)}"
            )
        return value

    def _coerce(self, value: Any) -> Any:
        if self.param_type == "int":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecificationError(f"parameter {self.name!r} must be an integer")
            if isinstance(value, float) and not value.is_integer():
                raise SpecificationError(f"parameter {self.name!r} must be an integer")
            return int(value)
        if self.param_type == "real":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecificationError(f"parameter {self.name!r} must be a number")
            return float(value)
        if self.param_type == "text":
            if not isinstance(value, str):
                raise SpecificationError(f"parameter {self.name!r} must be a string")
            return value
        if not isinstance(value, bool):
            raise SpecificationError(f"parameter {self.name!r} must be a boolean")
        return value


def validate_parameters(
    specs: Sequence[ParameterSpec], provided: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Validate user parameters against declarations, filling defaults."""
    provided = dict(provided or {})
    known = {spec.name for spec in specs}
    unknown = sorted(set(provided) - known)
    if unknown:
        raise SpecificationError(f"unknown parameters: {unknown}")
    return {spec.name: spec.validate(provided.get(spec.name)) for spec in specs}
