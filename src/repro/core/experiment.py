"""Experiment lifecycle: request, execution, result.

Mirrors the UI flow in paper Figure 3: pick variables, datasets and an
algorithm, set parameters, run, and poll the experiment until it finishes.

The machinery lives in two collaborators: :class:`~repro.core.runner.ExperimentRunner`
(the pure validate → plan → contextualize → execute path) and
:class:`~repro.core.jobs.ExperimentQueue` (admission control, executor pool,
job states, per-job telemetry, history).  :class:`ExperimentEngine` is the
thin facade tying them together; its synchronous :meth:`ExperimentEngine.run`
is submit + wait, so sequential callers behave exactly as before while
``submit``/``cancel`` unlock the paper's asynchronous, poll-by-id workflow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ExperimentNotFoundError  # noqa: F401 - re-export
from repro.federation.controller import Federation
from repro.smpc.cluster import NoiseSpec


class ExperimentStatus(enum.Enum):
    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    SUCCESS = "success"
    ERROR = "error"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class ExperimentRequest:
    """Everything the UI collects before hitting "Run Experiment"."""

    algorithm: str
    data_model: str
    datasets: tuple[str, ...]
    y: tuple[str, ...] = ()
    x: tuple[str, ...] = ()
    parameters: Mapping[str, Any] = field(default_factory=dict)
    filter_sql: str | None = None
    name: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (persisted verbatim in the durability journal)."""
        return {
            "algorithm": self.algorithm,
            "data_model": self.data_model,
            "datasets": list(self.datasets),
            "y": list(self.y),
            "x": list(self.x),
            "parameters": dict(self.parameters),
            "filter_sql": self.filter_sql,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRequest":
        return cls(
            algorithm=str(payload["algorithm"]),
            data_model=str(payload["data_model"]),
            datasets=tuple(payload.get("datasets", ())),
            y=tuple(payload.get("y", ())),
            x=tuple(payload.get("x", ())),
            parameters=dict(payload.get("parameters", {})),
            filter_sql=payload.get("filter_sql"),
            name=str(payload.get("name", "")),
        )


@dataclass(frozen=True)
class ExperimentTelemetry:
    """Resource usage attributable to one experiment."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_network_seconds: float = 0.0
    smpc_rounds: int = 0
    smpc_elements: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "simulated_network_seconds": self.simulated_network_seconds,
            "smpc_rounds": self.smpc_rounds,
            "smpc_elements": self.smpc_elements,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentTelemetry":
        return cls(
            messages=int(payload.get("messages", 0)),
            bytes_sent=int(payload.get("bytes_sent", 0)),
            simulated_network_seconds=float(
                payload.get("simulated_network_seconds", 0.0)
            ),
            smpc_rounds=int(payload.get("smpc_rounds", 0)),
            smpc_elements=int(payload.get("smpc_elements", 0)),
        )


@dataclass
class ExperimentResult:
    """A finished (or failed) experiment."""

    experiment_id: str
    request: ExperimentRequest
    status: ExperimentStatus
    result: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    elapsed_seconds: float = 0.0
    workers: tuple[str, ...] = ()
    telemetry: ExperimentTelemetry = field(default_factory=ExperimentTelemetry)
    #: Privacy audit trail for this experiment, merged across master and
    #: workers (each entry is an AuditEvent dict; see observability.audit).
    audit: tuple = ()
    #: Workers evicted mid-flow by the failure policy (empty on clean runs).
    evicted: tuple[str, ...] = ()
    #: Critical-path analysis of this experiment's span tree (populated by
    #: the queue when the tracer was enabled for the run; see
    #: :mod:`repro.observability.critical_path`).
    critical_path: dict[str, Any] | None = None
    #: Collapsed-stack profiler samples attributed to this job (populated
    #: when a :class:`~repro.observability.profiler.SamplingProfiler` is
    #: attached to the queue).
    profile: str | None = None
    #: Local steps answered from the cross-experiment plan cache instead of
    #: being recomputed (0 unless step dedup is enabled).
    dedup_hits: int = 0

    def to_dict(self) -> dict[str, Any]:
        """Full JSON round-trip form, including audit, evictions and the
        critical-path analysis — what durability snapshots persist and what
        ``repro jobs`` output can be diffed against."""
        return {
            "experiment_id": self.experiment_id,
            "request": self.request.to_dict(),
            "status": self.status.value,
            "result": self.result,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds,
            "workers": list(self.workers),
            "telemetry": self.telemetry.to_dict(),
            "audit": [dict(event) for event in self.audit],
            "evicted": list(self.evicted),
            "critical_path": self.critical_path,
            "profile": self.profile,
            "dedup_hits": self.dedup_hits,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=str(payload["experiment_id"]),
            request=ExperimentRequest.from_dict(payload["request"]),
            status=ExperimentStatus(payload["status"]),
            result=dict(payload.get("result", {})),
            error=payload.get("error"),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            workers=tuple(payload.get("workers", ())),
            telemetry=ExperimentTelemetry.from_dict(payload.get("telemetry", {})),
            audit=tuple(payload.get("audit", ())),
            evicted=tuple(payload.get("evicted", ())),
            critical_path=payload.get("critical_path"),
            profile=payload.get("profile"),
            dedup_hits=int(payload.get("dedup_hits", 0)),
        )


class ExperimentEngine:
    """Runs experiments against a federation.

    ``aggregation`` selects the paper's two data-aggregation paths:
    ``"smpc"`` (secure, default) or ``"plain"`` (remote/merge tables).
    ``max_concurrent`` sizes the executor pool; the default of 1 keeps
    strictly sequential semantics for synchronous callers.
    """

    def __init__(
        self,
        federation: Federation,
        aggregation: str = "smpc",
        noise: NoiseSpec | None = None,
        max_concurrent: int = 1,
        max_queued: int = 128,
        flow_mode: str | None = None,
        plan_cache=None,
        durability=None,
    ) -> None:
        # Imported lazily: runner/jobs import this module for the result
        # dataclasses, so a module-level import would be circular.
        from repro.core.jobs import ExperimentQueue
        from repro.core.runner import ExperimentRunner

        self.federation = federation
        #: Optional :class:`~repro.durability.recovery.DurabilityManager`
        #: shared by the queue (journaling) and the runner (checkpointed
        #: reads + resume); ``MIPService(state_dir=...)`` wires one in.
        self.durability = durability
        self.runner = ExperimentRunner(
            federation,
            aggregation=aggregation,
            noise=noise,
            flow_mode=flow_mode,
            plan_cache=plan_cache,
            durability=durability,
        )
        self.queue = ExperimentQueue(
            self.runner,
            max_concurrent=max_concurrent,
            max_queued=max_queued,
            durability=durability,
        )

    # Algorithm code and tests read these off the engine; they live on the
    # runner now, so present them as delegating properties.
    @property
    def aggregation(self) -> str:
        return self.runner.aggregation

    @aggregation.setter
    def aggregation(self, value: str) -> None:
        self.runner.aggregation = value

    @property
    def noise(self) -> NoiseSpec | None:
        return self.runner.noise

    @noise.setter
    def noise(self, value: NoiseSpec | None) -> None:
        self.runner.noise = value

    # ------------------------------------------------------------------- run

    def run(self, request: ExperimentRequest) -> ExperimentResult:
        """Synchronous execution: submit to the queue and wait."""
        return self.wait(self.submit(request))

    def submit(
        self,
        request: ExperimentRequest,
        priority: int = 0,
        experiment_id: str | None = None,
    ) -> str:
        """Enqueue an experiment; returns its id immediately (paper §2's
        "assigned a global unique identifier, used to retrieve results
        asynchronously")."""
        return self.queue.submit(request, priority=priority, experiment_id=experiment_id)

    def wait(self, experiment_id: str, timeout: float | None = None) -> ExperimentResult:
        return self.queue.wait(experiment_id, timeout=timeout)

    def cancel(self, experiment_id: str) -> bool:
        """Cancel a queued (guaranteed) or running (cooperative) experiment."""
        return self.queue.cancel(experiment_id)

    def get(self, experiment_id: str) -> ExperimentResult:
        return self.queue.get(experiment_id)

    def history(self) -> list[ExperimentResult]:
        return self.queue.history.list()

    def jobs(self):
        """Snapshots of every submitted job, in submission order."""
        return self.queue.jobs()

    def shutdown(self, wait: bool = True) -> None:
        self.queue.shutdown(wait=wait)
