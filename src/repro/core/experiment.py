"""Experiment lifecycle: request, execution, result.

Mirrors the UI flow in paper Figure 3: pick variables, datasets and an
algorithm, set parameters, run, and poll the experiment until it finishes.

The machinery lives in two collaborators: :class:`~repro.core.runner.ExperimentRunner`
(the pure validate → plan → contextualize → execute path) and
:class:`~repro.core.jobs.ExperimentQueue` (admission control, executor pool,
job states, per-job telemetry, history).  :class:`ExperimentEngine` is the
thin facade tying them together; its synchronous :meth:`ExperimentEngine.run`
is submit + wait, so sequential callers behave exactly as before while
``submit``/``cancel`` unlock the paper's asynchronous, poll-by-id workflow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ExperimentNotFoundError  # noqa: F401 - re-export
from repro.federation.controller import Federation
from repro.smpc.cluster import NoiseSpec


class ExperimentStatus(enum.Enum):
    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    SUCCESS = "success"
    ERROR = "error"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class ExperimentRequest:
    """Everything the UI collects before hitting "Run Experiment"."""

    algorithm: str
    data_model: str
    datasets: tuple[str, ...]
    y: tuple[str, ...] = ()
    x: tuple[str, ...] = ()
    parameters: Mapping[str, Any] = field(default_factory=dict)
    filter_sql: str | None = None
    name: str = ""


@dataclass(frozen=True)
class ExperimentTelemetry:
    """Resource usage attributable to one experiment."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_network_seconds: float = 0.0
    smpc_rounds: int = 0
    smpc_elements: int = 0


@dataclass
class ExperimentResult:
    """A finished (or failed) experiment."""

    experiment_id: str
    request: ExperimentRequest
    status: ExperimentStatus
    result: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    elapsed_seconds: float = 0.0
    workers: tuple[str, ...] = ()
    telemetry: ExperimentTelemetry = field(default_factory=ExperimentTelemetry)
    #: Privacy audit trail for this experiment, merged across master and
    #: workers (each entry is an AuditEvent dict; see observability.audit).
    audit: tuple = ()
    #: Workers evicted mid-flow by the failure policy (empty on clean runs).
    evicted: tuple[str, ...] = ()
    #: Critical-path analysis of this experiment's span tree (populated by
    #: the queue when the tracer was enabled for the run; see
    #: :mod:`repro.observability.critical_path`).
    critical_path: dict[str, Any] | None = None
    #: Collapsed-stack profiler samples attributed to this job (populated
    #: when a :class:`~repro.observability.profiler.SamplingProfiler` is
    #: attached to the queue).
    profile: str | None = None
    #: Local steps answered from the cross-experiment plan cache instead of
    #: being recomputed (0 unless step dedup is enabled).
    dedup_hits: int = 0


class ExperimentEngine:
    """Runs experiments against a federation.

    ``aggregation`` selects the paper's two data-aggregation paths:
    ``"smpc"`` (secure, default) or ``"plain"`` (remote/merge tables).
    ``max_concurrent`` sizes the executor pool; the default of 1 keeps
    strictly sequential semantics for synchronous callers.
    """

    def __init__(
        self,
        federation: Federation,
        aggregation: str = "smpc",
        noise: NoiseSpec | None = None,
        max_concurrent: int = 1,
        max_queued: int = 128,
        flow_mode: str | None = None,
        plan_cache=None,
    ) -> None:
        # Imported lazily: runner/jobs import this module for the result
        # dataclasses, so a module-level import would be circular.
        from repro.core.jobs import ExperimentQueue
        from repro.core.runner import ExperimentRunner

        self.federation = federation
        self.runner = ExperimentRunner(
            federation,
            aggregation=aggregation,
            noise=noise,
            flow_mode=flow_mode,
            plan_cache=plan_cache,
        )
        self.queue = ExperimentQueue(
            self.runner, max_concurrent=max_concurrent, max_queued=max_queued
        )

    # Algorithm code and tests read these off the engine; they live on the
    # runner now, so present them as delegating properties.
    @property
    def aggregation(self) -> str:
        return self.runner.aggregation

    @aggregation.setter
    def aggregation(self, value: str) -> None:
        self.runner.aggregation = value

    @property
    def noise(self) -> NoiseSpec | None:
        return self.runner.noise

    @noise.setter
    def noise(self, value: NoiseSpec | None) -> None:
        self.runner.noise = value

    # ------------------------------------------------------------------- run

    def run(self, request: ExperimentRequest) -> ExperimentResult:
        """Synchronous execution: submit to the queue and wait."""
        return self.wait(self.submit(request))

    def submit(
        self,
        request: ExperimentRequest,
        priority: int = 0,
        experiment_id: str | None = None,
    ) -> str:
        """Enqueue an experiment; returns its id immediately (paper §2's
        "assigned a global unique identifier, used to retrieve results
        asynchronously")."""
        return self.queue.submit(request, priority=priority, experiment_id=experiment_id)

    def wait(self, experiment_id: str, timeout: float | None = None) -> ExperimentResult:
        return self.queue.wait(experiment_id, timeout=timeout)

    def cancel(self, experiment_id: str) -> bool:
        """Cancel a queued (guaranteed) or running (cooperative) experiment."""
        return self.queue.cancel(experiment_id)

    def get(self, experiment_id: str) -> ExperimentResult:
        return self.queue.get(experiment_id)

    def history(self) -> list[ExperimentResult]:
        return self.queue.history.list()

    def jobs(self):
        """Snapshots of every submitted job, in submission order."""
        return self.queue.jobs()

    def shutdown(self, wait: bool = True) -> None:
        self.queue.shutdown(wait=wait)
