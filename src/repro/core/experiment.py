"""Experiment lifecycle: request, execution, result.

Mirrors the UI flow in paper Figure 3: pick variables, datasets and an
algorithm, set parameters, run, and poll the experiment until it finishes.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.context import ExecutionContext
from repro.core.registry import algorithm_registry
from repro.core.specs import validate_parameters
from repro.errors import AlgorithmError, ReproError, SpecificationError
from repro.federation.controller import Federation
from repro.federation.messages import new_job_id
from repro.federation.scheduler import plan_shipping
from repro.observability.audit import merged_events
from repro.observability.trace import tracer
from repro.smpc.cluster import NoiseSpec


class ExperimentStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    SUCCESS = "success"
    ERROR = "error"


@dataclass(frozen=True)
class ExperimentRequest:
    """Everything the UI collects before hitting "Run Experiment"."""

    algorithm: str
    data_model: str
    datasets: tuple[str, ...]
    y: tuple[str, ...] = ()
    x: tuple[str, ...] = ()
    parameters: Mapping[str, Any] = field(default_factory=dict)
    filter_sql: str | None = None
    name: str = ""


@dataclass(frozen=True)
class ExperimentTelemetry:
    """Resource usage attributable to one experiment."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_network_seconds: float = 0.0
    smpc_rounds: int = 0
    smpc_elements: int = 0


@dataclass
class ExperimentResult:
    """A finished (or failed) experiment."""

    experiment_id: str
    request: ExperimentRequest
    status: ExperimentStatus
    result: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    elapsed_seconds: float = 0.0
    workers: tuple[str, ...] = ()
    telemetry: ExperimentTelemetry = field(default_factory=ExperimentTelemetry)
    #: Privacy audit trail for this experiment, merged across master and
    #: workers (each entry is an AuditEvent dict; see observability.audit).
    audit: tuple = ()


class ExperimentEngine:
    """Runs experiments against a federation.

    ``aggregation`` selects the paper's two data-aggregation paths:
    ``"smpc"`` (secure, default) or ``"plain"`` (remote/merge tables).
    """

    def __init__(
        self,
        federation: Federation,
        aggregation: str = "smpc",
        noise: NoiseSpec | None = None,
    ) -> None:
        self.federation = federation
        self.aggregation = aggregation
        self.noise = noise
        self._history: dict[str, ExperimentResult] = {}

    # ------------------------------------------------------------------- run

    def run(self, request: ExperimentRequest) -> ExperimentResult:
        experiment_id = new_job_id("exp")
        started = time.perf_counter()
        workers: tuple[str, ...] = ()
        usage_before = self._usage_snapshot()
        master_audit = self.federation.master.audit
        master_audit.record(
            "experiment_started",
            job_id=experiment_id,
            algorithm=request.algorithm,
            data_model=request.data_model,
            datasets=sorted(request.datasets),
        )
        with tracer.span(
            "experiment", experiment=experiment_id, algorithm=request.algorithm
        ) as root_span:
            try:
                algorithm_cls = algorithm_registry.get(request.algorithm)
                parameters = validate_parameters(algorithm_cls.parameters, request.parameters)
                self._check_variables(algorithm_cls, request)
                metadata = self._variable_metadata(algorithm_cls, request)
                context = self._build_context(request, experiment_id)
                workers = tuple(context.workers)
                algorithm = algorithm_cls(
                    context,
                    y=list(request.y),
                    x=list(request.x),
                    parameters=parameters,
                    metadata=metadata,
                )
                result_data = algorithm.run()
                context.cleanup()
                result = ExperimentResult(
                    experiment_id=experiment_id,
                    request=request,
                    status=ExperimentStatus.SUCCESS,
                    result=result_data,
                    elapsed_seconds=time.perf_counter() - started,
                    workers=workers,
                    telemetry=self._usage_delta(usage_before),
                )
            except ReproError as exc:
                root_span.set_error(f"{type(exc).__name__}: {exc}")
                result = ExperimentResult(
                    experiment_id=experiment_id,
                    request=request,
                    status=ExperimentStatus.ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed_seconds=time.perf_counter() - started,
                    workers=workers,
                    telemetry=self._usage_delta(usage_before),
                )
        master_audit.record(
            "experiment_finished",
            job_id=experiment_id,
            status=result.status.value,
            elapsed_seconds=round(result.elapsed_seconds, 6),
        )
        result.audit = tuple(
            merged_events(self.federation.audit_logs(), job_id=experiment_id)
        )
        self._history[experiment_id] = result
        return result

    def _usage_snapshot(self) -> tuple[int, int, float, int, int]:
        stats = self.federation.transport.stats
        cluster = self.federation.smpc_cluster
        rounds = cluster.communication.rounds if cluster else 0
        elements = cluster.communication.elements if cluster else 0
        return (stats.messages, stats.bytes_sent, stats.simulated_seconds,
                rounds, elements)

    def _usage_delta(self, before: tuple[int, int, float, int, int]) -> ExperimentTelemetry:
        after = self._usage_snapshot()
        return ExperimentTelemetry(
            messages=after[0] - before[0],
            bytes_sent=after[1] - before[1],
            simulated_network_seconds=after[2] - before[2],
            smpc_rounds=after[3] - before[3],
            smpc_elements=after[4] - before[4],
        )

    def get(self, experiment_id: str) -> ExperimentResult:
        try:
            return self._history[experiment_id]
        except KeyError:
            raise AlgorithmError(f"no such experiment: {experiment_id!r}") from None

    def history(self) -> list[ExperimentResult]:
        return list(self._history.values())

    # --------------------------------------------------------------- helpers

    def _check_variables(self, algorithm_cls, request: ExperimentRequest) -> None:
        if algorithm_cls.needs_y == "required" and not request.y:
            raise SpecificationError(
                f"algorithm {request.algorithm!r} requires dependent variables (y)"
            )
        if algorithm_cls.needs_x == "required" and not request.x:
            raise SpecificationError(
                f"algorithm {request.algorithm!r} requires covariates (x)"
            )
        if algorithm_cls.needs_y == "none" and request.y:
            raise SpecificationError(f"algorithm {request.algorithm!r} takes no y variables")
        if algorithm_cls.needs_x == "none" and request.x:
            raise SpecificationError(f"algorithm {request.algorithm!r} takes no x variables")
        if not request.datasets:
            raise SpecificationError("an experiment needs at least one dataset")

    def _variable_metadata(self, algorithm_cls, request: ExperimentRequest) -> dict[str, Any]:
        """Validate variables against the data model's CDEs; return metadata."""
        from repro.data.cdes import cde_registry

        if request.data_model not in cde_registry:
            # Unregistered data models are allowed (e.g. ad-hoc test data);
            # algorithms then receive no metadata and treat all variables as
            # numeric.
            return {}
        model = cde_registry.get(request.data_model)
        model.validate_variables(request.y, algorithm_cls.y_types)
        model.validate_variables(request.x, algorithm_cls.x_types)
        return model.metadata_for(list(request.y) + list(request.x))

    def _build_context(self, request: ExperimentRequest, experiment_id: str) -> ExecutionContext:
        master = self.federation.master
        master.refresh_catalog()
        model_availability = master.availability.get(request.data_model, {})
        plan = plan_shipping(model_availability, request.datasets)
        return ExecutionContext(
            master=master,
            data_model=request.data_model,
            worker_datasets=plan.assignments,
            aggregation=self.aggregation,
            noise=self.noise,
            filter_sql=request.filter_sql,
            job_prefix=experiment_id,
        )
