"""The pure experiment execution path: validate → plan → contextualize → run.

:class:`ExperimentRunner` is the stateless core the job queue dispatches to.
It carries no history, no telemetry and no lifecycle bookkeeping — those are
the queue's concern (:mod:`repro.core.jobs`) — so the same runner can serve
any number of concurrent executor threads.  Its one piece of shared state is
the :class:`~repro.federation.scheduler.WorkerLoad` tracker, which lets the
shipping planner balance replicated datasets across *in-flight* experiments
rather than within one experiment at a time.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from repro.core.context import ExecutionContext
from repro.core.plan_executor import StepCache
from repro.core.registry import algorithm_registry
from repro.core.specs import validate_parameters
from repro.errors import ExperimentCancelledError, SpecificationError
from repro.federation.controller import Federation
from repro.federation.scheduler import WorkerLoad, plan_shipping
from repro.simtest import hooks as sim_hooks
from repro.smpc.cluster import NoiseSpec


class ExperimentRunner:
    """Executes one experiment request against a federation.

    ``aggregation`` selects the paper's two data-aggregation paths:
    ``"smpc"`` (secure, default) or ``"plain"`` (remote/merge tables).
    """

    def __init__(
        self,
        federation: Federation,
        aggregation: str = "smpc",
        noise: NoiseSpec | None = None,
        load: WorkerLoad | None = None,
        flow_mode: str | None = None,
        plan_cache: StepCache | None = None,
        durability=None,
    ) -> None:
        self.federation = federation
        self.aggregation = aggregation
        self.noise = noise
        #: Optional :class:`~repro.durability.recovery.DurabilityManager`.
        #: The runner threads it into every execution context: reads are
        #: checkpointed as they happen, and a job recovered after a crash
        #: replays its recorded frontier instead of re-executing from step 0.
        self.durability = durability
        #: In-flight dataset assignments, shared with the shipping planner.
        self.load = load or WorkerLoad()
        #: Flow-plan scheduling: ``"eager"`` executes nodes at record time
        #: (the imperative-equivalent default), ``"pipeline"`` overlaps
        #: independent nodes.  ``REPRO_FLOW_MODE`` overrides the default.
        self.flow_mode = flow_mode or os.environ.get("REPRO_FLOW_MODE") or "eager"
        #: Cross-experiment step dedup: off unless a cache is passed in or
        #: ``REPRO_PLAN_CACHE`` opts the federation's shared cache in (a
        #: cache hit reuses another experiment's worker tables, so the
        #: per-experiment audit trail no longer shows those reads — a
        #: deliberate trade the operator must choose).
        if plan_cache is None and _env_truthy("REPRO_PLAN_CACHE"):
            plan_cache = federation.plan_cache
        self.plan_cache = plan_cache

    def execute(
        self,
        request,
        experiment_id: str,
        cancel_event: threading.Event | None = None,
        info: dict[str, Any] | None = None,
    ) -> tuple[dict[str, Any], tuple[str, ...]]:
        """Run one experiment to completion; raises on any failure.

        Returns ``(result_data, workers)``.  A set ``cancel_event`` stops the
        flow at the next step boundary with
        :class:`~repro.errors.ExperimentCancelledError`; the context's tables
        are cleaned up best-effort on that path.  ``info``, when given, is
        filled with ``workers`` as soon as the context exists, so failed
        flows can still report who participated.
        """
        sim = sim_hooks.current()
        if sim is not None:
            sim.flow_step(f"execute:{experiment_id}")
        algorithm_cls = algorithm_registry.get(request.algorithm)
        parameters = validate_parameters(algorithm_cls.parameters, request.parameters)
        self._check_variables(algorithm_cls, request)
        metadata = self._variable_metadata(algorithm_cls, request)
        context = self.build_context(request, experiment_id, cancel_event)
        workers = tuple(context.workers)
        if info is not None:
            info["workers"] = workers
        assignments = {w: list(d) for w, d in context.worker_datasets.items()}
        self.load.acquire(assignments)
        try:
            algorithm = algorithm_cls(
                context,
                y=list(request.y),
                x=list(request.x),
                parameters=parameters,
                metadata=metadata,
            )
            result_data = algorithm.run()
            # Pipeline mode: nodes the algorithm never forced may still be
            # in flight; surface their failures before declaring success.
            context.flush()
            context.cleanup()
        except ExperimentCancelledError:
            try:
                context.cleanup()
            except Exception:  # noqa: BLE001 - cancellation must still surface
                pass
            raise
        finally:
            self.load.release(assignments)
            if info is not None:
                info["evicted"] = tuple(sorted(context.evicted))
                info["plan"] = context.plan
                info["dedup_hits"] = context.executor.dedup_hits
        return result_data, workers

    # --------------------------------------------------------------- helpers

    def _check_variables(self, algorithm_cls, request) -> None:
        if algorithm_cls.needs_y == "required" and not request.y:
            raise SpecificationError(
                f"algorithm {request.algorithm!r} requires dependent variables (y)"
            )
        if algorithm_cls.needs_x == "required" and not request.x:
            raise SpecificationError(
                f"algorithm {request.algorithm!r} requires covariates (x)"
            )
        if algorithm_cls.needs_y == "none" and request.y:
            raise SpecificationError(f"algorithm {request.algorithm!r} takes no y variables")
        if algorithm_cls.needs_x == "none" and request.x:
            raise SpecificationError(f"algorithm {request.algorithm!r} takes no x variables")
        if not request.datasets:
            raise SpecificationError("an experiment needs at least one dataset")

    def _variable_metadata(self, algorithm_cls, request) -> dict[str, Any]:
        """Validate variables against the data model's CDEs; return metadata."""
        from repro.data.cdes import cde_registry

        if request.data_model not in cde_registry:
            # Unregistered data models are allowed (e.g. ad-hoc test data);
            # algorithms then receive no metadata and treat all variables as
            # numeric.
            return {}
        model = cde_registry.get(request.data_model)
        model.validate_variables(request.y, algorithm_cls.y_types)
        model.validate_variables(request.x, algorithm_cls.x_types)
        return model.metadata_for(list(request.y) + list(request.x))

    def build_context(
        self,
        request,
        experiment_id: str,
        cancel_event: threading.Event | None = None,
    ) -> ExecutionContext:
        master = self.federation.master
        master.refresh_catalog()
        model_availability = master.availability.get(request.data_model, {})
        plan = plan_shipping(
            model_availability, request.datasets, current_load=self.load.snapshot()
        )
        resume_reads = None
        flow_mode = self.flow_mode
        if self.durability is not None:
            resume_reads = self.durability.take_resume_reads(experiment_id)
            if resume_reads:
                # Replay needs record-order forcing: ghost nodes answer
                # reads from the checkpoint in program order, which the
                # pipeline scheduler does not guarantee.
                flow_mode = "eager"
        return ExecutionContext(
            master=master,
            data_model=request.data_model,
            worker_datasets=plan.assignments,
            aggregation=self.aggregation,
            noise=self.noise,
            filter_sql=request.filter_sql,
            job_prefix=experiment_id,
            cancel_event=cancel_event,
            flow_mode=flow_mode,
            plan_cache=None if resume_reads else self.plan_cache,
            durability=self.durability,
            resume_reads=resume_reads,
        )


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")
