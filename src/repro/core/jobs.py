"""The asynchronous experiment job queue (the paper's Celery/RabbitMQ role).

The production MIP Master dispatches experiments through a task queue and
polls them by id; :class:`ExperimentQueue` reproduces that surface
in-process: a bounded priority queue with admission control, a pool of
executor threads, explicit job states

    PENDING → QUEUED → RUNNING → SUCCESS | ERROR | CANCELLED

``submit()`` returns immediately with the experiment id, ``wait()`` blocks
until a job finishes, and ``cancel()`` is guaranteed before dispatch and
cooperative after it (a per-context flag observed between flow steps).

The queue also owns per-job *resource attribution*: every executor thread
runs its experiment inside a transport :func:`~repro.federation.transport.job_scope`,
so :class:`~repro.core.experiment.ExperimentTelemetry` reads that job's own
meters — exact under concurrency, unlike the global before/after counter
diff it replaces.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import (
    ExperimentCancelledError,
    ExperimentNotFoundError,
    MasterCrashError,
    QueueFullError,
    ReproError,
)
from repro.federation import transport as transport_mod
from repro.federation.messages import new_job_id
from repro.observability.audit import merged_events
from repro.observability.critical_path import analyze_experiment
from repro.observability.metrics import Histogram
from repro.observability.trace import NULL_SPAN, tracer
from repro.simtest import hooks as sim_hooks

#: Experiment wall-time buckets for the queue's latency histogram, sized for
#: the sub-second to tens-of-seconds range federated flows live in.
_LATENCY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, float("inf")
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runner import ExperimentRunner

#: How often an idle executor worker re-checks whether its queue still
#: exists.  Submissions and shutdown wake workers immediately via the
#: condition; the timeout only bounds how long a worker outlives a queue
#: that was dropped without ``shutdown()``.
_WORKER_POLL_SECONDS = 0.25


def _queue_worker(queue_ref: "weakref.ref[ExperimentQueue]",
                  cond: threading.Condition) -> None:
    """Executor-pool worker loop, referencing its queue only weakly.

    The same idiom ``ThreadPoolExecutor`` uses: a worker thread is a GC
    root, so a loop bound to ``self`` would pin the queue — and through it
    the runner, the federation, and the transport pool — forever.  Holding
    a weakref (and dropping the strong deref before every wait) lets an
    abandoned queue be collected, at which point the worker notices and
    exits on its next wakeup.
    """
    while True:
        queue = queue_ref()
        if queue is None:
            return
        with cond:
            if queue._shutdown and not queue._heap:
                return
            if not queue._heap:
                del queue  # don't pin the queue while parked
                cond.wait(timeout=_WORKER_POLL_SECONDS)
                continue
            job = queue._claim_locked()
        if job is not None:
            queue._execute_claimed(job)


class JobState(enum.Enum):
    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    SUCCESS = "success"
    ERROR = "error"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.SUCCESS, JobState.ERROR, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSnapshot:
    """An immutable point-in-time view of one queued experiment."""

    job_id: str
    algorithm: str
    name: str
    state: str
    priority: int
    wait_seconds: float | None
    elapsed_seconds: float | None
    error: str | None
    #: Time spent waiting for an executor: the final wait for dispatched
    #: jobs, the still-growing wait for jobs that are queued right now.
    queued_seconds: float = 0.0
    #: Local steps this job answered from the cross-experiment plan cache.
    dedup_hits: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "algorithm": self.algorithm,
            "name": self.name,
            "state": self.state,
            "priority": self.priority,
            "wait_seconds": self.wait_seconds,
            "elapsed_seconds": self.elapsed_seconds,
            "error": self.error,
            "queued_seconds": self.queued_seconds,
            "dedup_hits": self.dedup_hits,
        }


class _Job:
    """Internal mutable job record; guarded by the queue's condition."""

    __slots__ = (
        "job_id",
        "request",
        "priority",
        "seq",
        "state",
        "history",
        "cancel_event",
        "done",
        "result",
        "unhandled",
        "submitted_wall",
        "started_wall",
        "finished_wall",
        "dedup_hits",
    )

    def __init__(self, job_id: str, request, priority: int, seq: int) -> None:
        self.job_id = job_id
        self.request = request
        self.priority = priority
        self.seq = seq
        self.state = JobState.PENDING
        #: Every state this job has been in, in order.  The simulation
        #: harness asserts state-machine legality over these histories.
        self.history: list[str] = [JobState.PENDING.value]
        self.cancel_event = threading.Event()
        self.done = threading.Event()
        self.result = None
        self.unhandled: BaseException | None = None
        self.submitted_wall = time.perf_counter()
        self.started_wall: float | None = None
        self.finished_wall: float | None = None
        self.dedup_hits = 0

    def set_state(self, state: JobState) -> None:
        """Transition and record; callers hold the queue's condition."""
        self.state = state
        self.history.append(state.value)

    @property
    def wait_seconds(self) -> float | None:
        if self.started_wall is None:
            return None
        return self.started_wall - self.submitted_wall

    def snapshot(self) -> JobSnapshot:
        elapsed = None
        if self.started_wall is not None:
            end = self.finished_wall or time.perf_counter()
            elapsed = end - self.started_wall
        if self.started_wall is not None:
            queued = self.started_wall - self.submitted_wall
        elif self.state is JobState.QUEUED:
            queued = time.perf_counter() - self.submitted_wall
        else:
            queued = (self.finished_wall or self.submitted_wall) - self.submitted_wall
        return JobSnapshot(
            job_id=self.job_id,
            algorithm=self.request.algorithm,
            name=self.request.name,
            state=self.state.value,
            priority=self.priority,
            wait_seconds=self.wait_seconds,
            elapsed_seconds=elapsed,
            error=getattr(self.result, "error", None),
            queued_seconds=queued,
            dedup_hits=self.dedup_hits,
        )


class HistoryStore:
    """Thread-safe, insertion-ordered store of finished experiment results."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._results: dict[str, Any] = {}

    def put(self, experiment_id: str, result) -> None:
        with self._lock:
            self._results[experiment_id] = result

    def get(self, experiment_id: str):
        with self._lock:
            try:
                return self._results[experiment_id]
            except KeyError:
                raise ExperimentNotFoundError(
                    f"no such experiment: {experiment_id!r}"
                ) from None

    def list(self) -> list:
        with self._lock:
            return list(self._results.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)


class ExperimentQueue:
    """Bounded priority queue + executor pool over an ExperimentRunner.

    ``max_concurrent`` is the executor pool size (how many experiments run
    at once); ``max_queued`` bounds the jobs *waiting* for an executor —
    one submission past it raises :class:`~repro.errors.QueueFullError`
    (admission control, so a traffic burst degrades loudly instead of
    accumulating unbounded state).
    """

    def __init__(
        self,
        runner: "ExperimentRunner",
        max_concurrent: int = 1,
        max_queued: int = 128,
        durability=None,
    ) -> None:
        if max_concurrent < 1:
            raise QueueFullError("max_concurrent must be >= 1")
        if max_queued < 1:
            raise QueueFullError("max_queued must be >= 1")
        self.runner = runner
        #: Optional :class:`~repro.durability.recovery.DurabilityManager`;
        #: when set, every lifecycle transition is journaled — submit and
        #: terminal records are fsync'd before the transition is visible.
        self.durability = durability
        self.max_concurrent = max_concurrent
        self.max_queued = max_queued
        self.history = HistoryStore()
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, str]] = []  # (-priority, seq, job_id)
        self._jobs: dict[str, _Job] = {}
        self._seq = itertools.count()
        self._queued_count = 0
        self._running_count = 0
        self._threads: list[threading.Thread] = []
        self._shutdown = False
        #: Finished-experiment wall times; ``repro health`` and the SLO
        #: layer estimate latency percentiles from these buckets.
        self.latency = Histogram(
            "repro_experiment_duration_seconds",
            "Wall time of finished experiments (success, error or cancelled).",
            buckets=_LATENCY_BUCKETS,
        )
        #: An attached :class:`~repro.observability.profiler.SamplingProfiler`;
        #: when set (and running), every finished job carries its own
        #: collapsed-stack profile on ``ExperimentResult.profile``.
        self.profiler = None
        # Lifetime counters for the unified metrics registry.
        self._submitted_total = 0
        self._succeeded_total = 0
        self._failed_total = 0
        self._cancelled_total = 0
        self._wait_seconds_total = 0.0

    # -------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spin up the executor pool (idempotent; submit() calls this).

        Under an active simulation no worker threads exist at all: the
        queue registers itself with the runtime, which claims jobs through
        :meth:`sim_claim` and executes them as cooperatively-scheduled
        tasks — dispatch order and overlap become a function of the seed.
        """
        sim = sim_hooks.current()
        if sim is not None:
            sim.register_queue(self)
            return
        with self._cond:
            if self._threads or self._shutdown:
                return
            # Concurrent experiments fan out concurrently; give the shared
            # transport pool enough threads that their sends overlap.
            self.runner.federation.transport.reserve_fanout_slots(self.max_concurrent)
            for index in range(self.max_concurrent):
                thread = threading.Thread(
                    target=_queue_worker,
                    args=(weakref.ref(self), self._cond),
                    name=f"experiment-queue-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight jobs."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
            threads = list(self._threads)
        if wait:
            for thread in threads:
                thread.join(timeout=30)

    # ------------------------------------------------------------- submission

    def submit(self, request, priority: int = 0, experiment_id: str | None = None) -> str:
        """Enqueue one experiment; returns its id immediately.

        ``priority`` orders dispatch (higher first, FIFO within a level).
        ``experiment_id`` is normally generated; tests pin it for
        byte-stable comparisons.
        """
        job_id = experiment_id or new_job_id("exp")
        with self._cond:
            if self._shutdown:
                raise QueueFullError("the experiment queue is shut down")
            if self._queued_count >= self.max_queued:
                raise QueueFullError(
                    f"queue full: {self._queued_count} jobs waiting "
                    f"(max_queued={self.max_queued})"
                )
            if job_id in self._jobs:
                raise QueueFullError(f"job {job_id!r} is already submitted")
            if self.durability is not None:
                # Write-ahead: the submit record is durable before the job
                # becomes claimable, so a crash can never run a job the
                # journal does not know about.
                self.durability.record_submit(job_id, request, priority)
            job = _Job(job_id, request, priority, next(self._seq))
            self._jobs[job_id] = job
            job.set_state(JobState.QUEUED)
            heapq.heappush(self._heap, (-priority, job.seq, job_id))
            self._queued_count += 1
            self._submitted_total += 1
            self._cond.notify()
        self.start()
        return job_id

    def wait(self, job_id: str, timeout: float | None = None):
        """Block until a job finishes; returns its ExperimentResult."""
        job = self._get_job(job_id)
        sim = sim_hooks.current()
        if sim is not None and not job.done.is_set():
            # No executor threads exist under simulation: drive the
            # cooperative scheduler until this job reaches a terminal state.
            sim.drive_until(job.done.is_set)
        if not job.done.wait(timeout):
            raise TimeoutError(f"experiment {job_id!r} did not finish in {timeout}s")
        if job.unhandled is not None:
            raise job.unhandled
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: guaranteed before dispatch, cooperative after.

        Returns True when cancellation was initiated (the job was queued or
        running), False when the job had already finished.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise ExperimentNotFoundError(f"no such experiment: {job_id!r}")
            if job.state.finished:
                return False
            if job.state is JobState.RUNNING:
                # Cooperative: the flow observes the flag between steps.
                job.cancel_event.set()
                return True
            # Still queued: take it off the books right here.  The heap entry
            # becomes a tombstone the executor skips.
            job.cancel_event.set()
            self._queued_count -= 1
            self._finalize_locked(job, self._cancelled_result(job, pre_dispatch=True))
        if self.durability is not None:
            self.durability.record_terminal(job_id, job.result)
        master_audit = self.runner.federation.master.audit
        master_audit.record(
            "experiment_cancelled", job_id=job_id, pre_dispatch=True
        )
        return True

    # ----------------------------------------------------------------- lookup

    def _get_job(self, job_id: str) -> _Job:
        with self._cond:
            job = self._jobs.get(job_id)
        if job is None:
            raise ExperimentNotFoundError(f"no such experiment: {job_id!r}")
        return job

    def get(self, experiment_id: str):
        """A finished experiment's result (the polling surface)."""
        return self.history.get(experiment_id)

    def job(self, job_id: str) -> JobSnapshot:
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise ExperimentNotFoundError(f"no such experiment: {job_id!r}")
            return job.snapshot()

    def jobs(self) -> list[JobSnapshot]:
        """Snapshots of every known job in submission order."""
        with self._cond:
            return [job.snapshot() for job in sorted(self._jobs.values(), key=lambda j: j.seq)]

    def stats(self) -> dict[str, Any]:
        """Queue health for the unified metrics registry."""
        with self._cond:
            return {
                "depth": self._queued_count,
                "running": self._running_count,
                "pool_size": self.max_concurrent,
                "max_queued": self.max_queued,
                "submitted_total": self._submitted_total,
                "succeeded_total": self._succeeded_total,
                "failed_total": self._failed_total,
                "cancelled_total": self._cancelled_total,
                "wait_seconds_total": self._wait_seconds_total,
            }

    # -------------------------------------------------------------- execution

    def _claim_locked(self) -> "_Job | None":
        """Pop and claim the highest-priority job; callers hold the cond.

        Returns None when the popped entry was a pre-dispatch-cancel
        tombstone (the caller just tries again).
        """
        _neg_priority, _seq, job_id = heapq.heappop(self._heap)
        # .get, not [..]: a heap entry can outlive its job (e.g. recovery
        # replaying a journal that references a pruned job) — treat it as a
        # tombstone instead of leaking a bare KeyError out of the executor.
        job = self._jobs.get(job_id)
        if job is None or job.state is not JobState.QUEUED:
            return None
        job.set_state(JobState.RUNNING)
        job.started_wall = time.perf_counter()
        self._queued_count -= 1
        self._running_count += 1
        self._wait_seconds_total += job.wait_seconds or 0.0
        return job

    def _execute_claimed(self, job: _Job) -> None:
        """Run one claimed job to a terminal state (any executor context)."""
        if self.durability is not None:
            self.durability.record_dispatch(job.job_id)
        try:
            result = self._run_job(job)
        except MasterCrashError:
            # Simulated master crash: the "process" died mid-flow.  No
            # finalize, no terminal journal record — recovery re-enqueues
            # the job from its last checkpoint after restart.  (The finally
            # below still releases the executor slot.)
            return
        finally:
            with self._cond:
                self._running_count -= 1
        # Journal the terminal record *before* waiters can observe the
        # result: once wait() returns, the caller may exit the process, and
        # an acknowledged result must already be durable.  finally: even a
        # failing journal write must not leave waiters hanging.
        try:
            if self.durability is not None:
                self.durability.record_terminal(job.job_id, result)
        finally:
            with self._cond:
                self._finalize_locked(job, result)

    # ------------------------------------------------------- simulation mode

    def sim_claim(self) -> "_Job | None":
        """Non-blocking claim for the simulation runtime's dispatcher."""
        with self._cond:
            while self._heap:
                job = self._claim_locked()
                if job is not None:
                    return job
            return None

    def sim_pending(self) -> int:
        """Jobs still waiting for dispatch (stall detection in simulations)."""
        with self._cond:
            return self._queued_count

    def job_histories(self) -> dict[str, tuple[str, ...]]:
        """Every job's recorded state history, keyed by id."""
        with self._cond:
            return {job_id: tuple(job.history) for job_id, job in self._jobs.items()}

    def _finalize_locked(self, job: _Job, result) -> None:
        job.finished_wall = time.perf_counter()
        if job.started_wall is not None:
            self.latency.observe(job.finished_wall - job.started_wall)
        job.set_state(JobState(result.status.value))
        if job.state is JobState.SUCCESS:
            self._succeeded_total += 1
        elif job.state is JobState.ERROR:
            self._failed_total += 1
        else:
            self._cancelled_total += 1
        job.result = result
        self.history.put(job.job_id, result)
        job.done.set()
        self._cond.notify_all()

    def _run_job(self, job: _Job):
        """Execute one experiment with per-job accounting and lifecycle."""
        from repro.core.experiment import ExperimentResult, ExperimentStatus

        runner = self.runner
        federation = runner.federation
        request = job.request
        experiment_id = job.job_id
        master_audit = federation.master.audit
        started = time.perf_counter()
        info: dict[str, Any] = {}
        with transport_mod.job_scope(experiment_id):
            master_audit.record(
                "experiment_started",
                job_id=experiment_id,
                algorithm=request.algorithm,
                data_model=request.data_model,
                datasets=sorted(request.datasets),
            )
            self._emit_queued_span(job)
            with tracer.span(
                "experiment", experiment=experiment_id, algorithm=request.algorithm
            ) as root_span:
                try:
                    result_data, workers = runner.execute(
                        request, experiment_id, cancel_event=job.cancel_event, info=info
                    )
                    result = ExperimentResult(
                        experiment_id=experiment_id,
                        request=request,
                        status=ExperimentStatus.SUCCESS,
                        result=result_data,
                        elapsed_seconds=time.perf_counter() - started,
                        workers=workers,
                        telemetry=self._collect_telemetry(experiment_id),
                        evicted=tuple(info.get("evicted", ())),
                    )
                except ExperimentCancelledError as exc:
                    root_span.set_error(f"{type(exc).__name__}: {exc}")
                    result = self._cancelled_result(job, pre_dispatch=False, error=str(exc))
                    result.workers = tuple(info.get("workers", ()))
                    result.elapsed_seconds = time.perf_counter() - started
                    result.telemetry = self._collect_telemetry(experiment_id)
                    result.evicted = tuple(info.get("evicted", ()))
                except ReproError as exc:
                    root_span.set_error(f"{type(exc).__name__}: {exc}")
                    result = ExperimentResult(
                        experiment_id=experiment_id,
                        request=request,
                        status=ExperimentStatus.ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        elapsed_seconds=time.perf_counter() - started,
                        workers=tuple(info.get("workers", ())),
                        telemetry=self._collect_telemetry(experiment_id),
                        evicted=tuple(info.get("evicted", ())),
                    )
                except MasterCrashError:
                    # A simulated crash is process death, not a job failure:
                    # it must not be converted into an ERROR result (the
                    # in-memory state is about to vanish anyway).
                    raise
                except BaseException as exc:  # noqa: BLE001 - reraised in wait()
                    # A programming error must not kill the executor thread;
                    # it surfaces to whoever wait()s on the job, exactly like
                    # the synchronous engine would have raised it.
                    root_span.set_error(f"{type(exc).__name__}: {exc}")
                    job.unhandled = exc
                    result = ExperimentResult(
                        experiment_id=experiment_id,
                        request=request,
                        status=ExperimentStatus.ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        elapsed_seconds=time.perf_counter() - started,
                        workers=tuple(info.get("workers", ())),
                        telemetry=self._collect_telemetry(experiment_id),
                        evicted=tuple(info.get("evicted", ())),
                    )
            master_audit.record(
                "experiment_finished",
                job_id=experiment_id,
                status=result.status.value,
                elapsed_seconds=round(result.elapsed_seconds, 6),
            )
        result.dedup_hits = int(info.get("dedup_hits", 0) or 0)
        job.dedup_hits = result.dedup_hits
        result.audit = tuple(
            merged_events(federation.audit_logs(), job_id=experiment_id)
        )
        if tracer.enabled:
            report = analyze_experiment(experiment_id)
            if report is not None:
                result.critical_path = report.to_dict()
        profiler = self.profiler
        if profiler is not None:
            result.profile = profiler.collapsed(job=experiment_id)
        self._drop_job_meters(experiment_id)
        return result

    def _emit_queued_span(self, job: _Job) -> None:
        """Record the job's time-in-queue as an ``experiment.queued`` span.

        The span is opened and closed in the executor thread (span stacks are
        thread-local) and backdated to the submission instant, so traces show
        the full PENDING→RUNNING wait as a distinct phase.  The wait duration
        lives only in the (normalized-away) timestamps, keeping trace trees
        byte-deterministic across runs.
        """
        with tracer.span(
            "experiment.queued", experiment=job.job_id, priority=job.priority
        ) as span:
            if span is not NULL_SPAN:
                span.start_wall = job.submitted_wall

    def _collect_telemetry(self, experiment_id: str):
        """This job's exact resource usage, read from the per-job meters."""
        from repro.core.experiment import ExperimentTelemetry

        federation = self.runner.federation
        stats = federation.transport.job_stats(experiment_id)
        rounds = elements = 0
        cluster = federation.smpc_cluster
        if cluster is not None:
            communication = cluster.job_communication(experiment_id)
            rounds, elements = communication.rounds, communication.elements
        return ExperimentTelemetry(
            messages=stats.messages,
            bytes_sent=stats.bytes_sent,
            simulated_network_seconds=stats.simulated_seconds,
            smpc_rounds=rounds,
            smpc_elements=elements,
        )

    def _drop_job_meters(self, experiment_id: str) -> None:
        """Release a finished job's meters; its result holds the numbers."""
        federation = self.runner.federation
        federation.transport.drop_job_stats(experiment_id)
        if federation.smpc_cluster is not None:
            federation.smpc_cluster.drop_job_meters(experiment_id)

    def _cancelled_result(self, job: _Job, pre_dispatch: bool, error: str | None = None):
        from repro.core.experiment import ExperimentResult, ExperimentStatus

        message = error or (
            f"experiment {job.job_id} was cancelled before dispatch"
            if pre_dispatch
            else f"experiment {job.job_id} was cancelled"
        )
        return ExperimentResult(
            experiment_id=job.job_id,
            request=job.request,
            status=ExperimentStatus.CANCELLED,
            error=message,
        )
