"""Handles to step results: pointers, not data.

"The result of a local computation is kept as a pointer to the actual data"
(paper §2).  A :class:`LocalHandle` names one logical output across all
participating workers; a :class:`GlobalHandle` names one output on the
master.  Handles flow between ``local_run`` and ``global_run`` calls; the
execution context decides, from the handle's kind, whether and how bytes
actually move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class LocalHandle:
    """One logical local-step output: a table per worker."""

    kind: str  # 'state' | 'transfer' | 'secure_transfer' | 'relation' | 'tensor'
    tables: Mapping[str, str]  # worker id -> table name on that worker
    shared_to_global: bool = False

    @property
    def workers(self) -> list[str]:
        return sorted(self.tables)

    def table_on(self, worker: str) -> str:
        return self.tables[worker]


@dataclass(frozen=True)
class GlobalHandle:
    """One global-step output: a table on the master."""

    kind: str
    table: str
    shared_to_locals: bool = False


class LazyLocalHandle:
    """A local-step output that may not have materialized yet.

    Returned by the recording :class:`~repro.core.context.ExecutionContext`:
    kind and sharing flags are static (they come from the UDF's declared
    output types), while the physical table map forces the producing plan
    node on first access.  Flows that only pass handles between steps never
    block; touching ``.tables`` is a true data dependency.
    """

    __slots__ = ("kind", "shared_to_global", "_executor", "_ref")

    def __init__(self, executor, ref, kind: str, shared_to_global: bool) -> None:
        self._executor = executor
        self._ref = ref
        self.kind = kind
        self.shared_to_global = shared_to_global

    @property
    def ref(self):
        return self._ref

    @property
    def tables(self) -> Mapping[str, str]:
        output = self._executor.result(self._ref.node_id, self._ref.index)
        return output["tables"]

    @property
    def workers(self) -> list[str]:
        return sorted(self.tables)

    def table_on(self, worker: str) -> str:
        return self.tables[worker]


class LazyGlobalHandle:
    """A global-step output that may not have materialized yet."""

    __slots__ = ("kind", "shared_to_locals", "_executor", "_ref")

    def __init__(self, executor, ref, kind: str, shared_to_locals: bool) -> None:
        self._executor = executor
        self._ref = ref
        self.kind = kind
        self.shared_to_locals = shared_to_locals

    @property
    def ref(self):
        return self._ref

    @property
    def table(self) -> str:
        output = self._executor.result(self._ref.node_id, self._ref.index)
        return output["table"]
