"""Handles to step results: pointers, not data.

"The result of a local computation is kept as a pointer to the actual data"
(paper §2).  A :class:`LocalHandle` names one logical output across all
participating workers; a :class:`GlobalHandle` names one output on the
master.  Handles flow between ``local_run`` and ``global_run`` calls; the
execution context decides, from the handle's kind, whether and how bytes
actually move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class LocalHandle:
    """One logical local-step output: a table per worker."""

    kind: str  # 'state' | 'transfer' | 'secure_transfer' | 'relation' | 'tensor'
    tables: Mapping[str, str]  # worker id -> table name on that worker
    shared_to_global: bool = False

    @property
    def workers(self) -> list[str]:
        return sorted(self.tables)

    def table_on(self, worker: str) -> str:
        return self.tables[worker]


@dataclass(frozen=True)
class GlobalHandle:
    """One global-step output: a table on the master."""

    kind: str
    table: str
    shared_to_locals: bool = False
