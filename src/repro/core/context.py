"""The execution context behind ``local_run`` / ``global_run``.

One :class:`ExecutionContext` exists per experiment.  It knows which workers
participate (dataset-aware shipping), how to build each worker's data view,
which aggregation path moves transfers (plain remote/merge or SMPC), and it
tracks every created table for cleanup.

Since the flow-plan refactor the context is a thin *recording facade*: each
``local_run`` / ``global_run`` / ``get_transfer_data`` call validates its
arguments, appends typed nodes to a :class:`~repro.core.plan.FlowPlan`, and
hands them to the :class:`~repro.core.plan_executor.PlanExecutor`.  The
returned handles are lazy — algorithms keep passing them between steps
unchanged, and bytes only move when a handle (or a transfer read) forces a
true data dependency.  In ``"eager"`` mode (the default, and the forced mode
under an active simulation) every node executes inline at record time, which
reproduces the historical imperative behavior exactly; ``"pipeline"`` mode
dispatches nodes the moment their dependencies allow, so independent local
steps overlap on the shared fan-out pool.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import (
    AlgorithmError,
    ExperimentCancelledError,
    QuorumError,
)
from repro.core.plan import (
    BarrierNode,
    BroadcastNode,
    FlowPlan,
    GlobalStepNode,
    LocalStepNode,
    PlainAggregateNode,
    PlanArg,
    SecureAggregateNode,
    ValueRef,
)
from repro.core.plan_executor import PlanExecutor, StepCache
from repro.core.state import (
    GlobalHandle,
    LazyGlobalHandle,
    LazyLocalHandle,
    LocalHandle,
)
from repro.federation.master import Master
from repro.federation.messages import new_job_id
from repro.simtest import hooks as sim_hooks
from repro.smpc.cluster import NoiseSpec
from repro.udfgen.decorators import get_spec
from repro.udfgen.iotypes import (
    LiteralType,
    MergeTransferType,
    RelationType,
    TransferType,
)


@dataclass(frozen=True)
class DataView:
    """A declarative slice of the primary data (variables + NA policy).

    The context compiles a view into a per-worker SQL query over that
    worker's data-model table, restricted to the datasets assigned to the
    worker by the shipping plan plus any experiment filter.
    """

    variables: tuple[str, ...]
    dropna: bool = True

    @classmethod
    def of(cls, variables: Sequence[str], dropna: bool = True) -> "DataView":
        return cls(tuple(variables), dropna)


class ExecutionContext:
    """Runtime services available to an algorithm flow."""

    def __init__(
        self,
        master: Master,
        data_model: str,
        worker_datasets: Mapping[str, Sequence[str]],
        aggregation: str = "smpc",
        noise: NoiseSpec | None = None,
        filter_sql: str | None = None,
        job_prefix: str | None = None,
        cancel_event: threading.Event | None = None,
        flow_mode: str | None = None,
        plan_cache: StepCache | None = None,
        durability=None,
        resume_reads: Sequence[Mapping[str, Any]] | None = None,
    ) -> None:
        if aggregation not in ("smpc", "plain"):
            raise AlgorithmError(f"unknown aggregation path {aggregation!r}")
        self.master = master
        self.data_model = data_model
        self.worker_datasets = {w: list(d) for w, d in worker_datasets.items()}
        self.workers = sorted(self.worker_datasets)
        if not self.workers:
            raise AlgorithmError("no workers selected for execution")
        self.aggregation = aggregation
        self.noise = noise
        self.filter_sql = filter_sql
        self.job_id = job_prefix or new_job_id("exp")
        #: Cooperative cancellation: the job queue sets this flag; the flow
        #: observes it between steps (not mid-send), so a cancelled
        #: experiment stops at the next step boundary.
        self.cancel_event = cancel_event
        self._step_counter = itertools.count(1)
        self._broadcasts: dict[tuple[str, str], str] = {}  # (table, worker) -> remote name
        self._broadcast_lock = threading.Lock()
        #: Workers evicted from this flow mid-experiment (degrading failure
        #: policy), mapped to the step at which they were lost.
        self.evicted: dict[str, str] = {}
        #: The recorded flow (inspectable via ``repro plan``).
        self.plan = FlowPlan(self.job_id)
        self.flow_mode = flow_mode or "eager"
        self.executor = PlanExecutor(self, mode=self.flow_mode, cache=plan_cache)
        # One broadcast node per distinct global-transfer source: repeat
        # uses share the placement work instead of re-shipping.
        self._bcast_nodes: dict[Any, int] = {}
        self._last_node: int | None = None
        #: Durability sink: every forced read is recorded (journal `step`
        #: record + atomic checkpoint) so a crashed experiment can resume
        #: from its last read instead of step 0.
        self._durability = durability
        #: Recorded read frontier from a recovered checkpoint.  While it is
        #: being replayed, plan nodes are submitted as *ghosts* (recorded
        #: but never executed) and reads are answered from the log; the
        #: first read past the log — or a key mismatch — switches to live
        #: execution.
        self._resume = [dict(entry) for entry in resume_reads] if resume_reads else None
        self._resume_pos = 0
        self.replayed_reads = 0
        self.resume_diverged = False

    # ----------------------------------------------------------- cancellation

    def check_cancelled(self) -> None:
        """Raise if this experiment's job was cancelled (between-step check)."""
        sim = sim_hooks.current()
        if sim is not None:
            # A step boundary: step-indexed faults (cancellations) fire here,
            # before the flag check, so an injected cancel takes effect at
            # this very boundary rather than the next one.
            sim.flow_step(f"step:{self.job_id}")
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise ExperimentCancelledError(
                f"experiment {self.job_id} was cancelled mid-flow"
            )
        self.executor.raise_pending()

    # ------------------------------------------------------------- data views

    def view_query(self, view: DataView, worker: str) -> str:
        """Compile a DataView into SQL for one worker."""
        datasets = self.worker_datasets[worker]
        if not datasets:
            raise AlgorithmError(f"worker {worker!r} has no assigned datasets")
        columns = ", ".join(view.variables)
        table = f"data_{self.data_model}"
        quoted = ", ".join("'" + code.replace("'", "''") + "'" for code in datasets)
        conditions = [f"dataset IN ({quoted})"]
        if view.dropna:
            conditions.extend(f"{variable} IS NOT NULL" for variable in view.variables)
        if self.filter_sql:
            conditions.append(f"({self.filter_sql})")
        where = " AND ".join(conditions)
        return f"SELECT {columns} FROM {table} WHERE {where}"

    # ------------------------------------------------------------ plan record

    def _record(self, node) -> None:
        """Append one node and hand it to the executor.

        Under a degrading failure policy every node carries an implicit
        dependency on its predecessor (evictions mutate the worker set, so
        the flow must observe them in program order); that chaining is
        encoded in ``deps`` by :meth:`_chain` before construction.
        """
        self.plan.add(node)
        self._last_node = node.node_id
        if self._replaying():
            self.executor.submit_ghost(node)
        else:
            self.executor.submit(node)

    def _replaying(self) -> bool:
        return self._resume is not None and self._resume_pos < len(self._resume)

    def _chain(self, deps: list[int]) -> tuple[int, ...]:
        """Finalize a node's dependency edges (dedup + degrade-order chain)."""
        if self.master.policy.degrade and self._last_node is not None:
            deps = deps + [self._last_node]
        seen: set[int] = set()
        ordered: list[int] = []
        for dep in deps:
            if dep not in seen:
                seen.add(dep)
                ordered.append(dep)
        return tuple(ordered)

    def _broadcast_node(self, source: PlanArg, step_id: str) -> int:
        """Get-or-create the broadcast node for one global-transfer source."""
        if source.ref is not None:
            key = ("ref", source.ref.node_id, source.ref.index)
            deps = [source.ref.node_id]
        else:
            key = ("table", str(source.value))
            deps = []
        existing = self._bcast_nodes.get(key)
        if existing is not None:
            return existing
        node = BroadcastNode(
            node_id=self.plan.next_id(),
            deps=self._chain(deps),
            source=source,
            step_id=step_id,
        )
        self._bcast_nodes[key] = node.node_id
        self._record(node)
        return node.node_id

    # -------------------------------------------------------------- local run

    def local_run(
        self,
        func: Callable[..., Any],
        keyword_args: Mapping[str, Any],
        share_to_global: Sequence[bool],
    ) -> LazyLocalHandle | tuple[LazyLocalHandle, ...]:
        """Record one local computation step over every participating worker."""
        self.check_cancelled()
        spec = get_spec(func)
        if len(share_to_global) != len(spec.outputs):
            raise AlgorithmError(
                f"share_to_global has {len(share_to_global)} flags for "
                f"{len(spec.outputs)} outputs of {spec.name!r}"
            )
        out_kinds = tuple(iotype.kind for iotype in spec.outputs)
        for index, kind in enumerate(out_kinds):
            if share_to_global[index] and kind not in ("transfer", "secure_transfer"):
                raise AlgorithmError(
                    f"output {index} of {spec.name!r} is {kind!r}; only transfers "
                    "can be shared to the global node"
                )
        step_id = f"{self.job_id}_s{next(self._step_counter)}"
        args: list[tuple[str, PlanArg]] = []
        deps: list[int] = []
        for pname, value in keyword_args.items():
            arg = self._record_local_argument(spec, pname, value, step_id)
            if arg.ref is not None:
                deps.append(arg.ref.node_id)
            args.append((pname, arg))
        node = LocalStepNode(
            node_id=self.plan.next_id(),
            deps=self._chain(deps),
            step_id=step_id,
            udf=spec.name,
            args=tuple(args),
            share=tuple(bool(flag) for flag in share_to_global),
            out_kinds=out_kinds,
        )
        self._record(node)
        handles = [
            LazyLocalHandle(
                self.executor,
                ValueRef(node.node_id, index),
                kind,
                bool(share_to_global[index]),
            )
            for index, kind in enumerate(out_kinds)
        ]
        return handles[0] if len(handles) == 1 else tuple(handles)

    def _record_local_argument(
        self, spec, pname: str, value: Any, step_id: str
    ) -> PlanArg:
        iotype = spec.input_type(pname)
        if isinstance(value, DataView):
            if not isinstance(iotype, RelationType):
                raise AlgorithmError(f"parameter {pname!r}: data views bind to relations only")
            return PlanArg("view", view=value)
        if isinstance(value, LazyLocalHandle):
            return PlanArg("ref", ref=value.ref)
        if isinstance(value, LocalHandle):
            return PlanArg("local_tables", value=dict(value.tables))
        if isinstance(value, (LazyGlobalHandle, GlobalHandle)):
            if value.kind != "transfer":
                raise AlgorithmError(
                    f"parameter {pname!r}: only global transfers can be broadcast, "
                    f"got {value.kind!r}"
                )
            if isinstance(value, LazyGlobalHandle):
                source = PlanArg("ref", ref=value.ref)
            else:
                source = PlanArg("global_table", value=value.table)
            bcast = self._broadcast_node(source, step_id)
            return PlanArg("ref", ref=ValueRef(bcast, 0))
        if isinstance(iotype, LiteralType):
            return PlanArg("literal", value=value)
        raise AlgorithmError(
            f"parameter {pname!r}: cannot bind a {type(value).__name__} to "
            f"{type(iotype).__name__}"
        )

    def _evict(self, lost: Sequence[str], step_id: str) -> None:
        """Drop workers from the remainder of this flow (degrade path)."""
        lost_set = set(lost)
        survivors = [worker for worker in self.workers if worker not in lost_set]
        if not survivors:
            raise QuorumError(
                f"step {step_id}: every participating worker was lost"
            )
        for worker in lost_set:
            self.worker_datasets.pop(worker, None)
            self.evicted[worker] = step_id
        self.workers = survivors
        self.master.audit.record(
            "worker_evicted",
            job_id=step_id,
            workers=sorted(lost_set),
            survivors=len(survivors),
        )

    # ------------------------------------------------------------- global run

    def global_run(
        self,
        func: Callable[..., Any],
        keyword_args: Mapping[str, Any],
        share_to_locals: Sequence[bool],
    ) -> LazyGlobalHandle | tuple[LazyGlobalHandle, ...]:
        """Record one global step on the master, aggregating local transfers."""
        self.check_cancelled()
        spec = get_spec(func)
        if len(share_to_locals) != len(spec.outputs):
            raise AlgorithmError(
                f"share_to_locals has {len(share_to_locals)} flags for "
                f"{len(spec.outputs)} outputs of {spec.name!r}"
            )
        step_id = f"{self.job_id}_s{next(self._step_counter)}"
        args: list[tuple[str, PlanArg]] = []
        deps: list[int] = []
        # Aggregates of one global step draw per-step table counters on the
        # master; chaining them in parameter order keeps the drawn names
        # deterministic under concurrent dispatch.
        last_aggregate: int | None = None
        for pname, value in keyword_args.items():
            arg, aggregate = self._record_global_argument(
                spec, pname, value, step_id, last_aggregate
            )
            if aggregate is not None:
                last_aggregate = aggregate
            if arg.ref is not None:
                deps.append(arg.ref.node_id)
            args.append((pname, arg))
        node = GlobalStepNode(
            node_id=self.plan.next_id(),
            deps=self._chain(deps),
            step_id=step_id,
            udf=spec.name,
            args=tuple(args),
            share=tuple(bool(flag) for flag in share_to_locals),
            out_kinds=tuple(iotype.kind for iotype in spec.outputs),
        )
        self._record(node)
        handles = [
            LazyGlobalHandle(
                self.executor, ValueRef(node.node_id, index), iotype.kind, bool(flag)
            )
            for index, (iotype, flag) in enumerate(zip(spec.outputs, share_to_locals))
        ]
        return handles[0] if len(handles) == 1 else tuple(handles)

    def _record_global_argument(
        self, spec, pname: str, value: Any, step_id: str, last_aggregate: int | None
    ) -> tuple[PlanArg, int | None]:
        iotype = spec.input_type(pname)
        if isinstance(value, (LazyLocalHandle, LocalHandle)):
            if not value.shared_to_global:
                raise AlgorithmError(
                    f"parameter {pname!r}: local output was not shared to global"
                )
            node_id = self._record_aggregate(
                value, iotype, step_id, pname, last_aggregate
            )
            return PlanArg("ref", ref=ValueRef(node_id, 0)), node_id
        if isinstance(value, LazyGlobalHandle):
            return PlanArg("ref", ref=value.ref), None
        if isinstance(value, GlobalHandle):
            return PlanArg("global_table", value=value.table), None
        if isinstance(iotype, LiteralType):
            return PlanArg("literal", value=value), None
        raise AlgorithmError(
            f"parameter {pname!r}: cannot bind a {type(value).__name__} to "
            f"{type(iotype).__name__}"
        )

    def _record_aggregate(
        self,
        handle: LazyLocalHandle | LocalHandle,
        iotype,
        step_id: str,
        pname: str,
        last_aggregate: int | None,
    ) -> int:
        source, deps = self._local_source(handle)
        if last_aggregate is not None:
            deps = deps + [last_aggregate]
        if handle.kind == "secure_transfer":
            if not isinstance(iotype, TransferType):
                raise AlgorithmError(
                    f"parameter {pname!r}: aggregated input binds to transfer()"
                )
            node = SecureAggregateNode(
                node_id=self.plan.next_id(),
                deps=self._chain(deps),
                gather_id=f"{step_id}_{pname}",
                store_id=step_id,
                source=source,
                path=self.aggregation,
            )
        elif handle.kind == "transfer":
            if not isinstance(iotype, MergeTransferType):
                raise AlgorithmError(
                    f"parameter {pname!r}: plain transfers bind to merge_transfer()"
                )
            node = PlainAggregateNode(
                node_id=self.plan.next_id(),
                deps=self._chain(deps),
                gather_id=step_id,
                source=source,
                store=True,
            )
        else:
            raise AlgorithmError(
                f"parameter {pname!r}: cannot aggregate a {handle.kind!r} output"
            )
        self._record(node)
        return node.node_id

    def _local_source(
        self, handle: LazyLocalHandle | LocalHandle
    ) -> tuple[PlanArg, list[int]]:
        if isinstance(handle, LazyLocalHandle):
            return PlanArg("ref", ref=handle.ref), [handle.ref.node_id]
        return PlanArg("local_tables", value=dict(handle.tables)), []

    # ------------------------------------------------------------- transfers

    def get_transfer_data(
        self, handle: LazyGlobalHandle | GlobalHandle | LazyLocalHandle | LocalHandle
    ) -> Any:
        """Read transfer contents on the master (the Figure 2 final read).

        This is a forcing point: the recorded read node — and everything it
        depends on — materializes before the call returns.
        """
        self.check_cancelled()
        if isinstance(handle, (LazyGlobalHandle, GlobalHandle)):
            if isinstance(handle, LazyGlobalHandle):
                source, deps = PlanArg("ref", ref=handle.ref), [handle.ref.node_id]
            else:
                source, deps = PlanArg("global_table", value=handle.table), []
            node = BarrierNode(
                node_id=self.plan.next_id(), deps=self._chain(deps), source=source
            )
            self._record(node)
            return self._force_read(node)
        if isinstance(handle, (LazyLocalHandle, LocalHandle)):
            source, deps = self._local_source(handle)
            if handle.kind == "secure_transfer":
                step_id = f"{self.job_id}_read{next(self._step_counter)}"
                node = SecureAggregateNode(
                    node_id=self.plan.next_id(),
                    deps=self._chain(deps),
                    gather_id=step_id,
                    store_id=None,
                    source=source,
                    path=self.aggregation,
                )
            elif handle.kind == "transfer":
                step_id = f"{self.job_id}_read{next(self._step_counter)}"
                node = PlainAggregateNode(
                    node_id=self.plan.next_id(),
                    deps=self._chain(deps),
                    gather_id=step_id,
                    source=source,
                    store=False,
                )
            else:
                raise AlgorithmError(f"cannot read a {handle.kind!r} output")
            self._record(node)
            return self._force_read(node)
        raise AlgorithmError(f"not a handle: {type(handle).__name__}")

    def _force_read(self, node) -> Any:
        """Materialize one read node — from the resume log while replaying,
        live otherwise — and record the value for checkpointing.

        The read key ties the recorded value to the exact plan node that
        produced it (node ids are deterministic functions of the recorded
        flow), so replaying over a *different* plan is detected as a key
        mismatch: replay is abandoned and the flow runs live from this
        point, which is always correct, just slower.
        """
        key = f"{type(node).__name__}:n{node.node_id}"
        if self._replaying():
            entry = self._resume[self._resume_pos]
            if entry.get("key") == key:
                self._resume_pos += 1
                self.replayed_reads += 1
                value = entry.get("value")
                self.executor.set_replayed(node.node_id, value)
                if self._durability is not None:
                    # Re-record so this life's checkpoint covers the whole
                    # frontier — a second crash resumes from here, not from
                    # the first crash's frontier.
                    self._durability.record_read(self.job_id, key, value)
                return value
            self._resume_pos = len(self._resume)
            self.resume_diverged = True
        value = self.executor.result(node.node_id)
        if self._durability is not None:
            self._durability.record_read(self.job_id, key, value)
        return value

    # --------------------------------------------------------------- lifecycle

    def flush(self) -> None:
        """Wait out every recorded node; surface the first failure in order."""
        self.executor.flush()

    def cleanup(self) -> None:
        self.executor.close()
        cache = self.executor.cache
        if cache is None:
            self.master.cleanup(self.job_id, self.workers)
            return
        keep, drops = cache.release_job(self.job_id, self.master.catalog_epoch)
        self.master.cleanup(self.job_id, self.workers, keep_tables=keep)
        if drops:
            self.master.drop_worker_tables(drops)
