"""The execution context behind ``local_run`` / ``global_run``.

One :class:`ExecutionContext` exists per experiment.  It knows which workers
participate (dataset-aware shipping), how to build each worker's data view,
which aggregation path moves transfers (plain remote/merge or SMPC), and it
tracks every created table for cleanup.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import (
    AlgorithmError,
    ExperimentCancelledError,
    FederationError,
    QuorumError,
)
from repro.core.state import GlobalHandle, LocalHandle
from repro.federation.master import Master
from repro.federation.messages import new_job_id
from repro.observability.trace import tracer
from repro.simtest import hooks as sim_hooks
from repro.smpc.cluster import NoiseSpec
from repro.udfgen.decorators import get_spec
from repro.udfgen.iotypes import (
    LiteralType,
    MergeTransferType,
    RelationType,
    StateType,
    TensorType,
    TransferType,
)


@dataclass(frozen=True)
class DataView:
    """A declarative slice of the primary data (variables + NA policy).

    The context compiles a view into a per-worker SQL query over that
    worker's data-model table, restricted to the datasets assigned to the
    worker by the shipping plan plus any experiment filter.
    """

    variables: tuple[str, ...]
    dropna: bool = True

    @classmethod
    def of(cls, variables: Sequence[str], dropna: bool = True) -> "DataView":
        return cls(tuple(variables), dropna)


class ExecutionContext:
    """Runtime services available to an algorithm flow."""

    def __init__(
        self,
        master: Master,
        data_model: str,
        worker_datasets: Mapping[str, Sequence[str]],
        aggregation: str = "smpc",
        noise: NoiseSpec | None = None,
        filter_sql: str | None = None,
        job_prefix: str | None = None,
        cancel_event: threading.Event | None = None,
    ) -> None:
        if aggregation not in ("smpc", "plain"):
            raise AlgorithmError(f"unknown aggregation path {aggregation!r}")
        self.master = master
        self.data_model = data_model
        self.worker_datasets = {w: list(d) for w, d in worker_datasets.items()}
        self.workers = sorted(self.worker_datasets)
        if not self.workers:
            raise AlgorithmError("no workers selected for execution")
        self.aggregation = aggregation
        self.noise = noise
        self.filter_sql = filter_sql
        self.job_id = job_prefix or new_job_id("exp")
        #: Cooperative cancellation: the job queue sets this flag; the flow
        #: observes it between steps (not mid-send), so a cancelled
        #: experiment stops at the next step boundary.
        self.cancel_event = cancel_event
        self._step_counter = itertools.count(1)
        self._broadcasts: dict[tuple[str, str], str] = {}  # (table, worker) -> remote name
        #: Workers evicted from this flow mid-experiment (degrading failure
        #: policy), mapped to the step at which they were lost.
        self.evicted: dict[str, str] = {}

    # ----------------------------------------------------------- cancellation

    def check_cancelled(self) -> None:
        """Raise if this experiment's job was cancelled (between-step check)."""
        sim = sim_hooks.current()
        if sim is not None:
            # A step boundary: step-indexed faults (cancellations) fire here,
            # before the flag check, so an injected cancel takes effect at
            # this very boundary rather than the next one.
            sim.flow_step(f"step:{self.job_id}")
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise ExperimentCancelledError(
                f"experiment {self.job_id} was cancelled mid-flow"
            )

    # ------------------------------------------------------------- data views

    def view_query(self, view: DataView, worker: str) -> str:
        """Compile a DataView into SQL for one worker."""
        datasets = self.worker_datasets[worker]
        if not datasets:
            raise AlgorithmError(f"worker {worker!r} has no assigned datasets")
        columns = ", ".join(view.variables)
        table = f"data_{self.data_model}"
        quoted = ", ".join("'" + code.replace("'", "''") + "'" for code in datasets)
        conditions = [f"dataset IN ({quoted})"]
        if view.dropna:
            conditions.extend(f"{variable} IS NOT NULL" for variable in view.variables)
        if self.filter_sql:
            conditions.append(f"({self.filter_sql})")
        where = " AND ".join(conditions)
        return f"SELECT {columns} FROM {table} WHERE {where}"

    # -------------------------------------------------------------- local run

    def local_run(
        self,
        func: Callable[..., Any],
        keyword_args: Mapping[str, Any],
        share_to_global: Sequence[bool],
    ) -> LocalHandle | tuple[LocalHandle, ...]:
        """Run one local computation step on every participating worker."""
        self.check_cancelled()
        spec = get_spec(func)
        if len(share_to_global) != len(spec.outputs):
            raise AlgorithmError(
                f"share_to_global has {len(share_to_global)} flags for "
                f"{len(spec.outputs)} outputs of {spec.name!r}"
            )
        step_id = f"{self.job_id}_s{next(self._step_counter)}"
        with tracer.span(
            "flow.local_step", step=step_id, udf=spec.name, workers=len(self.workers)
        ) as step_span:
            self._prebroadcast(keyword_args.values(), step_id)
            per_worker: dict[str, dict[str, Any]] = {}
            for worker in self.workers:
                arguments: dict[str, Any] = {}
                for pname, value in keyword_args.items():
                    arguments[pname] = self._bind_local_argument(
                        spec, pname, value, worker, step_id
                    )
                per_worker[worker] = arguments
            results = self.master.run_local_step(step_id, spec.name, per_worker)
            lost = [worker for worker in self.workers if worker not in results]
            if lost:
                # The master's failure policy already enforced the quorum; here
                # the flow itself degrades: evicted workers leave every later
                # step and aggregation of this experiment.
                step_span.set_attribute("evicted", sorted(lost))
                self._evict(lost, step_id)
        handles: list[LocalHandle] = []
        for index, iotype in enumerate(spec.outputs):
            tables = {worker: results[worker][index]["table"] for worker in self.workers}
            kind = results[self.workers[0]][index]["kind"]
            shared = bool(share_to_global[index])
            if shared and kind not in ("transfer", "secure_transfer"):
                raise AlgorithmError(
                    f"output {index} of {spec.name!r} is {kind!r}; only transfers "
                    "can be shared to the global node"
                )
            handles.append(LocalHandle(kind, tables, shared))
        return handles[0] if len(handles) == 1 else tuple(handles)

    def _bind_local_argument(
        self, spec, pname: str, value: Any, worker: str, step_id: str
    ) -> dict[str, Any]:
        iotype = spec.input_type(pname)
        if isinstance(value, DataView):
            if not isinstance(iotype, RelationType):
                raise AlgorithmError(f"parameter {pname!r}: data views bind to relations only")
            return {
                "kind": "view",
                "query": self.view_query(value, worker),
                "variables": list(value.variables),
                "datasets": list(self.worker_datasets[worker]),
            }
        if isinstance(value, LocalHandle):
            if worker not in value.tables:
                raise AlgorithmError(
                    f"parameter {pname!r}: no local table for worker {worker!r}"
                )
            return {"kind": "table", "name": value.tables[worker]}
        if isinstance(value, GlobalHandle):
            if value.kind != "transfer":
                raise AlgorithmError(
                    f"parameter {pname!r}: only global transfers can be broadcast, "
                    f"got {value.kind!r}"
                )
            table = self._broadcast(value, worker, step_id)
            return {"kind": "table", "name": table}
        if isinstance(iotype, LiteralType):
            return {"kind": "literal", "value": value}
        raise AlgorithmError(
            f"parameter {pname!r}: cannot bind a {type(value).__name__} to "
            f"{type(iotype).__name__}"
        )

    def _prebroadcast(self, values: Any, step_id: str) -> None:
        """Ship global transfers to every missing worker in one fan-out.

        Binding then finds each (table, worker) placement already cached, so
        a broadcast costs one concurrent dispatch instead of a per-worker
        round-trip chain.  Workers that cannot be reached under a degrading
        failure policy are evicted from the flow before argument binding.
        """
        for value in values:
            if not (isinstance(value, GlobalHandle) and value.kind == "transfer"):
                continue
            missing = [w for w in self.workers if (value.table, w) not in self._broadcasts]
            if not missing:
                continue
            placed = self.master.broadcast_transfer(self.job_id, value.table, missing)
            for worker, remote_table in placed.items():
                self._broadcasts[(value.table, worker)] = remote_table
            lost = [worker for worker in missing if worker not in placed]
            if lost:
                self._evict(lost, step_id)

    def _evict(self, lost: Sequence[str], step_id: str) -> None:
        """Drop workers from the remainder of this flow (degrade path)."""
        lost_set = set(lost)
        survivors = [worker for worker in self.workers if worker not in lost_set]
        if not survivors:
            raise QuorumError(
                f"step {step_id}: every participating worker was lost"
            )
        for worker in lost_set:
            self.worker_datasets.pop(worker, None)
            self.evicted[worker] = step_id
        self.workers = survivors
        self.master.audit.record(
            "worker_evicted",
            job_id=step_id,
            workers=sorted(lost_set),
            survivors=len(survivors),
        )

    def _broadcast(self, handle: GlobalHandle, worker: str, step_id: str) -> str:
        key = (handle.table, worker)
        if key not in self._broadcasts:
            placed = self.master.broadcast_transfer(self.job_id, handle.table, [worker])
            self._broadcasts[key] = placed[worker]
        return self._broadcasts[key]

    # ------------------------------------------------------------- global run

    def global_run(
        self,
        func: Callable[..., Any],
        keyword_args: Mapping[str, Any],
        share_to_locals: Sequence[bool],
    ) -> GlobalHandle | tuple[GlobalHandle, ...]:
        """Run one global step on the master, aggregating local transfers."""
        self.check_cancelled()
        spec = get_spec(func)
        if len(share_to_locals) != len(spec.outputs):
            raise AlgorithmError(
                f"share_to_locals has {len(share_to_locals)} flags for "
                f"{len(spec.outputs)} outputs of {spec.name!r}"
            )
        step_id = f"{self.job_id}_s{next(self._step_counter)}"
        with tracer.span("flow.global_step", step=step_id, udf=spec.name):
            arguments: dict[str, Any] = {}
            for pname, value in keyword_args.items():
                arguments[pname] = self._bind_global_argument(spec, pname, value, step_id)
            results = self.master.run_global_step(step_id, spec.name, arguments)
        handles = [
            GlobalHandle(result["kind"], result["table"], bool(flag))
            for result, flag in zip(results, share_to_locals)
        ]
        return handles[0] if len(handles) == 1 else tuple(handles)

    def _bind_global_argument(self, spec, pname: str, value: Any, step_id: str) -> Any:
        iotype = spec.input_type(pname)
        if isinstance(value, LocalHandle):
            if not value.shared_to_global:
                raise AlgorithmError(
                    f"parameter {pname!r}: local output was not shared to global"
                )
            return self._aggregate_local(value, iotype, step_id, pname)
        if isinstance(value, GlobalHandle):
            return value.table
        if isinstance(iotype, LiteralType):
            return value
        raise AlgorithmError(
            f"parameter {pname!r}: cannot bind a {type(value).__name__} to "
            f"{type(iotype).__name__}"
        )

    def _aggregate_local(self, handle: LocalHandle, iotype, step_id: str, pname: str):
        if handle.kind == "secure_transfer":
            if not isinstance(iotype, TransferType):
                raise AlgorithmError(
                    f"parameter {pname!r}: aggregated input binds to transfer()"
                )
            aggregated = self._aggregate_secure_payloads(handle, f"{step_id}_{pname}")
            return self.master.store_global_transfer(step_id, aggregated)
        if handle.kind == "transfer":
            transfers = self.master.gather_transfers_plain(step_id, dict(handle.tables))
            if isinstance(iotype, MergeTransferType):
                return [
                    self.master.store_global_transfer(step_id, transfer)
                    for transfer in transfers
                ]
            raise AlgorithmError(
                f"parameter {pname!r}: plain transfers bind to merge_transfer()"
            )
        raise AlgorithmError(
            f"parameter {pname!r}: cannot aggregate a {handle.kind!r} output"
        )

    def _aggregate_secure_payloads(self, handle: LocalHandle, job_id: str) -> dict[str, Any]:
        """Aggregate secure-transfer outputs along the configured path.

        SMPC: the cluster imports shares and aggregates under the protocol.
        Plain: the paper's non-secure alternative — the transfers travel
        through remote/merge tables and the master aggregates in the clear.
        """
        if self.aggregation == "smpc":
            return self.master.gather_transfers_secure(
                job_id, dict(handle.tables), noise=self.noise
            )
        from repro.federation.aggregation import aggregate_plain

        transfers = self.master.gather_transfers_plain(job_id, dict(handle.tables))
        return aggregate_plain(transfers)

    # ------------------------------------------------------------- transfers

    def get_transfer_data(self, handle: GlobalHandle | LocalHandle) -> Any:
        """Read transfer contents on the master (the Figure 2 final read)."""
        self.check_cancelled()
        if isinstance(handle, GlobalHandle):
            return self.master.read_transfer(handle.table)
        if isinstance(handle, LocalHandle):
            if handle.kind == "secure_transfer":
                step_id = f"{self.job_id}_read{next(self._step_counter)}"
                return self._aggregate_secure_payloads(handle, step_id)
            if handle.kind == "transfer":
                step_id = f"{self.job_id}_read{next(self._step_counter)}"
                return self.master.gather_transfers_plain(step_id, dict(handle.tables))
            raise AlgorithmError(f"cannot read a {handle.kind!r} output")
        raise AlgorithmError(f"not a handle: {type(handle).__name__}")

    def cleanup(self) -> None:
        self.master.cleanup(self.job_id, self.workers)
