"""Registry of available algorithms (the UI's "Available Algorithms" panel)."""

from __future__ import annotations

from typing import Type

from repro.core.algorithm import FederatedAlgorithm
from repro.errors import AlgorithmError


class AlgorithmRegistry:
    """Name -> algorithm class, with UI-facing listings."""

    def __init__(self) -> None:
        self._algorithms: dict[str, Type[FederatedAlgorithm]] = {}

    def register(self, cls: Type[FederatedAlgorithm]) -> None:
        if not cls.name:
            raise AlgorithmError(f"{cls.__name__} has no registry name")
        if cls.name in self._algorithms:
            raise AlgorithmError(f"algorithm {cls.name!r} is already registered")
        self._algorithms[cls.name] = cls

    def get(self, name: str) -> Type[FederatedAlgorithm]:
        cls = self._algorithms.get(name)
        if cls is None:
            raise AlgorithmError(f"no such algorithm: {name!r}")
        return cls

    def __contains__(self, name: str) -> bool:
        return name in self._algorithms

    def names(self) -> list[str]:
        return sorted(self._algorithms)

    def listing(self) -> list[dict[str, str]]:
        """Name + label pairs, as the dashboard's algorithm panel shows."""
        return [
            {"name": name, "label": self._algorithms[name].label or name}
            for name in self.names()
        ]


algorithm_registry = AlgorithmRegistry()


def register_algorithm(cls: Type[FederatedAlgorithm]) -> Type[FederatedAlgorithm]:
    """Class decorator adding an algorithm to the global registry."""
    algorithm_registry.register(cls)
    return cls
