"""The federated algorithm framework (the paper's primary contribution).

An algorithm is written in three blocks (paper §2, *Federated Algorithm*):

(a) **local computation steps** — ``@udf``-decorated functions that run on
    worker nodes and can read primary data,
(b) **the algorithm flow** — a subclass of :class:`FederatedAlgorithm` whose
    ``run`` method orchestrates execution with ``local_run`` / ``global_run``
    (the paper's Figure 2 API), and
(c) **the algorithm specifications** — typed parameter declarations that the
    platform validates before execution.

Local results are kept as *pointers* (table handles) on the node that
produced them; only transfers (aggregates) move, via the plain remote/merge
path or the SMPC cluster.
"""

from repro.core.algorithm import FederatedAlgorithm, get_transfer_data
from repro.core.context import DataView, ExecutionContext
from repro.core.experiment import ExperimentEngine, ExperimentRequest, ExperimentResult
from repro.core.registry import algorithm_registry, register_algorithm
from repro.core.specs import ParameterSpec, validate_parameters
from repro.core.state import GlobalHandle, LocalHandle

__all__ = [
    "DataView",
    "ExecutionContext",
    "ExperimentEngine",
    "ExperimentRequest",
    "ExperimentResult",
    "FederatedAlgorithm",
    "GlobalHandle",
    "LocalHandle",
    "ParameterSpec",
    "algorithm_registry",
    "get_transfer_data",
    "register_algorithm",
    "validate_parameters",
]
