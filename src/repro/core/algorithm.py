"""The algorithm base class: the Figure 2 developer API.

An algorithm flow subclasses :class:`FederatedAlgorithm`, declares its
variable needs and parameter specifications as class attributes, and
implements ``run`` using ``self.local_run`` / ``self.global_run`` /
``get_transfer_data`` — the exact surface the paper's Figure 2 shows for
linear regression.
"""

from __future__ import annotations

from typing import Any, Callable, ClassVar, Mapping, Sequence

from repro.core.context import DataView, ExecutionContext
from repro.core.specs import ParameterSpec
from repro.core.state import GlobalHandle, LocalHandle
from repro.errors import AlgorithmError


class FederatedAlgorithm:
    """Base class for MIP algorithms.

    Class attributes declared by subclasses:

    - ``name`` — registry key (e.g. ``"linear_regression"``),
    - ``label`` — human-readable name shown in the UI,
    - ``needs_y`` / ``needs_x`` — variable requirements (``"required"``,
      ``"optional"`` or ``"none"``),
    - ``y_types`` / ``x_types`` — accepted variable kinds
      (``"numeric"`` / ``"nominal"``),
    - ``parameters`` — a tuple of :class:`ParameterSpec`.
    """

    name: ClassVar[str] = ""
    label: ClassVar[str] = ""
    needs_y: ClassVar[str] = "required"
    needs_x: ClassVar[str] = "none"
    y_types: ClassVar[tuple[str, ...]] = ("numeric",)
    x_types: ClassVar[tuple[str, ...]] = ("numeric", "nominal")
    parameters: ClassVar[tuple[ParameterSpec, ...]] = ()

    def __init__(
        self,
        context: ExecutionContext,
        y: Sequence[str] | None = None,
        x: Sequence[str] | None = None,
        parameters: Mapping[str, Any] | None = None,
        metadata: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> None:
        self.ctx = context
        self.y = list(y or [])
        self.x = list(x or [])
        self.params = dict(parameters or {})
        #: Common Data Element metadata for the experiment's variables:
        #: {variable: {"is_categorical": bool, "enumerations": [...], ...}}.
        self.metadata = {k: dict(v) for k, v in (metadata or {}).items()}

    # ------------------------------------------------------- runtime surface

    def local_run(
        self,
        func: Callable[..., Any],
        keyword_args: Mapping[str, Any],
        share_to_global: Sequence[bool],
    ) -> LocalHandle | tuple[LocalHandle, ...]:
        """Run a local computation step on the workers (paper Figure 2)."""
        return self.ctx.local_run(func, keyword_args, share_to_global)

    def global_run(
        self,
        func: Callable[..., Any],
        keyword_args: Mapping[str, Any],
        share_to_locals: Sequence[bool],
    ) -> GlobalHandle | tuple[GlobalHandle, ...]:
        """Run a global step on the master (paper Figure 2)."""
        return self.ctx.global_run(func, keyword_args, share_to_locals)

    def data_view(self, variables: Sequence[str], dropna: bool = True) -> DataView:
        """Declare the slice of primary data a local step will read."""
        if not variables:
            raise AlgorithmError("a data view needs at least one variable")
        return DataView.of(variables, dropna)

    # ----------------------------------------------------------- entry point

    def run(self) -> dict[str, Any]:
        """The algorithm flow; subclasses must implement."""
        raise NotImplementedError


def get_transfer_data(handle: GlobalHandle | LocalHandle, context: ExecutionContext | None = None,
                      algorithm: FederatedAlgorithm | None = None) -> Any:
    """Module-level reader matching the paper's ``get_transfer_data`` call.

    Inside an algorithm, prefer ``self.ctx.get_transfer_data(handle)``; this
    free function exists so flows can read exactly like Figure 2 when they
    pass their context (or themselves).
    """
    if context is None and algorithm is not None:
        context = algorithm.ctx
    if context is None:
        raise AlgorithmError("get_transfer_data needs the execution context")
    return context.get_transfer_data(handle)
