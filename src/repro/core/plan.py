"""The flow-plan IR: federated algorithm flows as explicit DAGs.

The paper's Figure 2 expresses an algorithm as a sequence of
``local_run`` / ``global_run`` calls.  Executing that sequence imperatively
hides the real structure: which steps *actually* depend on which results.
This module lifts the flow into a first-class plan — a DAG of typed nodes
carrying explicit data-dependency edges — that the
:class:`~repro.core.plan_executor.PlanExecutor` schedules:

- :class:`LocalStepNode` — one UDF on every participating worker,
- :class:`PlainAggregateNode` — the paper's non-secure remote/merge path,
- :class:`SecureAggregateNode` — SMPC (or in-the-clear) aggregation of
  secure-transfer outputs,
- :class:`BroadcastNode` — ship a global transfer to the workers,
- :class:`GlobalStepNode` — one UDF on the master,
- :class:`BarrierNode` — materialize a global transfer's contents.

Node inputs are :class:`PlanArg` values: literals, declarative
:class:`~repro.core.context.DataView` slices, references to other nodes'
outputs (``ref``), or constant handles carried over from outside the plan.
The :class:`ExecutionContext` records nodes as the algorithm runs; the plan
is therefore also an inspectable artifact (``repro plan <algorithm>``)
rendered as a tree, JSON (the golden-plan CI lane diffs this), or DOT.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "ValueRef",
    "PlanArg",
    "PlanNode",
    "LocalStepNode",
    "GlobalStepNode",
    "PlainAggregateNode",
    "SecureAggregateNode",
    "BroadcastNode",
    "BarrierNode",
    "FlowPlan",
    "canonical_fingerprint",
]


@dataclass(frozen=True)
class ValueRef:
    """A reference to one output slot of another plan node."""

    node_id: int
    index: int = 0


@dataclass(frozen=True)
class PlanArg:
    """One bound node input.

    ``kind`` selects the payload:

    - ``"literal"`` — a plain Python value (``value``),
    - ``"view"`` — a declarative data slice (``view`` is a DataView),
    - ``"ref"`` — another node's output (``ref``),
    - ``"local_tables"`` — a constant {worker: table} map (a pre-built
      :class:`~repro.core.state.LocalHandle` passed in from outside),
    - ``"global_table"`` — a constant master-side table name.
    """

    kind: str
    value: Any = None
    view: Any = None  # DataView; typed loosely to avoid an import cycle
    ref: ValueRef | None = None

    def summary(self) -> Any:
        """A JSON-stable description (used by renderers and goldens)."""
        if self.kind == "ref":
            assert self.ref is not None
            return {"ref": f"n{self.ref.node_id}[{self.ref.index}]"}
        if self.kind == "view":
            return {
                "view": {
                    "variables": list(self.view.variables),
                    "dropna": bool(self.view.dropna),
                }
            }
        if self.kind == "literal":
            try:
                blob = json.dumps(self.value, sort_keys=True, default=str)
            except (TypeError, ValueError):
                blob = repr(self.value)
            if len(blob) <= 120:
                return {"literal": self.value}
            return {"literal_sha256": hashlib.sha256(blob.encode()).hexdigest()[:12]}
        if self.kind == "local_tables":
            return {"const_local_tables": sorted(self.value)}
        return {"const_global_table": str(self.value)}


@dataclass(frozen=True)
class PlanNode:
    """Base node: an id, explicit dependency edges, nothing else."""

    node_id: int
    deps: tuple[int, ...]

    #: Short kind tag used by renderers ("local_step", "broadcast", ...).
    kind: str = field(default="node", init=False, repr=False)

    def describe(self) -> dict[str, Any]:
        """Kind-specific renderable attributes (overridden by subclasses)."""
        return {}


@dataclass(frozen=True)
class LocalStepNode(PlanNode):
    """Run one UDF on every participating worker (paper ``local_run``)."""

    step_id: str = ""
    udf: str = ""
    args: tuple[tuple[str, PlanArg], ...] = ()
    share: tuple[bool, ...] = ()
    out_kinds: tuple[str, ...] = ()

    kind = "local_step"

    def describe(self) -> dict[str, Any]:
        return {
            "udf": self.udf,
            "args": {name: arg.summary() for name, arg in self.args},
            "share": list(self.share),
            "outputs": list(self.out_kinds),
        }


@dataclass(frozen=True)
class GlobalStepNode(PlanNode):
    """Run one UDF on the master (paper ``global_run``)."""

    step_id: str = ""
    udf: str = ""
    args: tuple[tuple[str, PlanArg], ...] = ()
    share: tuple[bool, ...] = ()
    out_kinds: tuple[str, ...] = ()

    kind = "global_step"

    def describe(self) -> dict[str, Any]:
        return {
            "udf": self.udf,
            "args": {name: arg.summary() for name, arg in self.args},
            "share": list(self.share),
            "outputs": list(self.out_kinds),
        }


@dataclass(frozen=True)
class PlainAggregateNode(PlanNode):
    """Gather plain transfers through the remote/merge path.

    ``store=True`` (a ``global_run`` merge-transfer binding) re-materializes
    every gathered transfer as a master table and yields the table names;
    ``store=False`` (a ``get_transfer_data`` read) yields the decoded
    transfer dicts directly.
    """

    gather_id: str = ""
    source: PlanArg = field(default_factory=lambda: PlanArg("literal"))
    store: bool = False

    kind = "plain_aggregate"

    def describe(self) -> dict[str, Any]:
        return {"source": self.source.summary(), "store": self.store}


@dataclass(frozen=True)
class SecureAggregateNode(PlanNode):
    """Aggregate secure-transfer outputs along the configured path.

    ``path`` is the experiment's aggregation mode: ``"smpc"`` imports shares
    into the cluster, ``"plain"`` is the paper's in-the-clear alternative.
    ``store_id`` set means the aggregate is materialized as a master
    transfer table (a ``global_run`` binding); ``None`` means the dict is
    returned directly (a ``get_transfer_data`` read).
    """

    gather_id: str = ""
    store_id: str | None = None
    source: PlanArg = field(default_factory=lambda: PlanArg("literal"))
    path: str = "smpc"

    kind = "secure_aggregate"

    def describe(self) -> dict[str, Any]:
        return {
            "source": self.source.summary(),
            "path": self.path,
            "store": self.store_id is not None,
        }


@dataclass(frozen=True)
class BroadcastNode(PlanNode):
    """Ship one global transfer to every participating worker.

    ``step_id`` is the local step that first needed the transfer; evictions
    during the broadcast are attributed to it, matching the imperative
    path's pre-broadcast bookkeeping.
    """

    source: PlanArg = field(default_factory=lambda: PlanArg("literal"))
    step_id: str = ""

    kind = "broadcast"

    def describe(self) -> dict[str, Any]:
        return {"source": self.source.summary()}


@dataclass(frozen=True)
class BarrierNode(PlanNode):
    """Materialize a global transfer's contents (the Figure 2 final read)."""

    source: PlanArg = field(default_factory=lambda: PlanArg("literal"))

    kind = "barrier"

    def describe(self) -> dict[str, Any]:
        return {"source": self.source.summary()}


class FlowPlan:
    """The recorded DAG of one experiment's flow."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.nodes: list[PlanNode] = []
        self._by_id: dict[int, PlanNode] = {}
        self._next = 1

    def next_id(self) -> int:
        value = self._next
        self._next += 1
        return value

    def add(self, node: PlanNode) -> PlanNode:
        self.nodes.append(node)
        self._by_id[node.node_id] = node
        return node

    def node(self, node_id: int) -> PlanNode:
        return self._by_id[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Every (dependency, dependent) edge in node order."""
        for node in self.nodes:
            for dep in node.deps:
                yield (dep, node.node_id)

    # -------------------------------------------------------------- renderers

    def _scrub(self, text: str) -> str:
        """Replace the run-specific job id so renders are job-independent."""
        return text.replace(self.job_id, "$job")

    def to_json(self) -> dict[str, Any]:
        """A deterministic, job-id-independent JSON description.

        This is the golden-plan surface: two runs of the same algorithm on
        the same data must render byte-identically, so accidental
        flow-shape changes show up as golden-file diffs in CI.
        """
        rendered = []
        for node in self.nodes:
            entry: dict[str, Any] = {
                "id": node.node_id,
                "kind": node.kind,
                "deps": list(node.deps),
            }
            step = getattr(node, "step_id", "") or getattr(node, "gather_id", "")
            if step:
                entry["step"] = self._scrub(step)
            entry.update(node.describe())
            rendered.append(entry)
        return {"nodes": rendered, "edges": [list(edge) for edge in self.edges()]}

    def render_tree(self) -> str:
        """An ASCII dependency tree (roots first, shared nodes cross-linked)."""
        dependents: dict[int, list[int]] = {node.node_id: [] for node in self.nodes}
        for dep, dependent in self.edges():
            dependents[dep].append(dependent)
        roots = [node.node_id for node in self.nodes if not node.deps]
        lines = [f"flow plan: {len(self.nodes)} nodes"]
        printed: set[int] = set()

        def label(node_id: int) -> str:
            node = self._by_id[node_id]
            desc = node.describe()
            extra = f" udf={desc['udf']}" if "udf" in desc else ""
            if isinstance(node, (SecureAggregateNode, PlainAggregateNode)):
                extra = f" mode={'secure' if node.kind == 'secure_aggregate' else 'plain'}"
            return f"n{node_id} [{node.kind}]{extra}"

        def walk(node_id: int, prefix: str, is_last: bool) -> None:
            connector = "└─ " if is_last else "├─ "
            if node_id in printed:
                lines.append(f"{prefix}{connector}(n{node_id})")
                return
            printed.add(node_id)
            lines.append(f"{prefix}{connector}{label(node_id)}")
            children = dependents[node_id]
            child_prefix = prefix + ("   " if is_last else "│  ")
            for position, child in enumerate(children):
                walk(child, child_prefix, position == len(children) - 1)

        for position, root in enumerate(roots):
            walk(root, "", position == len(roots) - 1)
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT (``repro plan --format dot | dot -Tsvg``)."""
        shapes = {
            "local_step": "box",
            "global_step": "box3d",
            "plain_aggregate": "invtrapezium",
            "secure_aggregate": "invtrapezium",
            "broadcast": "trapezium",
            "barrier": "octagon",
        }
        lines = ["digraph flow_plan {", "  rankdir=TB;"]
        for node in self.nodes:
            desc = node.describe()
            text = f"n{node.node_id}\\n{node.kind}"
            if "udf" in desc:
                text += f"\\n{desc['udf']}"
            shape = shapes.get(node.kind, "ellipse")
            lines.append(f'  n{node.node_id} [label="{text}", shape={shape}];')
        for dep, dependent in self.edges():
            lines.append(f"  n{dep} -> n{dependent};")
        lines.append("}")
        return "\n".join(lines)


def canonical_fingerprint(payload: Mapping[str, Any]) -> str:
    """SHA-256 over a canonical-JSON payload (the step-dedup cache key).

    Callers assemble the payload from everything that determines a step's
    result: UDF identity (name + source hash), canonically-encoded bound
    arguments (references contribute the *upstream fingerprint*, never a
    physical table name), the data view, the participating worker set and
    their dataset assignments, and the master's catalog epoch.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def source_hash(source: str) -> str:
    """Stable identity of a UDF's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def literal_key(value: Any) -> str | None:
    """Canonical encoding of a literal argument, or None if uncacheable."""
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None


def topological_order(nodes: Sequence[PlanNode]) -> list[PlanNode]:
    """Nodes in dependency order (record order is already topological)."""
    return sorted(nodes, key=lambda node: node.node_id)
