"""Command-line interface: drive a simulated federation from the shell.

The CLI stands where the MIP web dashboard stands in deployment — catalogue
browsing, the algorithm panel, and experiment execution — against either
synthetic cohorts or CSV exports loaded through the ETL pipeline.

Examples::

    python -m repro catalogue
    python -m repro algorithms
    python -m repro run --algorithm pearson_correlation \\
        -y lefthippocampus -y righthippocampus
    python -m repro run --algorithm kmeans -y ab_42 -y p_tau \\
        --param k=3 --param seed=1 --aggregation smpc
    python -m repro run --algorithm linear_regression \\
        -y lefthippocampus -x agevalue --csv site_a=export_a.csv
    python -m repro trace --algorithm pearson_correlation \\
        -y lefthippocampus -y righthippocampus --out trace.json
    python -m repro metrics --algorithm mean -y lefthippocampus
    python -m repro submit --algorithm descriptive_stats -y lefthippocampus --no-wait
    python -m repro jobs --algorithm descriptive_stats -y lefthippocampus --repeat 6 --pool 3
    python -m repro cancel --algorithm descriptive_stats -y lefthippocampus --repeat 4
    python -m repro profile --algorithm linear_regression \\
        -y lefthippocampus -x agevalue --out-dir profile-out
    python -m repro plan linear_regression --format tree
    python -m repro health --results-dir benchmarks/results --strict
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.api.service import MIPService
from repro.data.cdes import cde_registry
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.errors import ReproError
from repro.etl.harmonize import harmonize_table
from repro.etl.loader import load_csv
from repro.federation.controller import FederationConfig, create_federation

DEFAULT_DATASETS = ("edsd", "adni", "ppmi")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MIP reproduction: federated medical analytics from the shell.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    subcommands.add_parser("catalogue", help="list data models, datasets and variables")
    subcommands.add_parser("algorithms", help="list algorithms and their parameters")

    run = subcommands.add_parser("run", help="run a federated experiment")
    trace = subcommands.add_parser(
        "trace", help="run an experiment with tracing on and export the trace"
    )
    trace.add_argument("--format", choices=("chrome", "json", "tree"),
                       default="chrome",
                       help="chrome trace-event JSON (default), flat span "
                            "JSON, or a nested span tree")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="write the trace to a file instead of stdout")
    trace.add_argument("--audit", action="store_true",
                       help="include the experiment's privacy audit trail")
    trace.add_argument("--min-ms", type=float, default=0.0, metavar="MS",
                       help="tree format: hide spans shorter than MS "
                            "milliseconds (ancestors of kept spans survive)")
    trace.add_argument("--top", type=int, default=None, metavar="N",
                       help="tree format: keep only each span's N slowest "
                            "children (pruned ones are counted, not lost)")
    metrics = subcommands.add_parser(
        "metrics", help="run an experiment and render the unified metrics"
    )
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus")

    submit = subcommands.add_parser(
        "submit", help="submit an experiment to the job queue"
    )
    submit.add_argument("--priority", type=int, default=0,
                        help="dispatch priority (higher runs first)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and queue state instead of "
                             "blocking on the result")
    jobs = subcommands.add_parser(
        "jobs", help="submit a batch through the queue and list every job"
    )
    cancel = subcommands.add_parser(
        "cancel", help="submit a batch, cancel the last queued job, list states"
    )
    resume = subcommands.add_parser(
        "resume",
        help="restart from a durable --state-dir: replay the journal, "
             "restore finished results, resume interrupted experiments",
    )
    resume.add_argument("--state-dir", required=True, metavar="DIR",
                        help="the state directory of the crashed run (data "
                             "flags must match the original invocation)")
    for subparser in (submit, jobs, cancel, resume):
        subparser.add_argument("--pool", type=int, default=2,
                               help="executor pool size (default 2)")
    for subparser in (jobs, cancel):
        subparser.add_argument("--repeat", type=int, default=4,
                               help="number of experiments to submit (default 4)")
    for subparser in (run, submit, jobs, cancel):
        subparser.add_argument("--state-dir", default=None, metavar="DIR",
                               help="durable state directory: journal every "
                                    "job lifecycle and checkpoint federation "
                                    "reads so `repro resume` can recover")

    profile = subcommands.add_parser(
        "profile",
        help="run under the sampling profiler; export a flamegraph and the "
             "critical-path report",
    )
    profile.add_argument("script", nargs="?", default=None, metavar="SCRIPT",
                         help="python script to profile instead of a "
                              "federated experiment (e.g. examples/quickstart.py)")
    profile.add_argument("--hz", type=float, default=None,
                         help="sampling rate (default 97 Hz)")
    profile.add_argument("--out-dir", default="profile-out", metavar="DIR",
                         help="directory for flamegraph.collapsed, "
                              "profile.speedscope.json and critical_path.json "
                              "(default profile-out/)")
    profile.add_argument("--clock", choices=("wall", "sim"), default="wall",
                         help="critical-path clock: real time (default) or "
                              "the transport's modeled network seconds")

    plan = subcommands.add_parser(
        "plan",
        help="record an algorithm's flow plan (the DAG the executor runs) "
             "and render it",
    )
    plan.add_argument("algorithm", metavar="ALGORITHM",
                      help="registered algorithm name (see `repro algorithms`)")
    plan.add_argument("--format", choices=("tree", "json", "dot"),
                      default="tree",
                      help="ASCII dependency tree (default), the canonical "
                           "DAG JSON, or Graphviz DOT")
    plan.add_argument("--out", default=None, metavar="PATH",
                      help="write the rendering to a file instead of stdout")
    plan.add_argument("--data-model", default="dementia")
    plan.add_argument("--datasets", nargs="*", default=None,
                      help="dataset codes (default: all available)")
    plan.add_argument("-y", action="append", default=[], metavar="VAR",
                      help="dependent variable (default: the algorithm's "
                           "demo request)")
    plan.add_argument("-x", action="append", default=[], metavar="VAR",
                      help="covariate (repeatable)")
    plan.add_argument("--param", action="append", default=[],
                      metavar="NAME=VALUE",
                      help="algorithm parameter (repeatable)")
    plan.add_argument("--filter", default=None,
                      help="SQL row filter, e.g. \"agevalue > 65\"")
    plan.add_argument("--aggregation", choices=("smpc", "plain"),
                      default="smpc")
    plan.add_argument("--rows", type=int, default=60,
                      help="rows per synthetic cohort (default 60)")
    plan.add_argument("--seed", type=int, default=0)

    health = subcommands.add_parser(
        "health",
        help="evaluate bench snapshots against committed SLO baselines",
    )
    health.add_argument("--results-dir", default="benchmarks/results",
                        metavar="DIR",
                        help="directory holding BENCH_*.json snapshots "
                             "(default benchmarks/results)")
    health.add_argument("--baseline-dir", default=None, metavar="DIR",
                        help="directory holding BASELINE_*.json files "
                             "(default: the results dir)")
    health.add_argument("--warn-pct", type=float, default=10.0,
                        help="warn when a latency metric regresses more than "
                             "this percentage (default 10)")
    health.add_argument("--fail-pct", type=float, default=20.0,
                        help="fail when a latency metric regresses more than "
                             "this percentage (default 20)")
    health.add_argument("--strict", action="store_true",
                        help="also exit nonzero on warnings and missing runs")
    health.add_argument("--update-baselines", action="store_true",
                        help="fold the current results into the rolling "
                             "baselines before evaluating")
    health.add_argument("--window", type=int, default=10,
                        help="rolling-baseline window size (default 10 runs)")
    health.add_argument("--format", choices=("text", "json"), default="text")

    fuzz = subcommands.add_parser(
        "fuzz",
        help="fuzz the deterministic simulation harness "
             "(seeds x fault plans x parallelism)",
    )
    fuzz.add_argument("--runs", type=int, default=25,
                      help="number of random scenarios to run (default 25)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="fuzzer RNG seed (scenario sampling; default 0)")
    fuzz.add_argument("--budget-seconds", type=float, default=None,
                      help="additionally stop after this much wall time")
    fuzz.add_argument("--replay", metavar="SPEC", default=None,
                      help="replay one 'seed=S;par=P;jobs=N;faults=...' "
                           "scenario and print its transcript")
    fuzz.add_argument("--corpus", metavar="PATH", default=None,
                      help="replay every scenario in a corpus file")
    fuzz.add_argument("--write-corpus", metavar="PATH", default=None,
                      help="append the scenarios this session ran to a "
                           "corpus file")
    fuzz.add_argument("--master-crash", action="store_true",
                      help="admit crash@N:master faults (kill-and-restart "
                           "recovery) into the sampled fault plans")

    for subparser in (run, trace, metrics, submit, jobs, cancel, profile, resume):
        # `repro profile` can take a script instead of an experiment;
        # `repro resume` takes its work from the journal.
        subparser.add_argument(
            "--algorithm", required=subparser not in (profile, resume)
        )
        subparser.add_argument("--data-model", default="dementia")
        subparser.add_argument("--datasets", nargs="*", default=None,
                               help="dataset codes (default: all available)")
        subparser.add_argument("-y", action="append", default=[], metavar="VAR",
                               help="dependent variable (repeatable)")
        subparser.add_argument("-x", action="append", default=[], metavar="VAR",
                               help="covariate (repeatable)")
        subparser.add_argument("--param", action="append", default=[],
                               metavar="NAME=VALUE",
                               help="algorithm parameter (repeatable)")
        subparser.add_argument("--filter", default=None,
                               help="SQL row filter, e.g. \"agevalue > 65\"")
        subparser.add_argument("--aggregation", choices=("smpc", "plain"),
                               default="smpc")
        subparser.add_argument("--smpc-scheme",
                               choices=("shamir", "full_threshold"),
                               default="shamir")
        subparser.add_argument("--csv", action="append", default=[],
                               metavar="WORKER=PATH",
                               help="load a worker's data from a CSV export "
                                    "(repeatable); replaces the synthetic cohorts")
        subparser.add_argument("--rows", type=int, default=300,
                               help="rows per synthetic cohort (default 300)")
        subparser.add_argument("--seed", type=int, default=0)
    return parser


def parse_parameter(text: str) -> tuple[str, Any]:
    """Parse a NAME=VALUE --param item (values parsed as JSON when possible)."""
    if "=" not in text:
        raise SystemExit(f"--param expects NAME=VALUE, got {text!r}")
    name, raw = text.split("=", 1)
    try:
        value: Any = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return name, value


def build_service(args: argparse.Namespace) -> MIPService:
    """Assemble the federation (synthetic cohorts or --csv exports) and service."""
    if getattr(args, "csv", None):
        model = cde_registry.get(getattr(args, "data_model", "dementia"))
        worker_data = {}
        for item in args.csv:
            if "=" not in item:
                raise SystemExit(f"--csv expects WORKER=PATH, got {item!r}")
            worker, path = item.split("=", 1)
            table, report = harmonize_table(load_csv(path, model), model)
            if report.total_nulled:
                print(f"[etl] {worker}: nulled {report.total_nulled} "
                      "out-of-contract values", file=sys.stderr)
            worker_data[worker] = {model.name: table}
    else:
        rows = getattr(args, "rows", 300)
        seed = getattr(args, "seed", 0)
        worker_data = {
            f"hospital_{code}": {
                "dementia": generate_cohort(CohortSpec(code, rows, seed=seed + index))
            }
            for index, code in enumerate(DEFAULT_DATASETS)
        }
    config = FederationConfig(
        smpc_scheme=getattr(args, "smpc_scheme", "shamir"),
        seed=getattr(args, "seed", 0),
    )
    federation = create_federation(worker_data, config)
    return MIPService(
        federation,
        aggregation=getattr(args, "aggregation", "smpc"),
        pool_size=getattr(args, "pool", 1),
        state_dir=getattr(args, "state_dir", None),
    )


def command_catalogue(args: argparse.Namespace) -> int:
    """`repro catalogue`: data models, datasets, variables as JSON."""
    service = build_service(args)
    output = {}
    for model in service.data_models():
        output[model] = {
            "datasets": service.datasets(model),
            "variables": service.variables(model),
        }
    print(json.dumps(output, indent=2))
    return 0


def command_algorithms(args: argparse.Namespace) -> int:
    """`repro algorithms`: the algorithm panel as JSON."""
    service = build_service(args)
    print(json.dumps(service.algorithms(), indent=2))
    return 0


def _run_one_experiment(args: argparse.Namespace, service: MIPService):
    """Shared run/trace/metrics path: resolve datasets, run one experiment."""
    datasets = args.datasets
    if not datasets:
        datasets = sorted(service.datasets(args.data_model))
    parameters = dict(parse_parameter(p) for p in args.param)
    return service.run_experiment(
        algorithm=args.algorithm,
        data_model=args.data_model,
        datasets=datasets,
        y=args.y,
        x=args.x,
        parameters=parameters,
        filter_sql=args.filter,
    )


def command_run(args: argparse.Namespace) -> int:
    """`repro run`: execute one experiment; exit 0 on success, 1 on error."""
    service = build_service(args)
    result = _run_one_experiment(args, service)
    payload = {
        "experiment_id": result.experiment_id,
        "status": result.status.value,
        "workers": list(result.workers),
        "elapsed_seconds": round(result.elapsed_seconds, 4),
    }
    if result.status.value == "success":
        payload["result"] = result.result
    else:
        payload["error"] = result.error
    print(json.dumps(payload, indent=2))
    return 0 if result.status.value == "success" else 1


def command_trace(args: argparse.Namespace) -> int:
    """`repro trace`: run one experiment with tracing on, export the spans."""
    from repro.observability.trace import tracer

    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    try:
        service = build_service(args)
        result = _run_one_experiment(args, service)
        if args.format == "chrome":
            output: Any = tracer.export_chrome()
            if args.audit:
                output["otherData"] = {"audit": list(result.audit)}
        elif args.format == "json":
            output = {"spans": tracer.export_json()}
            if args.audit:
                output["audit"] = list(result.audit)
        else:
            from repro.observability.trace import filter_tree

            roots = tracer.span_tree()
            if args.min_ms or args.top is not None:
                roots = filter_tree(roots, min_ms=args.min_ms, top=args.top)
            output = {"trace": roots}
            if args.audit:
                output["audit"] = list(result.audit)
        text = json.dumps(output, indent=2, default=str)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.format} trace ({len(tracer.spans())} spans) "
                  f"to {args.out}", file=sys.stderr)
        else:
            print(text)
        return 0 if result.status.value == "success" else 1
    finally:
        if not was_enabled:
            tracer.disable()


def command_metrics(args: argparse.Namespace) -> int:
    """`repro metrics`: run one experiment, render the unified registry."""
    service = build_service(args)
    result = _run_one_experiment(args, service)
    registry = service.metrics_registry()
    if args.format == "json":
        print(registry.render_json())
    else:
        print(registry.render_prometheus(), end="")
    return 0 if result.status.value == "success" else 1


def _submit_kwargs(args: argparse.Namespace, service: MIPService) -> dict[str, Any]:
    """Shared submit/jobs/cancel path: resolve datasets and request fields."""
    datasets = args.datasets
    if not datasets:
        datasets = sorted(service.datasets(args.data_model))
    return {
        "algorithm": args.algorithm,
        "data_model": args.data_model,
        "datasets": datasets,
        "y": args.y,
        "x": args.x,
        "parameters": dict(parse_parameter(p) for p in args.param),
        "filter_sql": args.filter,
    }


def _job_table(service: MIPService) -> list[dict[str, Any]]:
    rows = []
    for snapshot in service.jobs():
        row = {k: v for k, v in snapshot.items() if v is not None}
        for key in ("wait_seconds", "elapsed_seconds", "queued_seconds"):
            if key in row:
                row[key] = round(row[key], 4)
        rows.append(row)
    return rows


def command_submit(args: argparse.Namespace) -> int:
    """`repro submit`: enqueue one experiment; --no-wait returns immediately."""
    service = build_service(args)
    job_id = service.submit_experiment(
        **_submit_kwargs(args, service), priority=args.priority
    )
    if args.no_wait:
        print(json.dumps({"experiment_id": job_id,
                          "queue": service.engine.queue.stats()}, indent=2))
        return 0
    result = service.wait_experiment(job_id)
    payload = {
        "experiment_id": result.experiment_id,
        "status": result.status.value,
        "elapsed_seconds": round(result.elapsed_seconds, 4),
    }
    if result.status.value == "success":
        payload["result"] = result.result
    else:
        payload["error"] = result.error
    print(json.dumps(payload, indent=2))
    return 0 if result.status.value == "success" else 1


def command_jobs(args: argparse.Namespace) -> int:
    """`repro jobs`: push a batch through the queue, report every job."""
    service = build_service(args)
    kwargs = _submit_kwargs(args, service)
    ids = [
        service.submit_experiment(**kwargs, name=f"batch-{index}")
        for index in range(args.repeat)
    ]
    results = [service.wait_experiment(job_id) for job_id in ids]
    print(json.dumps({
        "jobs": _job_table(service),
        "queue": service.engine.queue.stats(),
        "telemetry": [
            {"experiment_id": r.experiment_id,
             "messages": r.telemetry.messages,
             "smpc_rounds": r.telemetry.smpc_rounds}
            for r in results
        ],
    }, indent=2))
    return 0 if all(r.status.value == "success" for r in results) else 1


def command_cancel(args: argparse.Namespace) -> int:
    """`repro cancel`: demonstrate pre-dispatch cancellation on a batch."""
    service = build_service(args)
    kwargs = _submit_kwargs(args, service)
    ids = [
        service.submit_experiment(**kwargs, name=f"batch-{index}")
        for index in range(args.repeat)
    ]
    cancelled = service.cancel_experiment(ids[-1])
    for job_id in ids[:-1]:
        service.wait_experiment(job_id)
    # wait() resolves for cancelled jobs too (pre-dispatch ones immediately).
    last = service.wait_experiment(ids[-1])
    print(json.dumps({
        "cancelled": cancelled,
        "cancelled_job": {"experiment_id": last.experiment_id,
                          "status": last.status.value,
                          "error": last.error},
        "jobs": _job_table(service),
    }, indent=2))
    return 0


def command_resume(args: argparse.Namespace) -> int:
    """`repro resume`: recover a durable state directory and finish its jobs.

    Prints the recovery report (restored/resumed jobs, journal health), then
    drives every resumed experiment to a terminal state and reports each.
    """
    service = build_service(args)
    recovery = service.recovery or {}
    resumed = []
    for job_id in recovery.get("resumed", ()):
        result = service.wait_experiment(job_id)
        entry = {
            "experiment_id": result.experiment_id,
            "status": result.status.value,
            "elapsed_seconds": round(result.elapsed_seconds, 4),
        }
        if result.status.value == "success":
            entry["result"] = result.result
        else:
            entry["error"] = result.error
        resumed.append(entry)
    print(json.dumps({
        "recovery": recovery,
        "resumed_results": resumed,
        "durability": service.durability.stats(),
    }, indent=2))
    service.shutdown()
    return 0 if all(r["status"] == "success" for r in resumed) else 1


def command_profile(args: argparse.Namespace) -> int:
    """`repro profile`: sample a run, export flamegraph + critical path.

    Profiles either a federated experiment (the ``run`` flags) or an
    arbitrary Python script (positional path).  Writes
    ``flamegraph.collapsed`` (flamegraph.pl / inferno / speedscope input),
    ``profile.speedscope.json`` and ``critical_path.json`` into
    ``--out-dir`` and prints the critical-path report.
    """
    import pathlib

    from repro.observability.profiler import DEFAULT_HZ, SamplingProfiler
    from repro.observability.trace import tracer

    if args.script is None and not args.algorithm:
        raise SystemExit("repro profile needs a SCRIPT path or --algorithm")
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    profiler = SamplingProfiler(hz=args.hz or DEFAULT_HZ)
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    exit_code = 0
    try:
        if not profiler.start():
            print("warning: profiler refused to start (simulation active); "
                  "collecting the trace only", file=sys.stderr)
        if args.script is not None:
            import runpy

            runpy.run_path(args.script, run_name="__main__")
            root_name = None
        else:
            service = build_service(args)
            result = _run_one_experiment(args, service)
            exit_code = 0 if result.status.value == "success" else 1
            root_name = "experiment"
        profiler.stop()
        report = tracer.critical_path(clock=args.clock, root_name=root_name)
    finally:
        profiler.stop()
        if not was_enabled:
            tracer.disable()

    (out_dir / "flamegraph.collapsed").write_text(profiler.collapsed())
    (out_dir / "profile.speedscope.json").write_text(
        json.dumps(profiler.speedscope(name=args.script or args.algorithm), indent=2)
        + "\n"
    )
    (out_dir / "critical_path.json").write_text(report.to_json() + "\n")
    print(report.render())
    summary = profiler.summary()
    print(
        f"\nprofile: {summary['ticks']} ticks at {summary['hz']:g} Hz, "
        f"{summary['unique_stacks']} unique stacks, "
        f"artifacts in {out_dir}/", file=sys.stderr
    )
    return exit_code


def command_plan(args: argparse.Namespace) -> int:
    """`repro plan`: record and render an algorithm's flow-plan DAG.

    Runs the algorithm once against synthetic cohorts with the eager
    executor (no cache, no pipelining), then renders the plan the run
    recorded: every local/global step, aggregation, broadcast and barrier
    with its data dependencies.
    """
    from repro.api.demo import DEMO_REQUESTS
    from repro.core.experiment import ExperimentRequest
    from repro.core.runner import ExperimentRunner

    service = build_service(args)
    datasets = args.datasets
    if not datasets:
        datasets = sorted(service.datasets(args.data_model))
    if args.y or args.x or args.param:
        y, x = tuple(args.y), tuple(args.x)
        parameters = dict(parse_parameter(p) for p in args.param)
    elif args.algorithm in DEMO_REQUESTS:
        demo = DEMO_REQUESTS[args.algorithm]
        y, x = tuple(demo["y"]), tuple(demo["x"])
        parameters = dict(demo["parameters"])
    else:
        raise SystemExit(
            f"no demo request for algorithm {args.algorithm!r}; "
            "pass -y/-x/--param explicitly"
        )
    request = ExperimentRequest(
        algorithm=args.algorithm,
        data_model=args.data_model,
        datasets=tuple(datasets),
        y=y,
        x=x,
        parameters=parameters,
        filter_sql=args.filter,
    )
    runner = ExperimentRunner(
        service.federation,
        aggregation=args.aggregation,
        flow_mode="eager",
        plan_cache=None,
    )
    info: dict[str, Any] = {}
    runner.execute(request, "plan", info=info)
    plan = info["plan"]
    if args.format == "tree":
        text = plan.render_tree()
    elif args.format == "json":
        text = json.dumps(plan.to_json(), indent=2)
    else:
        text = plan.to_dot()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.format} plan ({len(plan)} nodes) to {args.out}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def command_health(args: argparse.Namespace) -> int:
    """`repro health`: bench snapshots vs. SLO baselines; exit 1 on regression.

    ``--strict`` additionally fails on warnings and on baselines with no
    current bench run (the CI perf-gate mode).  ``--update-baselines``
    folds the current results into the rolling windows first — run it
    locally, then commit the refreshed ``BASELINE_*.json`` files.
    """
    from repro.observability import slo

    baseline_dir = args.baseline_dir or args.results_dir
    if args.update_baselines:
        store = slo.BaselineStore(baseline_dir)
        for result in slo.load_bench_results(args.results_dir):
            store.update(result, window=args.window)
            print(f"updated {store.path(result.name)}", file=sys.stderr)
    report = slo.evaluate(
        args.results_dir,
        baseline_dir,
        warn_pct=args.warn_pct,
        fail_pct=args.fail_pct,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return report.exit_code(strict=args.strict)


def command_fuzz(args: argparse.Namespace) -> int:
    """`repro fuzz`: randomized simulation search, replay, corpus runs.

    Exit codes: 0 all scenarios clean, 1 a scenario failed (the shrunk
    single-line repro command is printed), 2 usage/setup errors.
    """
    from repro.simtest import fuzz as fuzz_mod
    from repro.simtest.harness import SimSpec, repro_command

    if args.replay is not None:
        outcome = fuzz_mod.run_one(SimSpec.parse(args.replay))
        if outcome.report is not None:
            print(outcome.report.transcript, end="")
        for line in outcome.failures():
            print(f"FAIL {line}")
        return 1 if outcome.failed else 0

    if args.corpus is not None:
        specs = fuzz_mod.read_corpus(args.corpus)
        failed = 0
        for spec in specs:
            outcome = fuzz_mod.run_one(spec)
            status = "FAIL" if outcome.failed else "ok"
            print(f"{status} {spec.spec()}")
            if outcome.failed:
                failed += 1
                for line in outcome.failures():
                    print(f"  {line}")
                print(f"  reproduce with: {repro_command(spec)}")
        print(f"corpus: {len(specs) - failed}/{len(specs)} ok")
        return 1 if failed else 0

    result = fuzz_mod.fuzz(
        runs=args.runs,
        seed=args.seed,
        budget_seconds=args.budget_seconds,
        emit=print,
        master_crash=args.master_crash,
    )
    if args.write_corpus:
        fuzz_mod.write_corpus(args.write_corpus, result.specs)
        print(f"wrote {len(result.specs)} scenarios to {args.write_corpus}")
    print(
        f"fuzz: {result.runs} runs in {result.elapsed_seconds:.1f}s, "
        + ("all clean" if result.ok else "FAILURE found")
    )
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # catalogue/algorithms accept the data-source flags too, with defaults.
    for attribute, default in (("csv", []), ("rows", 300), ("seed", 0),
                               ("data_model", "dementia")):
        if not hasattr(args, attribute):
            setattr(args, attribute, default)
    handlers = {
        "catalogue": command_catalogue,
        "algorithms": command_algorithms,
        "run": command_run,
        "trace": command_trace,
        "metrics": command_metrics,
        "submit": command_submit,
        "jobs": command_jobs,
        "cancel": command_cancel,
        "resume": command_resume,
        "profile": command_profile,
        "plan": command_plan,
        "health": command_health,
        "fuzz": command_fuzz,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
