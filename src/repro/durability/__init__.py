"""Durable execution: write-ahead journal, checkpoints, crash recovery.

A zero-dependency persistence layer for the federation master.  Three
collaborators, mirroring the classic database recovery split:

- :mod:`repro.durability.journal` — an append-only, CRC-framed JSONL
  write-ahead log of job lifecycle transitions with fsync batching,
  segment rotation and torn-tail truncation on open.
- :mod:`repro.durability.checkpoint` — atomic (tmp+rename), schema-versioned
  snapshots of an experiment's progress: the plan fingerprint, the
  completed-read frontier, and serialized global state (e.g. model
  coefficients between training rounds).
- :mod:`repro.durability.recovery` — replays the journal over the latest
  snapshots on ``MIPService(state_dir=...)`` startup, restores finished
  results, re-enqueues non-terminal jobs, and hands each resumed job its
  recorded read log so the :class:`~repro.core.plan_executor.PlanExecutor`
  replays from the checkpoint frontier instead of step 0.

What is deliberately NOT durable: worker-side tables (recomputed on
resume), the plan cache, metrics, and trace buffers.  See
docs/ARCHITECTURE.md §15.
"""

from repro.durability.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    ExperimentCheckpoint,
)
from repro.durability.journal import Journal
from repro.durability.recovery import DurabilityManager, RecoveryReport

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointStore",
    "DurabilityManager",
    "ExperimentCheckpoint",
    "Journal",
    "RecoveryReport",
]
