"""Crash recovery: replay the journal over the latest snapshots.

The :class:`DurabilityManager` is the one object the engine talks to.  It
owns the journal and the checkpoint store and plays two roles:

**Recording (normal operation).**  The :class:`~repro.core.jobs.ExperimentQueue`
journals every lifecycle transition — ``submit`` (with the full serialized
request, so the journal is self-contained), ``dispatch``, and a fsync'd
``terminal`` carrying the serialized result.  The execution context calls
:meth:`record_read` every time an algorithm pulls a value out of the
federation; each read appends a ``step`` journal record and atomically
rewrites the job's checkpoint with the full read log, which *is* the
completed-step frontier.

**Recovery (startup).**  :meth:`recover` folds the journal into a job
table: a job with a ``terminal`` record is finished (its result is
restored into the history store); a job without one is re-enqueued in its
original submission order and priority.  :meth:`prepare_resume` then loads
the job's checkpoint — if its plan fingerprint still matches the request —
and stashes the read log for the runner, which replays the recorded
frontier through ghost plan nodes instead of re-executing from step 0.

Under an active simulation with a crashed master, all recording becomes a
no-op: a dead process writes nothing, and the simulated crash must leave
exactly the bytes that were durable at the crash point.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.experiment import ExperimentRequest, ExperimentResult
from repro.durability.checkpoint import (
    CheckpointStore,
    ExperimentCheckpoint,
    request_fingerprint,
)
from repro.durability.journal import Journal
from repro.simtest import hooks as sim_hooks


@dataclass
class RecoveryReport:
    """What one startup replay found."""

    #: Finished jobs restored into the history store (id → result).
    completed: dict[str, ExperimentResult] = field(default_factory=dict)
    #: Non-terminal jobs to re-enqueue, in original submission order.
    pending: list[tuple[str, ExperimentRequest, int]] = field(default_factory=list)
    #: Journal records referencing a job with no (surviving) submit record —
    #: e.g. pruned by torn-tail truncation.
    orphan_records: int = 0
    #: Records whose payload no longer deserializes (skipped, not fatal).
    undecodable_records: int = 0
    journal: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "restored": sorted(self.completed),
            "resumed": [job_id for job_id, _, _ in self.pending],
            "orphan_records": self.orphan_records,
            "undecodable_records": self.undecodable_records,
            "journal": dict(self.journal),
        }


class DurabilityManager:
    """Journal + checkpoints + recovery for one ``state_dir``."""

    def __init__(
        self,
        state_dir: str,
        fsync_every: int = 8,
        segment_max_bytes: int = 1 << 20,
    ) -> None:
        import os

        self.state_dir = state_dir
        self.journal = Journal(
            os.path.join(state_dir, "journal"),
            fsync_every=fsync_every,
            segment_max_bytes=segment_max_bytes,
        )
        self.checkpoints = CheckpointStore(os.path.join(state_dir, "checkpoints"))
        self._lock = threading.Lock()
        self._read_logs: dict[str, list[dict[str, Any]]] = {}
        self._fingerprints: dict[str, str] = {}
        self._resume_reads: dict[str, list[dict[str, Any]]] = {}
        self.resumed_jobs: tuple[str, ...] = ()
        self.restored_jobs: tuple[str, ...] = ()
        self.checkpoint_mismatches = 0
        self.unserializable_reads = 0

    # ------------------------------------------------------------ freezing

    @staticmethod
    def _frozen() -> bool:
        """True once a simulated master crash has fired: the "process" is
        dead, so nothing may reach stable storage anymore."""
        sim = sim_hooks.current()
        return sim is not None and getattr(sim, "master_crashed", False)

    # ----------------------------------------------------------- recording

    def record_submit(self, job_id: str, request: ExperimentRequest, priority: int) -> None:
        if self._frozen():
            return
        payload = request.to_dict()
        with self._lock:
            self._fingerprints[job_id] = request_fingerprint(payload)
        self.journal.append(
            "submit",
            {"job_id": job_id, "request": payload, "priority": priority},
            sync=True,
        )

    def record_dispatch(self, job_id: str) -> None:
        if self._frozen():
            return
        self.journal.append("dispatch", {"job_id": job_id})

    def record_terminal(self, job_id: str, result: ExperimentResult) -> None:
        """A job reached success/error/cancelled: fsync the result, then
        drop its checkpoint — the frontier is no longer needed."""
        if self._frozen():
            return
        self.journal.append(
            "terminal",
            {"job_id": job_id, "status": result.status.value, "result": result.to_dict()},
            sync=True,
        )
        self.checkpoints.delete(job_id)
        with self._lock:
            self._read_logs.pop(job_id, None)
            self._fingerprints.pop(job_id, None)

    def record_read(self, job_id: str, key: str, value: Any) -> None:
        """One value left the federation: extend the job's frontier.

        Journals a ``step`` marker and atomically rewrites the checkpoint
        with the complete read log so far.  A value that does not
        JSON-serialize disables checkpointing for the job (counted) rather
        than failing the experiment.
        """
        if self._frozen():
            return
        with self._lock:
            fingerprint = self._fingerprints.get(job_id)
            log = self._read_logs.setdefault(job_id, [])
            entry = {"key": key, "value": value}
            log.append(entry)
            snapshot = list(log)
        if fingerprint is None:
            return
        try:
            self.journal.append(
                "step", {"job_id": job_id, "index": len(snapshot) - 1, "key": key}
            )
            self.checkpoints.save(
                ExperimentCheckpoint(
                    job_id=job_id, fingerprint=fingerprint, reads=snapshot
                )
            )
        except (TypeError, ValueError):
            self.unserializable_reads += 1
            with self._lock:
                self._read_logs.pop(job_id, None)
                self._fingerprints.pop(job_id, None)
            self.checkpoints.delete(job_id)

    # ------------------------------------------------------------ recovery

    def recover(self) -> RecoveryReport:
        """Fold the journal into finished results + jobs to re-enqueue."""
        report = RecoveryReport()
        jobs: dict[str, dict[str, Any]] = {}
        order: list[str] = []
        for record in self.journal.records():
            kind = record.get("kind")
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                report.undecodable_records += 1
                continue
            if kind == "submit":
                try:
                    request = ExperimentRequest.from_dict(record["request"])
                except (KeyError, TypeError, ValueError):
                    report.undecodable_records += 1
                    continue
                entry = jobs.get(job_id)
                if entry is None:
                    order.append(job_id)
                    jobs[job_id] = {
                        "request": request,
                        "priority": int(record.get("priority", 0)),
                        "terminal": None,
                    }
                else:
                    # Re-submission after a restart: newest request wins and
                    # any stale terminal state is cleared.
                    entry.update(request=request, terminal=None)
                continue
            entry = jobs.get(job_id)
            if entry is None:
                # The journal references a job whose submit record was lost
                # (pruned by truncation).  Nothing to recover for it.
                report.orphan_records += 1
                continue
            if kind == "terminal":
                entry["terminal"] = record.get("result")
            # "dispatch" and "step" records carry no recovery state beyond
            # what the checkpoint already holds.
        for job_id in order:
            entry = jobs[job_id]
            terminal = entry["terminal"]
            if terminal is not None:
                try:
                    report.completed[job_id] = ExperimentResult.from_dict(terminal)
                except (KeyError, TypeError, ValueError):
                    report.undecodable_records += 1
                continue
            report.pending.append((job_id, entry["request"], entry["priority"]))
        report.journal = self.journal.stats.to_dict()
        self.restored_jobs = tuple(sorted(report.completed))
        self.resumed_jobs = tuple(job_id for job_id, _, _ in report.pending)
        # GC: a crash between the terminal journal append and the checkpoint
        # delete leaves a stale frontier behind — drop it for every job the
        # journal says is finished.
        for job_id in self.restored_jobs:
            self.checkpoints.delete(job_id)
        return report

    def prepare_resume(self, job_id: str, request: ExperimentRequest) -> int:
        """Load the job's checkpoint frontier; returns how many recorded
        reads will replay (0 = no usable checkpoint, run live)."""
        checkpoint = self.checkpoints.load(job_id)
        if checkpoint is None:
            return 0
        if checkpoint.fingerprint != request_fingerprint(request.to_dict()):
            self.checkpoint_mismatches += 1
            self.checkpoints.delete(job_id)
            return 0
        with self._lock:
            self._resume_reads[job_id] = list(checkpoint.reads)
        return len(checkpoint.reads)

    def take_resume_reads(self, job_id: str) -> list[dict[str, Any]] | None:
        """Hand the recorded frontier to the runner (consumed once)."""
        with self._lock:
            return self._resume_reads.pop(job_id, None)

    # ------------------------------------------------------- observability

    def stats(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "journal": self.journal.stats.to_dict(),
            "checkpoints": self.checkpoints.stats.to_dict(),
            "resumed_jobs": len(self.resumed_jobs),
            "restored_jobs": len(self.restored_jobs),
            "checkpoint_mismatches": self.checkpoint_mismatches,
            "unserializable_reads": self.unserializable_reads,
        }
        return payload

    def metrics_samples(self) -> Iterator[tuple[str, dict[str, str], float]]:
        journal = self.journal.stats
        checkpoints = self.checkpoints.stats
        yield ("repro_journal_appends_total", {}, float(journal.appends_total))
        yield ("repro_journal_fsyncs_total", {}, float(journal.fsyncs_total))
        yield (
            "repro_journal_bytes_appended_total",
            {},
            float(journal.bytes_appended_total),
        )
        yield ("repro_journal_rotations_total", {}, float(journal.rotations_total))
        yield (
            "repro_journal_recovered_records",
            {},
            float(journal.recovered_records),
        )
        yield ("repro_journal_dropped_bytes", {}, float(journal.dropped_bytes))
        yield ("repro_checkpoint_saves_total", {}, float(checkpoints.saves_total))
        yield ("repro_checkpoint_loads_total", {}, float(checkpoints.loads_total))
        yield (
            "repro_checkpoint_load_failures_total",
            {},
            float(checkpoints.load_failures_total),
        )
        yield ("repro_recovery_resumed_jobs", {}, float(len(self.resumed_jobs)))
        yield ("repro_recovery_restored_jobs", {}, float(len(self.restored_jobs)))

    def close(self) -> None:
        self.journal.close()
