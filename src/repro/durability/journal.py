"""Append-only, CRC-framed JSONL write-ahead journal.

Frame format — one record per line::

    crc32_hex8 SP canonical_json LF

The CRC covers the JSON payload bytes only, so a frame is self-validating:
a torn write (partial line at the tail after a crash) or a flipped bit is
detected on open and the journal is truncated back to its last valid frame.
Records after the first invalid frame are discarded — they are causally
newer than the corruption, and replaying them over a hole could reorder
lifecycle transitions.

Writes go through an ``O_APPEND`` raw file descriptor with ``os.write`` so
that an in-process simulated crash leaves exactly the bytes that were
written — there is no userspace buffer to lose.  ``fsync`` is batched:
every ``fsync_every`` appends, plus on demand for records that must be
durable before the caller proceeds (terminal results).

Segments rotate at ``segment_max_bytes``; sequence numbers are global and
monotone across segments, so replay order never depends on file mtimes.
"""

from __future__ import annotations

import json
import os
import re
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

_SEGMENT_RE = re.compile(r"^journal-(\d{6})\.wal$")


def _frame(payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return b"%08x %s\n" % (crc, body)


def _parse_frame(line: bytes) -> dict[str, Any] | None:
    """Decode one journal line; ``None`` means the frame is invalid."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def _scan_segment(path: str) -> tuple[list[dict[str, Any]], int, int]:
    """Read every valid frame of a segment.

    Returns ``(records, valid_end, size)`` where ``valid_end`` is the byte
    offset just past the last valid frame — everything after it is torn or
    corrupt.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[dict[str, Any]] = []
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            break  # torn tail: no closing newline
        record = _parse_frame(data[pos:newline])
        if record is None:
            break
        records.append(record)
        pos = newline + 1
    return records, pos, len(data)


@dataclass
class JournalStats:
    """Counters exposed through the observability registry."""

    appends_total: int = 0
    fsyncs_total: int = 0
    bytes_appended_total: int = 0
    rotations_total: int = 0
    recovered_records: int = 0
    dropped_bytes: int = 0
    dropped_segments: int = 0

    def to_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class Journal:
    """One append-only journal under ``<directory>/``.

    Opening scans existing segments oldest-first, truncates the first
    corrupt/torn frame (and discards any later segments), and resumes
    appending after the highest recovered sequence number.
    """

    directory: str
    fsync_every: int = 8
    segment_max_bytes: int = 1 << 20
    recovered_records: list[dict[str, Any]] = field(default_factory=list, repr=False)
    stats: JournalStats = field(default_factory=JournalStats, repr=False)

    def __post_init__(self) -> None:
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._fd: int | None = None
        self._seq = 0
        self._pending_fsync = 0
        self._segment_index = 0
        self._segment_bytes = 0
        self._recover()

    # ---------------------------------------------------------------- open

    def _segments(self) -> list[tuple[int, str]]:
        found = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        return sorted(found)

    def _recover(self) -> None:
        segments = self._segments()
        corrupted_at: int | None = None
        for position, (index, path) in enumerate(segments):
            records, valid_end, size = _scan_segment(path)
            self.recovered_records.extend(records)
            self._segment_index = index
            if valid_end < size:
                # Torn or corrupt frame: cut the segment back to its last
                # valid frame and drop every later segment — records past
                # the hole cannot be replayed in order.
                self.stats.dropped_bytes += size - valid_end
                with open(path, "ab") as handle:
                    handle.truncate(valid_end)
                corrupted_at = position
                break
        if corrupted_at is not None:
            for _, path in segments[corrupted_at + 1 :]:
                self.stats.dropped_bytes += os.path.getsize(path)
                self.stats.dropped_segments += 1
                os.unlink(path)
        self.stats.recovered_records = len(self.recovered_records)
        for record in self.recovered_records:
            seq = record.get("seq")
            if isinstance(seq, int) and seq > self._seq:
                self._seq = seq
        if segments:
            self._segment_bytes = os.path.getsize(self._segment_path(self._segment_index))
        else:
            self._segment_index = 1

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, f"journal-{index:06d}.wal")

    # -------------------------------------------------------------- append

    def append(self, kind: str, payload: dict[str, Any], sync: bool = False) -> int:
        """Append one record; returns its sequence number.

        ``sync=True`` forces an fsync before returning (used for terminal
        records — a result must not be reported and then lost).
        """
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "kind": kind}
            record.update(payload)
            frame = _frame(record)
            if self._segment_bytes + len(frame) > self.segment_max_bytes and self._segment_bytes > 0:
                self._rotate_locked()
            fd = self._ensure_fd_locked()
            os.write(fd, frame)
            self._segment_bytes += len(frame)
            self.stats.appends_total += 1
            self.stats.bytes_appended_total += len(frame)
            self._pending_fsync += 1
            if sync or self._pending_fsync >= self.fsync_every:
                self._fsync_locked()
            return self._seq

    def _ensure_fd_locked(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self._segment_path(self._segment_index),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        return self._fd

    def _rotate_locked(self) -> None:
        self._fsync_locked()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._segment_index += 1
        self._segment_bytes = 0
        self.stats.rotations_total += 1

    def _fsync_locked(self) -> None:
        if self._fd is not None and self._pending_fsync > 0:
            os.fsync(self._fd)
            self.stats.fsyncs_total += 1
        self._pending_fsync = 0

    def sync(self) -> None:
        """Flush any batched appends to stable storage."""
        with self._lock:
            self._fsync_locked()

    def close(self) -> None:
        with self._lock:
            self._fsync_locked()
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    # --------------------------------------------------------------- read

    def records(self) -> Iterator[dict[str, Any]]:
        """The records recovered at open time, in append order."""
        return iter(self.recovered_records)
