"""Round-granular experiment checkpoints, written atomically.

A checkpoint is a schema-versioned JSON snapshot keyed by the flow-plan IR:

- ``fingerprint`` — the canonical fingerprint of what produced the flow
  (an :class:`~repro.core.experiment.ExperimentRequest` or a training
  config).  A resumed run whose fingerprint differs discards the
  checkpoint and runs live from step 0 — resuming a different plan over a
  recorded frontier would silently corrupt results.
- ``reads`` — the completed-step frontier: every value the algorithm has
  already pulled out of the federation (aggregate opens and barriers), in
  program order, each tagged with the plan node key that produced it.
- ``state`` — serialized global state (e.g. model coefficients, training
  history and privacy spend between iterations).

Snapshots are written with the classic tmp+rename dance so a crash during
a save leaves either the previous snapshot or the new one, never a torn
file.  Loads are forgiving: a missing file, bad JSON, or a schema-version
mismatch all return ``None`` (run live) rather than raising.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.plan import canonical_fingerprint

CHECKPOINT_SCHEMA_VERSION = 1


def request_fingerprint(payload: Mapping[str, Any]) -> str:
    """Canonical fingerprint of a JSON-ready mapping (request or config)."""
    return canonical_fingerprint(dict(payload))


@dataclass
class ExperimentCheckpoint:
    """One experiment's resumable frontier."""

    job_id: str
    fingerprint: str
    reads: list[dict[str, Any]] = field(default_factory=list)
    state: dict[str, Any] = field(default_factory=dict)
    schema: int = CHECKPOINT_SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "reads": self.reads,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentCheckpoint":
        return cls(
            job_id=str(payload["job_id"]),
            fingerprint=str(payload["fingerprint"]),
            reads=list(payload.get("reads", ())),
            state=dict(payload.get("state", {})),
            schema=int(payload.get("schema", -1)),
        )


@dataclass
class CheckpointStats:
    saves_total: int = 0
    loads_total: int = 0
    load_failures_total: int = 0
    deletes_total: int = 0

    def to_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class CheckpointStore:
    """Atomic one-file-per-job checkpoint storage under ``<directory>/``."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.stats = CheckpointStats()
        os.makedirs(directory, exist_ok=True)

    def _path(self, job_id: str) -> str:
        # Job ids are slug-like ("sim_job_1", "exp_3f2a…"); guard anyway so a
        # hostile id cannot escape the store directory.
        safe = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in job_id)
        return os.path.join(self.directory, f"{safe}.ckpt.json")

    def save(self, checkpoint: ExperimentCheckpoint) -> None:
        path = self._path(checkpoint.job_id)
        tmp = path + ".tmp"
        body = json.dumps(checkpoint.to_dict(), sort_keys=True, separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.stats.saves_total += 1

    def load(self, job_id: str) -> ExperimentCheckpoint | None:
        self.stats.loads_total += 1
        path = self._path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            checkpoint = ExperimentCheckpoint.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            if os.path.exists(path):
                self.stats.load_failures_total += 1
            return None
        if checkpoint.schema != CHECKPOINT_SCHEMA_VERSION:
            self.stats.load_failures_total += 1
            return None
        return checkpoint

    def delete(self, job_id: str) -> bool:
        try:
            os.unlink(self._path(job_id))
        except FileNotFoundError:
            return False
        self.stats.deletes_total += 1
        return True

    def list_ids(self) -> list[str]:
        ids = []
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".ckpt.json"):
                ids.append(name[: -len(".ckpt.json")])
        return ids
