"""Helpers imported by generated UDF bodies (the serialization glue).

Generated SQL bodies run inside the engine's Python UDF sandbox; they import
this module to (de)serialize states, transfers, relations and tensors, and to
quote values for loopback INSERTs.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Any, Mapping

import numpy as np

from repro.errors import UDFError
from repro.udfgen.iotypes import SECURE_OPERATIONS


class Relation:
    """The in-UDF view of a relational input: named numpy columns.

    The paper's workers hand MonetDB result sets to Python as numpy arrays;
    this wrapper adds the small conveniences algorithm code needs
    (column access, matrix view, row count) without depending on pandas.
    """

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise UDFError("ragged relation columns")
        self._columns = {k: np.asarray(v) for k, v in columns.items()}

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def __getitem__(self, name: str) -> np.ndarray:
        return self._columns[name]

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._columns))

    def to_matrix(self, names: list[str] | None = None) -> np.ndarray:
        """Stack the named (or all) columns into an (n, k) float matrix."""
        names = names if names is not None else self.columns
        if not names:
            return np.empty((len(self), 0))
        return np.column_stack([self._columns[n].astype(np.float64) for n in names])

    def dropna(self) -> "Relation":
        """Drop rows where any column is NaN/None."""
        if not self._columns:
            return Relation({})
        keep = np.ones(len(self), dtype=bool)
        for values in self._columns.values():
            if values.dtype == object:
                keep &= np.array([v is not None for v in values])
            elif np.issubdtype(values.dtype, np.floating):
                keep &= ~np.isnan(values)
        return Relation({k: v[keep] for k, v in self._columns.items()})

    def to_dict(self) -> dict[str, np.ndarray]:
        return dict(self._columns)


# ----------------------------------------------------------------- state


def serialize_state(obj: Any) -> str:
    """Pickle + base64 an opaque node-local state object."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def deserialize_state(blob: str) -> Any:
    """Inverse of :func:`serialize_state`."""
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


# --------------------------------------------------------------- transfer


class _TransferEncoder(json.JSONEncoder):
    def default(self, o: Any) -> Any:
        if isinstance(o, np.ndarray):
            return o.tolist()
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, (np.bool_,)):
            return bool(o)
        return super().default(o)


def serialize_transfer(obj: Mapping[str, Any]) -> str:
    """JSON-encode a transfer dict (numpy arrays become nested lists)."""
    if not isinstance(obj, Mapping):
        raise UDFError(f"transfer must be a dict, got {type(obj).__name__}")
    return json.dumps(obj, cls=_TransferEncoder)


def deserialize_transfer(blob: str) -> dict[str, Any]:
    """Inverse of :func:`serialize_transfer`."""
    return json.loads(blob)


def validate_secure_transfer(obj: Mapping[str, Any]) -> dict[str, Any]:
    """Check a secure-transfer dict: every entry names data and an operation."""
    if not isinstance(obj, Mapping):
        raise UDFError("secure_transfer must be a dict")
    for key, entry in obj.items():
        if not isinstance(entry, Mapping) or "data" not in entry or "operation" not in entry:
            raise UDFError(
                f"secure_transfer entry {key!r} must be {{'data': ..., 'operation': ...}}"
            )
        if entry["operation"] not in SECURE_OPERATIONS:
            raise UDFError(
                f"secure_transfer entry {key!r}: unknown operation {entry['operation']!r}"
            )
    return {k: dict(v) for k, v in obj.items()}


# ----------------------------------------------------------------- tensor


def tensor_to_columns(array: np.ndarray) -> dict[str, np.ndarray]:
    """Flatten an array into the (dim..., val) physical layout."""
    array = np.asarray(array)
    if array.ndim == 1:
        return {"dim0": np.arange(len(array), dtype=np.int64), "val": array}
    if array.ndim == 2:
        rows, cols = array.shape
        dim0 = np.repeat(np.arange(rows, dtype=np.int64), cols)
        dim1 = np.tile(np.arange(cols, dtype=np.int64), rows)
        return {"dim0": dim0, "dim1": dim1, "val": array.ravel()}
    raise UDFError("only 1-D and 2-D tensors are supported")


def columns_to_tensor(columns: Mapping[str, np.ndarray]) -> np.ndarray:
    """Rebuild an array from the (dim..., val) layout."""
    if "dim1" in columns:
        dim0 = np.asarray(columns["dim0"], dtype=np.int64)
        dim1 = np.asarray(columns["dim1"], dtype=np.int64)
        val = np.asarray(columns["val"])
        shape = (int(dim0.max()) + 1 if len(dim0) else 0,
                 int(dim1.max()) + 1 if len(dim1) else 0)
        out = np.zeros(shape, dtype=val.dtype if val.dtype != object else np.float64)
        out[dim0, dim1] = val
        return out
    dim0 = np.asarray(columns["dim0"], dtype=np.int64)
    val = np.asarray(columns["val"])
    out = np.zeros(int(dim0.max()) + 1 if len(dim0) else 0,
                   dtype=val.dtype if val.dtype != object else np.float64)
    out[dim0] = val
    return out


# -------------------------------------------------------------------- SQL


def sql_quote(value: Any) -> str:
    """Render a Python scalar as a SQL literal for generated INSERTs."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float, np.integer, np.floating)):
        return repr(float(value)) if isinstance(value, (float, np.floating)) else repr(int(value))
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
