"""Statistical helpers available inside generated UDF bodies (as ``_h``).

Local computation steps run inside the engine with a deliberately small
namespace: numpy (``np``), the serialization runtime (``_rt``), and this
module (``_h``).  Everything here depends only on numpy so UDF bodies stay
self-contained.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np


def build_design_matrix(
    relation: Any,
    covariates: Sequence[str],
    metadata: Mapping[str, Mapping[str, Any]],
    intercept: bool = True,
) -> tuple[np.ndarray, list[str]]:
    """Assemble a regression design matrix from a relation.

    Numeric covariates enter directly; nominal covariates are dummy-coded
    against their first enumeration level (the reference), with the level
    list taken from the Common Data Element metadata so every worker encodes
    identically.
    """
    columns: list[np.ndarray] = []
    names: list[str] = []
    n_rows = len(relation)
    if intercept:
        columns.append(np.ones(n_rows))
        names.append("intercept")
    for variable in covariates:
        info = metadata.get(variable, {})
        if info.get("is_categorical"):
            levels = list(info.get("enumerations", []))
            if not levels:
                raise ValueError(f"nominal variable {variable!r} has no enumerations")
            values = relation[variable]
            for level in levels[1:]:
                columns.append((values == level).astype(np.float64))
                names.append(f"{variable}[{level}]")
        else:
            columns.append(np.asarray(relation[variable], dtype=np.float64))
            names.append(variable)
    if not columns:
        return np.empty((n_rows, 0)), []
    return np.column_stack(columns), names


def regression_sufficient_stats(design: np.ndarray, response: np.ndarray) -> dict[str, Any]:
    """The additively aggregatable statistics of a linear model.

    X^T X, X^T y, y^T y, sum(y) and n are enough for OLS coefficients,
    standard errors, and goodness-of-fit — so one local pass suffices.
    """
    response = np.asarray(response, dtype=np.float64)
    return {
        "xtx": design.T @ design,
        "xty": design.T @ response,
        "yty": float(response @ response),
        "sum_y": float(response.sum()),
        "n": int(len(response)),
    }


def histogram_counts(values: np.ndarray, edges: Sequence[float]) -> np.ndarray:
    """Counts of values per bin for a fixed global edge grid."""
    counts, _ = np.histogram(np.asarray(values, dtype=np.float64), bins=np.asarray(edges))
    return counts.astype(np.int64)


def fold_assignments(n_rows: int, n_folds: int, seed: int) -> np.ndarray:
    """Deterministic, balanced fold labels for local cross-validation splits."""
    rng = np.random.default_rng(seed)
    labels = np.arange(n_rows) % n_folds
    rng.shuffle(labels)
    return labels


def category_counts(values: np.ndarray, levels: Sequence[Any]) -> np.ndarray:
    """Occurrences of each level, in level order."""
    values = np.asarray(values)
    return np.array([int((values == level).sum()) for level in levels], dtype=np.int64)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def logistic_gradient_hessian(
    design: np.ndarray, response: np.ndarray, beta: np.ndarray
) -> dict[str, Any]:
    """Per-node Newton-step statistics for logistic regression."""
    response = np.asarray(response, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    probabilities = sigmoid(design @ beta)
    gradient = design.T @ (response - probabilities)
    weights = probabilities * (1.0 - probabilities)
    hessian = design.T @ (design * weights[:, None])
    eps = 1e-12
    clipped = np.clip(probabilities, eps, 1.0 - eps)
    log_likelihood = float(
        np.sum(response * np.log(clipped) + (1.0 - response) * np.log(1.0 - clipped))
    )
    return {
        "gradient": gradient,
        "hessian": hessian,
        "log_likelihood": log_likelihood,
        "n": int(len(response)),
    }


def model_gradient(
    design: np.ndarray, response: np.ndarray, weights: np.ndarray, model_kind: str
) -> np.ndarray:
    """Mean-loss gradient for the federated trainer's model kinds.

    ``"logistic"``: negative log-likelihood; ``"linear"``: squared error.
    """
    n = max(len(response), 1)
    if model_kind == "logistic":
        probabilities = sigmoid(design @ weights)
        return design.T @ (probabilities - response) / n
    if model_kind == "linear":
        residuals = design @ weights - response
        return 2.0 * design.T @ residuals / n
    raise ValueError(f"unknown model kind {model_kind!r}")


def model_loss_sums(
    design: np.ndarray, response: np.ndarray, weights: np.ndarray, model_kind: str
) -> tuple[float, int]:
    """(loss sum, correct-prediction count) for evaluation aggregation.

    For linear models the correct-count is 0 (accuracy is not defined).
    """
    if model_kind == "logistic":
        probabilities = np.clip(sigmoid(design @ weights), 1e-12, 1 - 1e-12)
        loss_sum = float(
            -np.sum(response * np.log(probabilities)
                    + (1 - response) * np.log(1 - probabilities))
        )
        correct = int(np.sum((probabilities >= 0.5) == (response > 0.5)))
        return loss_sum, correct
    if model_kind == "linear":
        residuals = design @ weights - response
        return float(np.sum(residuals**2)), 0
    raise ValueError(f"unknown model kind {model_kind!r}")


def confusion_counts(
    actual: np.ndarray, predicted_probability: np.ndarray, threshold: float = 0.5
) -> dict[str, int]:
    """Binary confusion-matrix counts at a probability threshold."""
    actual = np.asarray(actual, dtype=bool)
    predicted = np.asarray(predicted_probability, dtype=np.float64) >= threshold
    return {
        "tp": int(np.sum(actual & predicted)),
        "fp": int(np.sum(~actual & predicted)),
        "fn": int(np.sum(actual & ~predicted)),
        "tn": int(np.sum(~actual & ~predicted)),
    }


def apply_scaler(design: np.ndarray, scaler: Mapping[str, Any] | None) -> np.ndarray:
    """Standardize design columns with precomputed global means/stds.

    ``scaler`` is ``{"means": [...], "stds": [...]}`` aligned to the design
    columns; entries with std 0 (e.g. the intercept) pass through unscaled.
    ``None`` disables scaling.
    """
    if scaler is None:
        return design
    means = np.asarray(scaler["means"], dtype=np.float64)
    stds = np.asarray(scaler["stds"], dtype=np.float64)
    scaled = design.copy()
    active = stds > 0
    scaled[:, active] = (design[:, active] - means[active]) / stds[active]
    return scaled


def route_tree(relation: Any, tree: Mapping[str, Any]) -> np.ndarray:
    """Assign every row of a relation to a leaf of a decision tree.

    ``tree`` is the JSON form used by the federated CART/ID3 algorithms:
    ``{"nodes": {id: node}, "root": id}`` where a split node has either
    ``feature``/``threshold`` (numeric, <= goes left), ``feature``/``level``
    (binary nominal, == goes left) with ``left``/``right`` child ids, or
    ``feature``/``children`` ({level: child id}, ID3 multiway).  Returns the
    leaf node id (as str) per row.
    """
    nodes = tree["nodes"]
    n_rows = len(relation)
    assignment = np.full(n_rows, str(tree["root"]), dtype=object)
    changed = True
    while changed:
        changed = False
        for node_id in list(np.unique(assignment)):
            node = nodes[str(node_id)]
            if node["type"] != "split":
                continue
            mask = assignment == node_id
            values = relation[node["feature"]]
            if "children" in node:
                for level, child in node["children"].items():
                    assignment[mask & (values == level)] = str(child)
                # Unseen levels fall through to the designated default child.
                still = assignment == node_id
                if still.any():
                    assignment[still] = str(node["default_child"])
            elif "threshold" in node:
                numeric = np.asarray(values, dtype=np.float64)
                go_left = mask & (numeric <= node["threshold"])
                assignment[go_left] = str(node["left"])
                assignment[mask & ~go_left] = str(node["right"])
            else:
                go_left = mask & (values == node["level"])
                assignment[go_left] = str(node["left"])
                assignment[mask & ~go_left] = str(node["right"])
            changed = True
    return assignment


def score_histograms(
    actual: np.ndarray, scores: np.ndarray, n_bins: int = 100
) -> dict[str, np.ndarray]:
    """Per-bin positive/negative score counts (for federated ROC/AUC)."""
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    actual = np.asarray(actual, dtype=bool)
    scores = np.asarray(scores, dtype=np.float64)
    positives, _ = np.histogram(scores[actual], bins=edges)
    negatives, _ = np.histogram(scores[~actual], bins=edges)
    return {"positives": positives.astype(np.int64), "negatives": negatives.astype(np.int64)}
