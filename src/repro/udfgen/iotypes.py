"""Typed input/output markers for ``@udf``-decorated functions.

MIP wraps dynamic Python with a decorator that pins each parameter and result
to one of a small set of SQL-representable kinds:

- ``relation``  — a table with a declared (or inferred) schema,
- ``tensor``    — an n-dimensional numeric array stored as (dims..., val),
- ``literal``   — a plain Python value baked into the generated SQL,
- ``state``     — an opaque, node-local Python object (pickled; never leaves
  the node, the paper's "kept as a pointer to the actual data"),
- ``transfer``  — a JSON-able dict shipped between nodes,
- ``merge_transfer`` — the list of all workers' transfers, as seen by a
  global step,
- ``secure_transfer`` — a dict of ``{key: {"data": ..., "operation": op}}``
  aggregated through the SMPC cluster instead of revealed to the master.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.types import SQLType
from repro.errors import UDFError

#: SMPC aggregation operations supported by the secure transfer path.
SECURE_OPERATIONS = ("sum", "min", "max", "union")


class IOType:
    """Base class for all parameter/result kind markers."""

    __slots__ = ()

    kind: str = "abstract"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class RelationType(IOType):
    """A relational input/output with an optional fixed schema."""

    schema: Optional[tuple[tuple[str, SQLType], ...]] = None
    kind = "relation"


@dataclass(frozen=True, repr=False)
class TensorType(IOType):
    """A numeric array of fixed rank stored in (dim..., val) layout."""

    ndims: int = 2
    dtype: SQLType = SQLType.REAL
    kind = "tensor"

    def __post_init__(self) -> None:
        if self.ndims not in (1, 2):
            raise UDFError("tensor supports 1 or 2 dimensions")


@dataclass(frozen=True, repr=False)
class LiteralType(IOType):
    kind = "literal"


@dataclass(frozen=True, repr=False)
class StateType(IOType):
    kind = "state"


@dataclass(frozen=True, repr=False)
class TransferType(IOType):
    kind = "transfer"


@dataclass(frozen=True, repr=False)
class MergeTransferType(IOType):
    kind = "merge_transfer"


@dataclass(frozen=True, repr=False)
class SecureTransferType(IOType):
    """A transfer whose values are aggregated under SMPC.

    The decorated function must return, for this output, a dict of
    ``{key: {"data": scalar-or-nested-list, "operation": one of
    SECURE_OPERATIONS}}``.
    """

    kind = "secure_transfer"


def relation(schema: Sequence[tuple[str, SQLType]] | None = None) -> RelationType:
    """Declare a relational parameter or result."""
    return RelationType(tuple(schema) if schema is not None else None)


def tensor(ndims: int = 2, dtype: SQLType = SQLType.REAL) -> TensorType:
    """Declare a tensor parameter or result."""
    return TensorType(ndims, dtype)


def literal() -> LiteralType:
    """Declare a literal (SQL-embedded) parameter."""
    return LiteralType()


def state() -> StateType:
    """Declare a node-local opaque state parameter or result."""
    return StateType()


def transfer() -> TransferType:
    """Declare a JSON transfer parameter or result."""
    return TransferType()


def merge_transfer() -> MergeTransferType:
    """Declare a parameter receiving the list of all workers' transfers."""
    return MergeTransferType()


def secure_transfer() -> SecureTransferType:
    """Declare an output aggregated by the SMPC cluster."""
    return SecureTransferType()


def output_schema(iotype: IOType) -> list[tuple[str, SQLType]]:
    """The physical table schema used to store one output of a UDF."""
    if isinstance(iotype, RelationType):
        if iotype.schema is None:
            raise UDFError("a relation output requires an explicit schema")
        return list(iotype.schema)
    if isinstance(iotype, TensorType):
        dims = [(f"dim{i}", SQLType.INT) for i in range(iotype.ndims)]
        return dims + [("val", iotype.dtype)]
    if isinstance(iotype, StateType):
        return [("state", SQLType.VARCHAR)]
    if isinstance(iotype, TransferType):
        return [("transfer", SQLType.VARCHAR)]
    if isinstance(iotype, SecureTransferType):
        return [("secure_transfer", SQLType.VARCHAR)]
    raise UDFError(f"{type(iotype).__name__} cannot be a UDF output")
