"""UDFGenerator: JIT-translate procedural Python into SQL UDF applications.

The paper (§2, *UDFGenerator*): "UDFGenerator follows a UDF-to-SQL approach
and JIT translates the procedural Python code to semantically equal
declarative SQL code.  To deal with the dynamic Python types, the Python
functions are wrapped with a decorator that specifies their input/output
types.  SQL loopback queries, which enable executing SQL in a Python UDF,
handle the multiple inputs and outputs of a Python function."

This package provides exactly that pipeline:

1. the algorithm developer decorates a plain Python function with ``@udf``
   and typed input/output markers (:mod:`repro.udfgen.iotypes`),
2. :func:`repro.udfgen.generator.generate_udf_application` turns one call of
   that function into SQL — a ``CREATE FUNCTION ... LANGUAGE PYTHON`` whose
   body embeds the function source plus serialization glue, the output
   ``CREATE TABLE`` statements, and the driving ``INSERT INTO ... SELECT``,
3. the engine executes the statements; secondary outputs are written through
   loopback queries from inside the UDF body.
"""

from repro.udfgen.decorators import UDFSpec, udf, udf_registry
from repro.udfgen.generator import (
    FusionStep,
    StepOutput,
    UDFApplication,
    generate_fused_application,
    generate_udf_application,
    run_udf_application,
)
from repro.udfgen.iotypes import (
    literal,
    merge_transfer,
    relation,
    secure_transfer,
    state,
    tensor,
    transfer,
)

__all__ = [
    "FusionStep",
    "StepOutput",
    "UDFApplication",
    "UDFSpec",
    "generate_fused_application",
    "generate_udf_application",
    "literal",
    "merge_transfer",
    "relation",
    "run_udf_application",
    "secure_transfer",
    "state",
    "tensor",
    "transfer",
    "udf",
    "udf_registry",
]
