"""The ``@udf`` decorator: attach typed I/O to plain Python functions."""

from __future__ import annotations

import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import UDFError
from repro.udfgen.iotypes import (
    IOType,
    LiteralType,
    MergeTransferType,
    RelationType,
    SecureTransferType,
    StateType,
    TensorType,
    TransferType,
)

OUTPUT_KINDS = (RelationType, TensorType, StateType, TransferType, SecureTransferType)
INPUT_KINDS = (
    RelationType,
    TensorType,
    LiteralType,
    StateType,
    TransferType,
    MergeTransferType,
)


@dataclass(frozen=True)
class UDFSpec:
    """A registered, typed UDF: the unit the generator translates to SQL."""

    name: str
    func: Callable[..., Any]
    inputs: tuple[tuple[str, IOType], ...]
    outputs: tuple[IOType, ...]
    source: str = field(repr=False, default="")

    @property
    def input_names(self) -> list[str]:
        return [name for name, _ in self.inputs]

    def input_type(self, name: str) -> IOType:
        for pname, iotype in self.inputs:
            if pname == name:
                return iotype
        raise UDFError(f"UDF {self.name!r} has no parameter {name!r}")


class UDFRegistry:
    """Process-wide registry of decorated UDFs, keyed by qualified name."""

    def __init__(self) -> None:
        self._specs: dict[str, UDFSpec] = {}

    def register(self, spec: UDFSpec) -> None:
        self._specs[spec.name] = spec

    def get(self, name: str) -> UDFSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise UDFError(f"no registered UDF named {name!r}")
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> list[str]:
        return sorted(self._specs)


udf_registry = UDFRegistry()


def udf(return_type: IOType | Sequence[IOType], **parameter_types: IOType) -> Callable:
    """Declare a federated computation step with typed inputs and outputs.

    Example (the shape of the paper's Figure 2 local step)::

        @udf(
            x=relation(),
            y=relation(),
            return_type=[state(), secure_transfer()],
        )
        def fit_local(x, y):
            ...
            return local_state, summary

    The decorated function stays directly callable (for unit tests); the
    generator uses the captured source to emit the SQL UDF body.
    """
    outputs = tuple(return_type) if isinstance(return_type, (list, tuple)) else (return_type,)
    if not outputs:
        raise UDFError("a UDF must declare at least one output")
    for out in outputs:
        if not isinstance(out, OUTPUT_KINDS):
            raise UDFError(f"{type(out).__name__} is not a valid UDF output kind")

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        signature = inspect.signature(func)
        parameters = list(signature.parameters)
        declared = set(parameter_types)
        if declared != set(parameters):
            missing = set(parameters) - declared
            extra = declared - set(parameters)
            raise UDFError(
                f"UDF {func.__name__!r}: parameter/type mismatch"
                + (f"; missing types for {sorted(missing)}" if missing else "")
                + (f"; unknown parameters {sorted(extra)}" if extra else "")
            )
        inputs = []
        for pname in parameters:
            iotype = parameter_types[pname]
            if not isinstance(iotype, INPUT_KINDS):
                raise UDFError(
                    f"UDF {func.__name__!r}: {type(iotype).__name__} is not a valid input kind"
                )
            inputs.append((pname, iotype))
        qualified = f"{func.__module__}.{func.__qualname__}".replace(".", "_").replace(
            "<locals>", "local"
        )
        source = _clean_source(func)
        spec = UDFSpec(qualified, func, tuple(inputs), outputs, source)
        udf_registry.register(spec)
        func.__udf_spec__ = spec  # type: ignore[attr-defined]
        return func

    return decorate


def _clean_source(func: Callable[..., Any]) -> str:
    """Extract the function source without its decorator lines."""
    try:
        raw = inspect.getsource(func)
    except (OSError, TypeError):
        return ""
    lines = textwrap.dedent(raw).splitlines()
    start = 0
    for index, line in enumerate(lines):
        if line.lstrip().startswith("def "):
            start = index
            break
    return "\n".join(lines[start:])


def get_spec(func: Callable[..., Any]) -> UDFSpec:
    """The UDFSpec attached by ``@udf``."""
    spec = getattr(func, "__udf_spec__", None)
    if spec is None:
        raise UDFError(f"{func!r} is not decorated with @udf")
    return spec
