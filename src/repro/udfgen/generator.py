"""Translate one call of a ``@udf`` function into SQL statements.

The generated artifact is a :class:`UDFApplication`:

- one ``CREATE OR REPLACE FUNCTION ... LANGUAGE PYTHON { ... }`` whose body
  embeds the user function's source plus the serialization glue,
- ``CREATE TABLE`` statements for every output,
- the driving ``INSERT INTO <main output> SELECT * FROM <function>(plan)``.

Relational, state, and transfer inputs are read *inside the UDF body* via
SQL loopback queries; secondary outputs are written back via loopback
INSERTs — exactly the mechanism the paper attributes to the UDFGenerator.

Generation is *plan-cached*, prepared-statement style: the emitted function
body depends only on the UDF's shape — its spec, input/output kinds, and
statefulness — never on the concrete argument values or table names.  Those
travel at call time as a single literal parameter (the *application plan*),
so iterative flows (k-means, logistic regression) generate each function's
SQL exactly once and every later iteration reuses the cached plan: the
per-iteration statements shrink to the output ``CREATE TABLE``s plus the
driving ``INSERT``, and the node skips re-parsing and re-registering the
function entirely (see :func:`run_udf_application`).
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.engine.database import Database
from repro.errors import UDFError
from repro.observability.trace import tracer
from repro.udfgen.decorators import UDFSpec
from repro.udfgen.iotypes import (
    IOType,
    LiteralType,
    MergeTransferType,
    RelationType,
    SecureTransferType,
    StateType,
    TensorType,
    TransferType,
    output_schema,
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


@dataclass(frozen=True)
class TableArg:
    """A relational argument: a table name or a full SELECT query."""

    query: str

    @classmethod
    def of(cls, name_or_query: str) -> "TableArg":
        text = name_or_query.strip()
        if _IDENTIFIER_RE.match(text):
            return cls(f"SELECT * FROM {text}")
        return cls(text)


@dataclass(frozen=True)
class UDFApplication:
    """The SQL artifact of one UDF call, ready to execute on a node."""

    function_name: str
    definition_sql: str
    create_output_sql: tuple[str, ...]
    execute_sql: str
    output_tables: tuple[str, ...]
    output_kinds: tuple[IOType, ...]
    #: True when the function body depends only on the plan key, so a node
    #: that already holds ``function_name`` may skip the definition.
    reusable_definition: bool = False

    @property
    def statements(self) -> list[str]:
        return [self.definition_sql, *self.create_output_sql, self.execute_sql]


@dataclass(frozen=True)
class _CachedPlan:
    """A memoized function definition for one (spec, shape) key."""

    function_name: str
    definition_sql: str


class UDFPlanCache:
    """LRU memo of generated function definitions, keyed by plan shape.

    The hit/miss counters are the observable contract of the optimisation:
    after the first iteration of an iterative flow, every further local or
    global step of the same shape must be a hit (asserted in tests).
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._plans: OrderedDict[Any, _CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Any) -> _CachedPlan | None:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def store(self, key: Any, plan: _CachedPlan) -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._plans)}


#: Process-wide plan cache (one generator, many nodes — the definition is
#: per-shape, so every node can reuse the same plan).
plan_cache = UDFPlanCache()


def _iotype_sig(iotype: IOType) -> tuple:
    """A hashable, structure-complete signature of an I/O kind."""
    if isinstance(iotype, RelationType):
        return ("relation", iotype.schema)
    if isinstance(iotype, TensorType):
        return ("tensor", iotype.ndims, iotype.dtype)
    return (iotype.kind,)


def _plan_key(spec: UDFSpec, stateful: bool) -> tuple:
    return (
        spec.name,
        spec.source,
        tuple((pname, _iotype_sig(iotype)) for pname, iotype in spec.inputs),
        tuple(_iotype_sig(iotype) for iotype in spec.outputs),
        stateful,
    )


def generate_udf_application(
    spec: UDFSpec,
    job_id: str,
    arguments: Mapping[str, Any],
    output_prefix: str | None = None,
    stateful: bool = True,
    use_cache: bool = True,
) -> UDFApplication:
    """Emit the SQL for one application of ``spec`` with bound arguments.

    ``arguments`` maps parameter names to:

    - a table name / SELECT string (``relation``, ``tensor``, ``state``,
      ``transfer`` inputs),
    - a list of table names (``merge_transfer``),
    - any JSON-representable Python value (``literal``).

    ``stateful`` enables session-cache reuse of state objects (the paper's
    roadmap item "stateful Python UDF execution"): a state produced by one
    step is handed to the next without a pickle round trip.  Disable for
    the E9 ablation.

    ``use_cache`` toggles the plan cache; generation is deterministic, so a
    cached and an uncached application of the same call are byte-identical.
    """
    missing = [name for name in spec.input_names if name not in arguments]
    if missing:
        raise UDFError(f"UDF {spec.name!r}: missing arguments {missing}")
    unknown = [name for name in arguments if name not in spec.input_names]
    if unknown:
        raise UDFError(f"UDF {spec.name!r}: unknown arguments {unknown}")
    if not spec.source:
        raise UDFError(f"UDF {spec.name!r}: source is unavailable; cannot generate SQL")

    with tracer.span("udf.generate", udf=spec.name) as span:
        key = _plan_key(spec, stateful)
        plan = plan_cache.lookup(key) if use_cache else None
        if plan is None:
            span.set_attribute("plan_cache", "miss" if use_cache else "bypass")
            plan = _build_plan(spec, key, stateful)
            if use_cache:
                plan_cache.store(key, plan)
        else:
            span.set_attribute("plan_cache", "hit")

    prefix = output_prefix or _sanitize(f"{spec.name}_{job_id}_out")
    output_tables = tuple(f"{prefix}_{i}" for i in range(len(spec.outputs)))
    create_output_sql = []
    for table_name, iotype in zip(output_tables, spec.outputs):
        schema = output_schema(iotype)
        columns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in schema)
        create_output_sql.append(f"CREATE TABLE {table_name} ({columns})")
    plan_literal = _plan_literal(spec, arguments, output_tables)
    execute_sql = (
        f"INSERT INTO {output_tables[0]} "
        f"SELECT * FROM {plan.function_name}('{plan_literal}')"
    )
    return UDFApplication(
        function_name=plan.function_name,
        definition_sql=plan.definition_sql,
        create_output_sql=tuple(create_output_sql),
        execute_sql=execute_sql,
        output_tables=output_tables,
        output_kinds=spec.outputs,
        reusable_definition=True,
    )


def _build_plan(spec: UDFSpec, key: tuple, stateful: bool) -> _CachedPlan:
    """Generate the parameterized function definition for one plan key."""
    digest = hashlib.sha1(repr(key).encode()).hexdigest()[:12]
    function_name = _sanitize(f"{spec.name}_p{digest}")
    body = _generate_plan_body(spec, stateful)
    main_schema = output_schema(spec.outputs[0])
    returns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in main_schema)
    definition_sql = (
        f"CREATE OR REPLACE FUNCTION {function_name}(__plan_repr VARCHAR) "
        f"RETURNS TABLE({returns}) LANGUAGE PYTHON {{\n{body}\n}}"
    )
    return _CachedPlan(function_name, definition_sql)


def _plan_literal(
    spec: UDFSpec, arguments: Mapping[str, Any], output_tables: Sequence[str]
) -> str:
    """The SQL-quoted application plan: argument values + output tables.

    The plan travels as one string literal and is ``eval``-ed inside the UDF
    body (in the same namespace the old value-baking scheme used), so every
    Python value the baked approach supported round-trips unchanged.
    """
    plan: dict[str, Any] = {}
    for pname, iotype in spec.inputs:
        value = arguments[pname]
        if isinstance(iotype, LiteralType):
            plan[pname] = value
        elif isinstance(iotype, StateType):
            raw = str(value)
            plan[pname] = (raw, TableArg.of(raw).query)
        elif isinstance(iotype, MergeTransferType):
            if not isinstance(value, (list, tuple)):
                raise UDFError(f"merge_transfer argument {pname!r} must be a list of tables")
            plan[pname] = tuple(TableArg.of(str(v)).query for v in value)
        else:
            plan[pname] = TableArg.of(str(value)).query
    plan["__out__"] = tuple(output_tables)
    return repr(plan).replace("'", "''")


def run_udf_application(database: Database, application: UDFApplication) -> tuple[str, ...]:
    """Execute a generated application on a node's database.

    Plan-cached applications carry a function name derived from their plan
    key, so if the node's catalog already holds that function the (large)
    definition statement is skipped: after the first iteration of an
    iterative flow, a step costs two tiny DDL statements plus the INSERT.
    """
    with tracer.span("udf.execute", function=application.function_name) as span:
        statements = application.statements
        if application.reusable_definition and database.has_function(application.function_name):
            statements = statements[1:]
            span.set_attribute("definition_skipped", True)
        for sql in statements:
            database.execute(sql)
    return application.output_tables


# ----------------------------------------------------------- body generation


def _generate_plan_body(spec: UDFSpec, stateful: bool) -> str:
    """The parameterized function body: reads every value from ``__plan``.

    No argument value or table name is baked in — the body is a pure
    function of the plan key, which is what makes it cacheable and lets a
    node keep one definition across all iterations and jobs.
    """
    lines: list[str] = [
        "import numpy as np",
        "from repro.udfgen import runtime as _rt",
        "from repro.udfgen import udf_helpers as _h  # noqa: F401 (used by UDF bodies)",
        "__plan = eval(__plan_repr)",
        "__out_tables = __plan['__out__']",
        "",
    ]
    lines.extend(spec.source.splitlines())
    lines.append("")
    call_args: list[str] = []
    for pname, iotype in spec.inputs:
        lines.extend(_plan_bind_input(pname, iotype, stateful=stateful))
        call_args.append(f"{pname}=__arg_{pname}")
    lines.append(f"__result = {spec.func.__name__}({', '.join(call_args)})")
    if len(spec.outputs) == 1:
        lines.append("__outputs = (__result,)")
    else:
        lines.append("__outputs = __result if isinstance(__result, tuple) else (__result,)")
    lines.append(f"if len(__outputs) != {len(spec.outputs)}:")
    lines.append(
        f"    raise ValueError('UDF {spec.func.__name__} returned %d outputs, "
        f"declared {len(spec.outputs)}' % len(__outputs))"
    )
    # Secondary outputs through loopback INSERTs.
    for index, iotype in enumerate(spec.outputs):
        if index == 0:
            continue
        lines.extend(_plan_emit_secondary(index, iotype))
        if stateful and isinstance(iotype, StateType):
            lines.append(f"_cache[__out_tables[{index}]] = __outputs[{index}]")
    if stateful and isinstance(spec.outputs[0], StateType):
        lines.append("_cache[__out_tables[0]] = __outputs[0]")
    lines.extend(_emit_main(spec.outputs[0]))
    return "\n".join(lines)


def _plan_bind_input(pname: str, iotype: IOType, stateful: bool) -> list[str]:
    target = f"__arg_{pname}"
    local = f"__t_{pname}"
    source = f"__plan[{pname!r}]"
    if isinstance(iotype, LiteralType):
        return [f"{target} = {source}"]
    if isinstance(iotype, RelationType):
        return [
            f"{local} = _conn.execute_table({source})",
            f"{target} = _rt.Relation({{s.name: {local}.column(s.name).to_numpy() "
            f"for s in {local}.schema}})",
        ]
    if isinstance(iotype, TensorType):
        return [
            f"{local} = _conn.execute({source})",
            f"{target} = _rt.columns_to_tensor({local})",
        ]
    if isinstance(iotype, StateType):
        # The plan carries (raw table name, query); the session cache is
        # keyed by the raw name, exactly like the old value-baking scheme.
        if stateful:
            return [
                f"{target} = _cache.get({source}[0])",
                f"if {target} is None:",
                f"    {local} = _conn.execute({source}[1])",
                f"    {target} = _rt.deserialize_state({local}['state'][0])",
            ]
        return [
            f"{local} = _conn.execute({source}[1])",
            f"{target} = _rt.deserialize_state({local}['state'][0])",
        ]
    if isinstance(iotype, TransferType):
        return [
            f"{local} = _conn.execute({source})",
            f"{target} = _rt.deserialize_transfer({local}['transfer'][0])",
        ]
    if isinstance(iotype, MergeTransferType):
        return [
            f"{target} = []",
            f"for __mq_{pname} in {source}:",
            f"    __m_{pname} = _conn.execute(__mq_{pname})",
            f"    {target}.append(_rt.deserialize_transfer(__m_{pname}['transfer'][0]))",
        ]
    raise UDFError(f"unsupported input kind {type(iotype).__name__}")


def _plan_emit_secondary(index: int, iotype: IOType) -> list[str]:
    table = f"__out_tables[{index}]"
    if isinstance(iotype, StateType):
        return [
            f"__blob_{index} = _rt.serialize_state(__outputs[{index}])",
            f"_conn.execute('INSERT INTO ' + {table} + ' VALUES (' "
            f"+ _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, TransferType):
        return [
            f"__blob_{index} = _rt.serialize_transfer(__outputs[{index}])",
            f"_conn.execute('INSERT INTO ' + {table} + ' VALUES (' "
            f"+ _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, SecureTransferType):
        return [
            f"__sec_{index} = _rt.validate_secure_transfer(__outputs[{index}])",
            f"__blob_{index} = _rt.serialize_transfer(__sec_{index})",
            f"_conn.execute('INSERT INTO ' + {table} + ' VALUES (' "
            f"+ _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, TensorType):
        return [
            f"__cols_{index} = _rt.tensor_to_columns(np.asarray(__outputs[{index}]))",
            f"__n_{index} = len(__cols_{index}['val'])",
            f"for __i in range(__n_{index}):",
            f"    __vals = ', '.join(_rt.sql_quote(__cols_{index}[k][__i]) "
            f"for k in __cols_{index})",
            f"    _conn.execute('INSERT INTO ' + {table} + ' VALUES (' + __vals + ')')",
        ]
    if isinstance(iotype, RelationType):
        names = [name for name, _ in (iotype.schema or ())]
        return [
            f"__rel_{index} = __outputs[{index}]",
            f"for __i in range(len(__rel_{index}[{names[0]!r}])):",
            f"    __vals = ', '.join(_rt.sql_quote(__rel_{index}[k][__i]) for k in {names!r})",
            f"    _conn.execute('INSERT INTO ' + {table} + ' VALUES (' + __vals + ')')",
        ]
    raise UDFError(f"unsupported output kind {type(iotype).__name__}")


def _bind_input(
    pname: str, iotype: IOType, value: Any, prefix: str = "", stateful: bool = True
) -> list[str]:
    target = f"__arg_{prefix}{pname}"
    local = f"__t_{prefix}{pname}"
    if isinstance(iotype, LiteralType):
        return [f"{target} = {value!r}"]
    if isinstance(iotype, RelationType):
        query = TableArg.of(str(value)).query
        return [
            f"{local} = _conn.execute_table({query!r})",
            f"{target} = _rt.Relation({{s.name: {local}.column(s.name).to_numpy() "
            f"for s in {local}.schema}})",
        ]
    if isinstance(iotype, TensorType):
        query = TableArg.of(str(value)).query
        return [
            f"{local} = _conn.execute({query!r})",
            f"{target} = _rt.columns_to_tensor({local})",
        ]
    if isinstance(iotype, StateType):
        query = TableArg.of(str(value)).query
        lines = []
        if stateful:
            # Stateful execution: reuse the live object when this session
            # produced the state; fall back to deserialization otherwise.
            lines.append(f"{target} = _cache.get({str(value)!r})")
            lines.append(f"if {target} is None:")
            lines.append(f"    {local} = _conn.execute({query!r})")
            lines.append(f"    {target} = _rt.deserialize_state({local}['state'][0])")
            return lines
        return [
            f"{local} = _conn.execute({query!r})",
            f"{target} = _rt.deserialize_state({local}['state'][0])",
        ]
    if isinstance(iotype, TransferType):
        query = TableArg.of(str(value)).query
        return [
            f"{local} = _conn.execute({query!r})",
            f"{target} = _rt.deserialize_transfer({local}['transfer'][0])",
        ]
    if isinstance(iotype, MergeTransferType):
        if not isinstance(value, (list, tuple)):
            raise UDFError(f"merge_transfer argument {pname!r} must be a list of tables")
        queries = [TableArg.of(str(v)).query for v in value]
        lines = [f"{target} = []"]
        for query in queries:
            lines.append(f"__m = _conn.execute({query!r})")
            lines.append(f"{target}.append(_rt.deserialize_transfer(__m['transfer'][0]))")
        return lines
    raise UDFError(f"unsupported input kind {type(iotype).__name__}")


def _emit_secondary(index: int, iotype: IOType, table: str) -> list[str]:
    if isinstance(iotype, StateType):
        return [
            f"__blob_{index} = _rt.serialize_state(__outputs[{index}])",
            f"_conn.execute('INSERT INTO {table} VALUES (' + _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, TransferType):
        return [
            f"__blob_{index} = _rt.serialize_transfer(__outputs[{index}])",
            f"_conn.execute('INSERT INTO {table} VALUES (' + _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, SecureTransferType):
        return [
            f"__sec_{index} = _rt.validate_secure_transfer(__outputs[{index}])",
            f"__blob_{index} = _rt.serialize_transfer(__sec_{index})",
            f"_conn.execute('INSERT INTO {table} VALUES (' + _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, TensorType):
        return [
            f"__cols_{index} = _rt.tensor_to_columns(np.asarray(__outputs[{index}]))",
            f"__n_{index} = len(__cols_{index}['val'])",
            f"for __i in range(__n_{index}):",
            f"    __vals = ', '.join(_rt.sql_quote(__cols_{index}[k][__i]) "
            f"for k in __cols_{index})",
            f"    _conn.execute('INSERT INTO {table} VALUES (' + __vals + ')')",
        ]
    if isinstance(iotype, RelationType):
        names = [name for name, _ in (iotype.schema or ())]
        return [
            f"__rel_{index} = __outputs[{index}]",
            f"for __i in range(len(__rel_{index}[{names[0]!r}])):",
            f"    __vals = ', '.join(_rt.sql_quote(__rel_{index}[k][__i]) for k in {names!r})",
            f"    _conn.execute('INSERT INTO {table} VALUES (' + __vals + ')')",
        ]
    raise UDFError(f"unsupported output kind {type(iotype).__name__}")


def _emit_main(iotype: IOType) -> list[str]:
    if isinstance(iotype, StateType):
        return [
            "return {'state': np.array([_rt.serialize_state(__outputs[0])], dtype=object)}"
        ]
    if isinstance(iotype, TransferType):
        return [
            "return {'transfer': np.array([_rt.serialize_transfer(__outputs[0])], dtype=object)}"
        ]
    if isinstance(iotype, SecureTransferType):
        return [
            "__sec_main = _rt.validate_secure_transfer(__outputs[0])",
            "return {'secure_transfer': "
            "np.array([_rt.serialize_transfer(__sec_main)], dtype=object)}",
        ]
    if isinstance(iotype, TensorType):
        return ["return _rt.tensor_to_columns(np.asarray(__outputs[0]))"]
    if isinstance(iotype, RelationType):
        names = [name for name, _ in (iotype.schema or ())]
        return [f"return {{k: np.asarray(__outputs[0][k]) for k in {names!r}}}"]
    raise UDFError(f"unsupported output kind {type(iotype).__name__}")


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


# ------------------------------------------------------------------- fusion


@dataclass(frozen=True)
class StepOutput:
    """Placeholder argument: output ``output_index`` of fused step ``step_index``.

    Inside a fused application the referenced value is passed as a live
    Python object — no serialization, no intermediate table.
    """

    step_index: int
    output_index: int = 0


@dataclass(frozen=True)
class FusionStep:
    """One step of a fused pipeline: a UDF spec plus its bound arguments."""

    spec: UDFSpec
    arguments: Mapping[str, Any]


def generate_fused_application(
    steps: Sequence[FusionStep],
    job_id: str,
    output_prefix: str | None = None,
) -> UDFApplication:
    """Fuse a chain of local steps into a single SQL UDF application.

    The paper's roadmap cites "UDF fusion": consecutive computation steps
    whose intermediate results never feed SQL can execute as one UDF,
    eliminating intermediate tables and the (de)serialization between steps.
    Only the *final* step's outputs are materialized; earlier outputs exist
    solely as Python objects inside the fused body.

    Later steps reference earlier results with :class:`StepOutput`
    placeholders; all other argument kinds behave as in
    :func:`generate_udf_application`.
    """
    if not steps:
        raise UDFError("cannot fuse zero steps")
    for index, step in enumerate(steps):
        if not step.spec.source:
            raise UDFError(f"fused step {index}: source is unavailable")
        missing = [n for n in step.spec.input_names if n not in step.arguments]
        if missing:
            raise UDFError(f"fused step {index} ({step.spec.name}): missing {missing}")
    final = steps[-1].spec
    function_name = _sanitize(f"{final.name}_fused{len(steps)}_{job_id}")
    prefix = output_prefix or f"{function_name}_out"
    output_tables = tuple(f"{prefix}_{i}" for i in range(len(final.outputs)))

    lines: list[str] = [
        "import numpy as np",
        "from repro.udfgen import runtime as _rt",
        "from repro.udfgen import udf_helpers as _h  # noqa: F401 (used by UDF bodies)",
        "",
    ]
    embedded: set[str] = set()
    for step in steps:
        if step.spec.name not in embedded:
            embedded.add(step.spec.name)
            lines.extend(step.spec.source.splitlines())
            lines.append("")
    for index, step in enumerate(steps):
        call_args: list[str] = []
        for pname, iotype in step.spec.inputs:
            value = step.arguments[pname]
            target = f"__arg_s{index}_{pname}"
            if isinstance(value, StepOutput):
                if value.step_index >= index:
                    raise UDFError(
                        f"fused step {index}: StepOutput must reference an earlier step"
                    )
                lines.append(
                    f"{target} = __outputs_{value.step_index}[{value.output_index}]"
                )
            else:
                lines.extend(_bind_input(pname, iotype, value, prefix=f"s{index}_"))
            call_args.append(f"{pname}={target}")
        lines.append(
            f"__result_{index} = {step.spec.func.__name__}({', '.join(call_args)})"
        )
        if len(step.spec.outputs) == 1:
            lines.append(f"__outputs_{index} = (__result_{index},)")
        else:
            lines.append(
                f"__outputs_{index} = __result_{index} "
                f"if isinstance(__result_{index}, tuple) else (__result_{index},)"
            )
    lines.append(f"__outputs = __outputs_{len(steps) - 1}")
    lines.append(f"if len(__outputs) != {len(final.outputs)}:")
    lines.append(
        f"    raise ValueError('fused pipeline returned %d outputs, declared "
        f"{len(final.outputs)}' % len(__outputs))"
    )
    for index, (iotype, table) in enumerate(zip(final.outputs, output_tables)):
        if index == 0:
            continue
        lines.extend(_emit_secondary(index, iotype, table))
    lines.extend(_emit_main(final.outputs[0]))
    body = "\n".join(lines)

    main_schema = output_schema(final.outputs[0])
    returns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in main_schema)
    definition_sql = (
        f"CREATE OR REPLACE FUNCTION {function_name}() "
        f"RETURNS TABLE({returns}) LANGUAGE PYTHON {{\n{body}\n}}"
    )
    create_output_sql = []
    for table_name, iotype in zip(output_tables, final.outputs):
        schema = output_schema(iotype)
        columns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in schema)
        create_output_sql.append(f"CREATE TABLE {table_name} ({columns})")
    execute_sql = f"INSERT INTO {output_tables[0]} SELECT * FROM {function_name}()"
    return UDFApplication(
        function_name=function_name,
        definition_sql=definition_sql,
        create_output_sql=tuple(create_output_sql),
        execute_sql=execute_sql,
        output_tables=output_tables,
        output_kinds=final.outputs,
    )
