"""Translate one call of a ``@udf`` function into SQL statements.

The generated artifact is a :class:`UDFApplication`:

- one ``CREATE OR REPLACE FUNCTION ... LANGUAGE PYTHON { ... }`` whose body
  embeds the user function's source plus the serialization glue,
- ``CREATE TABLE`` statements for every output,
- the driving ``INSERT INTO <main output> SELECT * FROM <function>()``.

Relational, state, and transfer inputs are read *inside the UDF body* via
SQL loopback queries; secondary outputs are written back via loopback
INSERTs — exactly the mechanism the paper attributes to the UDFGenerator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.engine.database import Database
from repro.errors import UDFError
from repro.udfgen.decorators import UDFSpec
from repro.udfgen.iotypes import (
    IOType,
    LiteralType,
    MergeTransferType,
    RelationType,
    SecureTransferType,
    StateType,
    TensorType,
    TransferType,
    output_schema,
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


@dataclass(frozen=True)
class TableArg:
    """A relational argument: a table name or a full SELECT query."""

    query: str

    @classmethod
    def of(cls, name_or_query: str) -> "TableArg":
        text = name_or_query.strip()
        if _IDENTIFIER_RE.match(text):
            return cls(f"SELECT * FROM {text}")
        return cls(text)


@dataclass(frozen=True)
class UDFApplication:
    """The SQL artifact of one UDF call, ready to execute on a node."""

    function_name: str
    definition_sql: str
    create_output_sql: tuple[str, ...]
    execute_sql: str
    output_tables: tuple[str, ...]
    output_kinds: tuple[IOType, ...]

    @property
    def statements(self) -> list[str]:
        return [self.definition_sql, *self.create_output_sql, self.execute_sql]


def generate_udf_application(
    spec: UDFSpec,
    job_id: str,
    arguments: Mapping[str, Any],
    output_prefix: str | None = None,
    stateful: bool = True,
) -> UDFApplication:
    """Emit the SQL for one application of ``spec`` with bound arguments.

    ``arguments`` maps parameter names to:

    - a table name / SELECT string (``relation``, ``tensor``, ``state``,
      ``transfer`` inputs),
    - a list of table names (``merge_transfer``),
    - any JSON-representable Python value (``literal``).

    ``stateful`` enables session-cache reuse of state objects (the paper's
    roadmap item "stateful Python UDF execution"): a state produced by one
    step is handed to the next without a pickle round trip.  Disable for
    the E9 ablation.
    """
    missing = [name for name in spec.input_names if name not in arguments]
    if missing:
        raise UDFError(f"UDF {spec.name!r}: missing arguments {missing}")
    unknown = [name for name in arguments if name not in spec.input_names]
    if unknown:
        raise UDFError(f"UDF {spec.name!r}: unknown arguments {unknown}")
    if not spec.source:
        raise UDFError(f"UDF {spec.name!r}: source is unavailable; cannot generate SQL")

    function_name = _sanitize(f"{spec.name}_{job_id}")
    prefix = output_prefix or f"{function_name}_out"
    output_tables = tuple(f"{prefix}_{i}" for i in range(len(spec.outputs)))

    body = _generate_body(spec, arguments, output_tables, stateful)
    main_schema = output_schema(spec.outputs[0])
    returns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in main_schema)
    definition_sql = (
        f"CREATE OR REPLACE FUNCTION {function_name}() "
        f"RETURNS TABLE({returns}) LANGUAGE PYTHON {{\n{body}\n}}"
    )
    create_output_sql = []
    for table_name, iotype in zip(output_tables, spec.outputs):
        schema = output_schema(iotype)
        columns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in schema)
        create_output_sql.append(f"CREATE TABLE {table_name} ({columns})")
    execute_sql = f"INSERT INTO {output_tables[0]} SELECT * FROM {function_name}()"
    return UDFApplication(
        function_name=function_name,
        definition_sql=definition_sql,
        create_output_sql=tuple(create_output_sql),
        execute_sql=execute_sql,
        output_tables=output_tables,
        output_kinds=spec.outputs,
    )


def run_udf_application(database: Database, application: UDFApplication) -> tuple[str, ...]:
    """Execute a generated application on a node's database."""
    for sql in application.statements:
        database.execute(sql)
    return application.output_tables


# ----------------------------------------------------------- body generation


def _generate_body(
    spec: UDFSpec,
    arguments: Mapping[str, Any],
    output_tables: Sequence[str],
    stateful: bool = True,
) -> str:
    lines: list[str] = [
        "import numpy as np",
        "from repro.udfgen import runtime as _rt",
        "from repro.udfgen import udf_helpers as _h  # noqa: F401 (used by UDF bodies)",
        "",
    ]
    lines.extend(spec.source.splitlines())
    lines.append("")
    call_args: list[str] = []
    for pname, iotype in spec.inputs:
        value = arguments[pname]
        lines.extend(_bind_input(pname, iotype, value, stateful=stateful))
        call_args.append(f"{pname}=__arg_{pname}")
    lines.append(f"__result = {spec.func.__name__}({', '.join(call_args)})")
    if len(spec.outputs) == 1:
        lines.append("__outputs = (__result,)")
    else:
        lines.append("__outputs = __result if isinstance(__result, tuple) else (__result,)")
    lines.append(f"if len(__outputs) != {len(spec.outputs)}:")
    lines.append(
        f"    raise ValueError('UDF {spec.func.__name__} returned %d outputs, "
        f"declared {len(spec.outputs)}' % len(__outputs))"
    )
    # Secondary outputs through loopback INSERTs.
    for index, (iotype, table) in enumerate(zip(spec.outputs, output_tables)):
        if index == 0:
            continue
        lines.extend(_emit_secondary(index, iotype, table))
        if stateful and isinstance(iotype, StateType):
            lines.append(f"_cache[{table!r}] = __outputs[{index}]")
    if stateful and isinstance(spec.outputs[0], StateType):
        lines.append(f"_cache[{output_tables[0]!r}] = __outputs[0]")
    lines.extend(_emit_main(spec.outputs[0]))
    return "\n".join(lines)


def _bind_input(
    pname: str, iotype: IOType, value: Any, prefix: str = "", stateful: bool = True
) -> list[str]:
    target = f"__arg_{prefix}{pname}"
    local = f"__t_{prefix}{pname}"
    if isinstance(iotype, LiteralType):
        return [f"{target} = {value!r}"]
    if isinstance(iotype, RelationType):
        query = TableArg.of(str(value)).query
        return [
            f"{local} = _conn.execute_table({query!r})",
            f"{target} = _rt.Relation({{s.name: {local}.column(s.name).to_numpy() "
            f"for s in {local}.schema}})",
        ]
    if isinstance(iotype, TensorType):
        query = TableArg.of(str(value)).query
        return [
            f"{local} = _conn.execute({query!r})",
            f"{target} = _rt.columns_to_tensor({local})",
        ]
    if isinstance(iotype, StateType):
        query = TableArg.of(str(value)).query
        lines = []
        if stateful:
            # Stateful execution: reuse the live object when this session
            # produced the state; fall back to deserialization otherwise.
            lines.append(f"{target} = _cache.get({str(value)!r})")
            lines.append(f"if {target} is None:")
            lines.append(f"    {local} = _conn.execute({query!r})")
            lines.append(f"    {target} = _rt.deserialize_state({local}['state'][0])")
            return lines
        return [
            f"{local} = _conn.execute({query!r})",
            f"{target} = _rt.deserialize_state({local}['state'][0])",
        ]
    if isinstance(iotype, TransferType):
        query = TableArg.of(str(value)).query
        return [
            f"{local} = _conn.execute({query!r})",
            f"{target} = _rt.deserialize_transfer({local}['transfer'][0])",
        ]
    if isinstance(iotype, MergeTransferType):
        if not isinstance(value, (list, tuple)):
            raise UDFError(f"merge_transfer argument {pname!r} must be a list of tables")
        queries = [TableArg.of(str(v)).query for v in value]
        lines = [f"{target} = []"]
        for query in queries:
            lines.append(f"__m = _conn.execute({query!r})")
            lines.append(f"{target}.append(_rt.deserialize_transfer(__m['transfer'][0]))")
        return lines
    raise UDFError(f"unsupported input kind {type(iotype).__name__}")


def _emit_secondary(index: int, iotype: IOType, table: str) -> list[str]:
    if isinstance(iotype, StateType):
        return [
            f"__blob_{index} = _rt.serialize_state(__outputs[{index}])",
            f"_conn.execute('INSERT INTO {table} VALUES (' + _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, TransferType):
        return [
            f"__blob_{index} = _rt.serialize_transfer(__outputs[{index}])",
            f"_conn.execute('INSERT INTO {table} VALUES (' + _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, SecureTransferType):
        return [
            f"__sec_{index} = _rt.validate_secure_transfer(__outputs[{index}])",
            f"__blob_{index} = _rt.serialize_transfer(__sec_{index})",
            f"_conn.execute('INSERT INTO {table} VALUES (' + _rt.sql_quote(__blob_{index}) + ')')",
        ]
    if isinstance(iotype, TensorType):
        return [
            f"__cols_{index} = _rt.tensor_to_columns(np.asarray(__outputs[{index}]))",
            f"__n_{index} = len(__cols_{index}['val'])",
            f"for __i in range(__n_{index}):",
            f"    __vals = ', '.join(_rt.sql_quote(__cols_{index}[k][__i]) "
            f"for k in __cols_{index})",
            f"    _conn.execute('INSERT INTO {table} VALUES (' + __vals + ')')",
        ]
    if isinstance(iotype, RelationType):
        names = [name for name, _ in (iotype.schema or ())]
        return [
            f"__rel_{index} = __outputs[{index}]",
            f"for __i in range(len(__rel_{index}[{names[0]!r}])):",
            f"    __vals = ', '.join(_rt.sql_quote(__rel_{index}[k][__i]) for k in {names!r})",
            f"    _conn.execute('INSERT INTO {table} VALUES (' + __vals + ')')",
        ]
    raise UDFError(f"unsupported output kind {type(iotype).__name__}")


def _emit_main(iotype: IOType) -> list[str]:
    if isinstance(iotype, StateType):
        return [
            "return {'state': np.array([_rt.serialize_state(__outputs[0])], dtype=object)}"
        ]
    if isinstance(iotype, TransferType):
        return [
            "return {'transfer': np.array([_rt.serialize_transfer(__outputs[0])], dtype=object)}"
        ]
    if isinstance(iotype, SecureTransferType):
        return [
            "__sec_main = _rt.validate_secure_transfer(__outputs[0])",
            "return {'secure_transfer': "
            "np.array([_rt.serialize_transfer(__sec_main)], dtype=object)}",
        ]
    if isinstance(iotype, TensorType):
        return ["return _rt.tensor_to_columns(np.asarray(__outputs[0]))"]
    if isinstance(iotype, RelationType):
        names = [name for name, _ in (iotype.schema or ())]
        return [f"return {{k: np.asarray(__outputs[0][k]) for k in {names!r}}}"]
    raise UDFError(f"unsupported output kind {type(iotype).__name__}")


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


# ------------------------------------------------------------------- fusion


@dataclass(frozen=True)
class StepOutput:
    """Placeholder argument: output ``output_index`` of fused step ``step_index``.

    Inside a fused application the referenced value is passed as a live
    Python object — no serialization, no intermediate table.
    """

    step_index: int
    output_index: int = 0


@dataclass(frozen=True)
class FusionStep:
    """One step of a fused pipeline: a UDF spec plus its bound arguments."""

    spec: UDFSpec
    arguments: Mapping[str, Any]


def generate_fused_application(
    steps: Sequence[FusionStep],
    job_id: str,
    output_prefix: str | None = None,
) -> UDFApplication:
    """Fuse a chain of local steps into a single SQL UDF application.

    The paper's roadmap cites "UDF fusion": consecutive computation steps
    whose intermediate results never feed SQL can execute as one UDF,
    eliminating intermediate tables and the (de)serialization between steps.
    Only the *final* step's outputs are materialized; earlier outputs exist
    solely as Python objects inside the fused body.

    Later steps reference earlier results with :class:`StepOutput`
    placeholders; all other argument kinds behave as in
    :func:`generate_udf_application`.
    """
    if not steps:
        raise UDFError("cannot fuse zero steps")
    for index, step in enumerate(steps):
        if not step.spec.source:
            raise UDFError(f"fused step {index}: source is unavailable")
        missing = [n for n in step.spec.input_names if n not in step.arguments]
        if missing:
            raise UDFError(f"fused step {index} ({step.spec.name}): missing {missing}")
    final = steps[-1].spec
    function_name = _sanitize(f"{final.name}_fused{len(steps)}_{job_id}")
    prefix = output_prefix or f"{function_name}_out"
    output_tables = tuple(f"{prefix}_{i}" for i in range(len(final.outputs)))

    lines: list[str] = [
        "import numpy as np",
        "from repro.udfgen import runtime as _rt",
        "from repro.udfgen import udf_helpers as _h  # noqa: F401 (used by UDF bodies)",
        "",
    ]
    embedded: set[str] = set()
    for step in steps:
        if step.spec.name not in embedded:
            embedded.add(step.spec.name)
            lines.extend(step.spec.source.splitlines())
            lines.append("")
    for index, step in enumerate(steps):
        call_args: list[str] = []
        for pname, iotype in step.spec.inputs:
            value = step.arguments[pname]
            target = f"__arg_s{index}_{pname}"
            if isinstance(value, StepOutput):
                if value.step_index >= index:
                    raise UDFError(
                        f"fused step {index}: StepOutput must reference an earlier step"
                    )
                lines.append(
                    f"{target} = __outputs_{value.step_index}[{value.output_index}]"
                )
            else:
                lines.extend(_bind_input(pname, iotype, value, prefix=f"s{index}_"))
            call_args.append(f"{pname}={target}")
        lines.append(
            f"__result_{index} = {step.spec.func.__name__}({', '.join(call_args)})"
        )
        if len(step.spec.outputs) == 1:
            lines.append(f"__outputs_{index} = (__result_{index},)")
        else:
            lines.append(
                f"__outputs_{index} = __result_{index} "
                f"if isinstance(__result_{index}, tuple) else (__result_{index},)"
            )
    lines.append(f"__outputs = __outputs_{len(steps) - 1}")
    lines.append(f"if len(__outputs) != {len(final.outputs)}:")
    lines.append(
        f"    raise ValueError('fused pipeline returned %d outputs, declared "
        f"{len(final.outputs)}' % len(__outputs))"
    )
    for index, (iotype, table) in enumerate(zip(final.outputs, output_tables)):
        if index == 0:
            continue
        lines.extend(_emit_secondary(index, iotype, table))
    lines.extend(_emit_main(final.outputs[0]))
    body = "\n".join(lines)

    main_schema = output_schema(final.outputs[0])
    returns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in main_schema)
    definition_sql = (
        f"CREATE OR REPLACE FUNCTION {function_name}() "
        f"RETURNS TABLE({returns}) LANGUAGE PYTHON {{\n{body}\n}}"
    )
    create_output_sql = []
    for table_name, iotype in zip(output_tables, final.outputs):
        schema = output_schema(iotype)
        columns = ", ".join(f"{name} {sql_type.value}" for name, sql_type in schema)
        create_output_sql.append(f"CREATE TABLE {table_name} ({columns})")
    execute_sql = f"INSERT INTO {output_tables[0]} SELECT * FROM {function_name}()"
    return UDFApplication(
        function_name=function_name,
        definition_sql=definition_sql,
        create_output_sql=tuple(create_output_sql),
        execute_sql=execute_sql,
        output_tables=output_tables,
        output_kinds=final.outputs,
    )
