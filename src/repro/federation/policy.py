"""Failure policies and worker-health tracking for the federation runtime.

Production federated stacks treat node failure as the normal case: a dropped
message is retried with exponential backoff, a send that keeps failing hits a
deadline, and an experiment degrades to the surviving quorum instead of dying
on the first unreachable hospital.  This module holds the three pieces the
rest of the stack composes:

- :class:`RetryPolicy` — per-send retry/backoff/deadline knobs consumed by
  :class:`~repro.federation.transport.Transport`,
- :class:`FailurePolicy` — the federation-level contract (retries, deadline,
  ``min_workers`` quorum, fail-vs-degrade on worker loss) consumed by
  :class:`~repro.federation.master.Master` and the execution context,
- :class:`WorkerHealth` — a consecutive-failure circuit breaker with
  re-admission on recovery, shared by every flow on a master.

All randomness used for backoff jitter is drawn from the transport's seeded
RNG in request order *before* dispatch, so a failure schedule plus a seed
reproduces the exact same retries at any fan-out width.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import FederationError


@dataclass(frozen=True)
class RetryPolicy:
    """How the transport retries one send.

    ``max_attempts`` counts the initial try, so ``1`` means no retries (the
    default, preserving fail-fast behavior).  The backoff for attempt ``k``
    (0-based) is ``min(base_delay * 2**k, max_delay)`` scaled by a jitter
    factor in ``[1 - jitter, 1 + jitter]``; delays are charged to the
    *simulated* clock, so retrying never slows the test suite down.

    ``deadline_seconds`` bounds the cumulative simulated time (attempts plus
    backoff) one logical send may consume; exceeding it raises
    :class:`~repro.errors.FederationTimeoutError`.
    """

    max_attempts: int = 1
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    jitter: float = 0.25
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FederationError("max_attempts must be >= 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise FederationError("backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise FederationError("jitter must be in [0, 1]")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise FederationError("deadline_seconds must be positive")

    def backoff_delay(self, attempt: int, jitter_unit: float) -> float:
        """Delay before re-attempt ``attempt + 1``; ``jitter_unit`` in [0, 1)."""
        delay = min(self.base_delay_seconds * (2**attempt), self.max_delay_seconds)
        return delay * (1 - self.jitter + 2 * self.jitter * jitter_unit)


@dataclass(frozen=True)
class FailurePolicy:
    """The federation's contract for surviving worker loss.

    ``on_worker_loss="fail"`` (default) reproduces the fail-fast behavior:
    the first unreachable worker aborts the flow.  ``"degrade"`` evicts the
    dead worker from the flow and continues with the survivors, as long as at
    least ``min_workers`` remain — otherwise the flow raises
    :class:`~repro.errors.QuorumError`.

    ``failure_threshold`` consecutive failed exchanges trip a worker's
    circuit breaker (see :class:`WorkerHealth`); a successful exchange — e.g.
    answering a later catalog ping — re-admits it.
    """

    retries: int = 0
    retry_base_delay: float = 0.05
    retry_max_delay: float = 2.0
    retry_jitter: float = 0.25
    deadline_seconds: float | None = None
    min_workers: int = 1
    on_worker_loss: str = "fail"
    failure_threshold: int = 3

    def __post_init__(self) -> None:
        if self.on_worker_loss not in ("fail", "degrade"):
            raise FederationError(
                f"on_worker_loss must be 'fail' or 'degrade', got {self.on_worker_loss!r}"
            )
        if self.retries < 0:
            raise FederationError("retries must be >= 0")
        if self.min_workers < 1:
            raise FederationError("min_workers must be >= 1")
        if self.failure_threshold < 1:
            raise FederationError("failure_threshold must be >= 1")

    @property
    def degrade(self) -> bool:
        return self.on_worker_loss == "degrade"

    def retry_policy(self) -> RetryPolicy:
        """The transport-level policy implementing this contract."""
        return RetryPolicy(
            max_attempts=self.retries + 1,
            base_delay_seconds=self.retry_base_delay,
            max_delay_seconds=self.retry_max_delay,
            jitter=self.retry_jitter,
            deadline_seconds=self.deadline_seconds,
        )


class WorkerHealth:
    """Consecutive-failure circuit breaker over a master's workers.

    ``failure_threshold`` consecutive failed exchanges quarantine a worker;
    any successful exchange resets its counter and re-admits it.  The tracker
    is shared by every concurrent flow on a master, so access is
    lock-protected.
    """

    def __init__(self, failure_threshold: int = 3) -> None:
        if failure_threshold < 1:
            raise FederationError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self._lock = threading.Lock()
        self._consecutive_failures: dict[str, int] = {}
        self._quarantined: set[str] = set()
        #: Total circuit-breaker trips (quarantine events), ever.
        self.evictions = 0

    def record_success(self, worker: str) -> bool:
        """Note a successful exchange; returns True if this re-admitted it."""
        with self._lock:
            self._consecutive_failures[worker] = 0
            if worker in self._quarantined:
                self._quarantined.discard(worker)
                return True
            return False

    def record_failure(self, worker: str) -> bool:
        """Note a failed exchange; returns True if the breaker tripped now."""
        with self._lock:
            count = self._consecutive_failures.get(worker, 0) + 1
            self._consecutive_failures[worker] = count
            if count >= self.failure_threshold and worker not in self._quarantined:
                self._quarantined.add(worker)
                self.evictions += 1
                return True
            return False

    def is_quarantined(self, worker: str) -> bool:
        with self._lock:
            return worker in self._quarantined

    def quarantined(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._quarantined)

    def consecutive_failures(self, worker: str) -> int:
        with self._lock:
            return self._consecutive_failures.get(worker, 0)

    def filter_alive(self, workers: list[str]) -> list[str]:
        """The given workers minus the quarantined ones, order preserved."""
        with self._lock:
            return [w for w in workers if w not in self._quarantined]
