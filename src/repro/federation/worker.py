"""The Worker node: hosts sensitive hospital data, runs local steps in-engine.

Paper §2, *Worker Node*: "The Worker node hosts sensitive hospital data.  It
receives an execution request and performs local computations on the data.
The request comes as a procedural code defined by the algorithm developer and
MIP wraps it as a SQL UDF with the UDFGenerator."

Privacy rules enforced here (the paper's key design principles):

- primary data tables are never readable through the transport,
- ``state`` outputs never leave the worker (they are *pointers to the actual
  data*, resolved only by later local steps),
- only ``transfer`` / ``secure_transfer`` outputs — aggregates — can be
  fetched, and ``secure_transfer`` payloads go to the SMPC cluster only,
- local computations refuse data views smaller than the privacy threshold.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Any

from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import FederationError, PrivacyThresholdError, UDFError
from repro.federation.messages import Message
from repro.federation.serialization import table_to_payload
from repro.observability.audit import AuditLog
from repro.observability.trace import tracer
from repro.udfgen.decorators import udf_registry
from repro.udfgen.generator import generate_udf_application, run_udf_application
from repro.udfgen.iotypes import (
    RelationType,
    SecureTransferType,
    StateType,
    TransferType,
)

#: Minimum number of rows a data view must have before a local step may run.
DEFAULT_PRIVACY_THRESHOLD = 10


@dataclass
class _OutputRecord:
    table: str
    kind: str
    job_id: str


class Worker:
    """One hospital node: a local engine plus the message handlers."""

    def __init__(
        self,
        node_id: str,
        privacy_threshold: int = DEFAULT_PRIVACY_THRESHOLD,
    ) -> None:
        self.node_id = node_id
        self.database = Database(name=node_id)
        self.privacy_threshold = privacy_threshold
        #: Append-only audit trail of what this hospital's data was used for.
        self.audit = AuditLog(node_id)
        self._datasets: dict[str, list[str]] = {}  # data_model -> dataset codes
        self._data_tables: dict[str, str] = {}  # data_model -> table name
        self._outputs: dict[str, _OutputRecord] = {}  # table -> record
        # The transport already serializes deliveries per destination; this
        # lock additionally protects _outputs against direct concurrent use
        # (multiple transports, tests driving handlers by hand).
        self._handle_lock = threading.RLock()

    # -------------------------------------------------------------- data load

    def load_data_model(self, data_model: str, table: Table) -> None:
        """ETL entry point: register (or extend) a data-model table.

        The table must carry a ``dataset`` VARCHAR column; the worker tracks
        which dataset codes it holds so the Master can ship algorithms only
        where the data lives.
        """
        if "dataset" not in table.schema:
            raise FederationError("data-model tables must have a 'dataset' column")
        table_name = f"data_{data_model}"
        if self.database.has_table(table_name):
            existing = self.database.get_table(table_name)
            table = existing.concat(table)
            self.database.register_table(table_name, table, replace=True)
        else:
            self.database.register_table(table_name, table)
        self._data_tables[data_model] = table_name
        codes = sorted({v for v in table.column("dataset").to_list() if v is not None})
        self._datasets[data_model] = codes

    def datasets(self) -> dict[str, list[str]]:
        return {model: list(codes) for model, codes in self._datasets.items()}

    def data_table_name(self, data_model: str) -> str:
        try:
            return self._data_tables[data_model]
        except KeyError:
            raise FederationError(
                f"worker {self.node_id!r} does not hold data model {data_model!r}"
            ) from None

    # ------------------------------------------------------------- dispatcher

    def handle(self, message: Message) -> dict[str, Any]:
        handlers = {
            "ping": self._handle_ping,
            "list_datasets": self._handle_list_datasets,
            "run_udf": self._handle_run_udf,
            "get_transfer": self._handle_get_transfer,
            "put_transfer": self._handle_put_transfer,
            "get_secure_payload": self._handle_get_secure_payload,
            "fetch_table": self._handle_fetch_table,
            "cleanup": self._handle_cleanup,
            "row_count": self._handle_row_count,
        }
        handler = handlers.get(message.kind)
        if handler is None:
            raise FederationError(f"worker cannot handle message kind {message.kind!r}")
        with tracer.span("worker.handle", node=self.node_id, kind=message.kind):
            with self._handle_lock:
                return handler(dict(message.payload))

    # --------------------------------------------------------------- handlers

    def _handle_ping(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {"node_id": self.node_id, "status": "up"}

    def _handle_list_datasets(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {"datasets": self.datasets()}

    def _handle_run_udf(self, payload: dict[str, Any]) -> dict[str, Any]:
        job_id = payload["job_id"]
        udf_name = payload["udf_name"]
        arguments: dict[str, Any] = payload["arguments"]
        spec = udf_registry.get(udf_name)
        bound: dict[str, Any] = {}
        for pname, iotype in spec.inputs:
            if pname not in arguments:
                raise UDFError(f"missing argument {pname!r} for UDF {udf_name!r}")
            bound[pname] = self._bind_argument(pname, iotype, arguments[pname], job_id)
        application = generate_udf_application(
            spec, f"{job_id}_{self.node_id}", bound
        )
        run_udf_application(self.database, application)
        outputs = []
        for table, iotype in zip(application.output_tables, application.output_kinds):
            kind = iotype.kind
            self._outputs[table] = _OutputRecord(table, kind, job_id)
            outputs.append({"table": table, "kind": kind})
        return {"outputs": outputs}

    def _bind_argument(
        self, pname: str, iotype: Any, spec: dict[str, Any], job_id: str | None = None
    ) -> Any:
        arg_kind = spec.get("kind")
        if arg_kind == "literal":
            return spec["value"]
        if arg_kind == "table":
            name = spec["name"]
            record = self._outputs.get(name)
            if record is None:
                raise FederationError(
                    f"worker {self.node_id!r}: table {name!r} is not a known step output"
                )
            return name
        if arg_kind == "view":
            if not isinstance(iotype, RelationType):
                raise UDFError(f"argument {pname!r}: data views bind only to relations")
            query = spec["query"]
            view = self.database.query(query)
            self.audit.record(
                "dataset_read",
                job_id=job_id,
                rows=view.num_rows,
                variables=list(spec.get("variables", ())),
                datasets=list(spec.get("datasets", ())),
            )
            if view.num_rows < self.privacy_threshold:
                self.audit.record(
                    "privacy_threshold_rejected",
                    job_id=job_id,
                    rows=view.num_rows,
                    threshold=self.privacy_threshold,
                )
                raise PrivacyThresholdError(
                    f"worker {self.node_id!r}: data view has {view.num_rows} rows, "
                    f"below the privacy threshold of {self.privacy_threshold}"
                )
            self.audit.record(
                "rows_contributed", job_id=job_id, rows=view.num_rows
            )
            return query
        raise FederationError(f"unknown argument kind {arg_kind!r}")

    def _handle_get_transfer(self, payload: dict[str, Any]) -> dict[str, Any]:
        table = payload["table"]
        record = self._require_output(table)
        if record.kind not in ("transfer", "secure_transfer"):
            raise FederationError(
                f"worker {self.node_id!r}: refusing to ship {record.kind!r} output "
                f"{table!r} — only aggregates leave the node"
            )
        if record.kind == "secure_transfer" and not payload.get("allow_insecure", False):
            raise FederationError(
                f"worker {self.node_id!r}: output {table!r} is a secure transfer; "
                "it must be imported by the SMPC cluster, not fetched in the clear"
            )
        blob = self.database.scalar(f"SELECT * FROM {table}")
        self.audit.record(
            "aggregate_shared", job_id=record.job_id, table=table, path="transfer"
        )
        return {"transfer": blob}

    def _handle_put_transfer(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Receive a broadcast global transfer (model parameters and the like).

        Idempotent under at-least-once delivery: a replay carrying the same
        table name and the same blob (a master retrying a broadcast whose
        acknowledgement was lost) is acknowledged without re-writing; a
        *different* blob under an existing name is still an error.
        """
        job_id = payload["job_id"]
        table = payload["table"]
        blob = payload["blob"]
        if self.database.has_table(table):
            record = self._outputs.get(table)
            if record is not None and record.kind == "transfer":
                existing = self.database.scalar(f"SELECT * FROM {table}")
                if existing == str(blob):
                    return {"table": table, "duplicate": True}
            raise FederationError(f"worker {self.node_id!r}: table {table!r} already exists")
        self.database.execute(f"CREATE TABLE {table} (transfer VARCHAR)")
        escaped = str(blob).replace("'", "''")
        self.database.execute(f"INSERT INTO {table} VALUES ('{escaped}')")
        self._outputs[table] = _OutputRecord(table, "transfer", job_id)
        self.audit.record("transfer_received", job_id=job_id, table=table)
        return {"table": table}

    def _handle_get_secure_payload(self, payload: dict[str, Any]) -> dict[str, Any]:
        table = payload["table"]
        record = self._require_output(table)
        if record.kind != "secure_transfer":
            raise FederationError(
                f"worker {self.node_id!r}: table {table!r} is not a secure transfer"
            )
        blob = self.database.scalar(f"SELECT * FROM {table}")
        self.audit.record(
            "aggregate_shared", job_id=record.job_id, table=table, path="smpc"
        )
        return {"payload": json.loads(blob)}

    def _handle_fetch_table(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Remote-table access (the non-secure remote/merge aggregation path)."""
        table = payload["table"]
        record = self._require_output(table)
        if record.kind not in ("transfer", "secure_transfer"):
            raise FederationError(
                f"worker {self.node_id!r}: remote access to {record.kind!r} table "
                f"{table!r} denied — the remote/merge path ships transfers only"
            )
        self.audit.record(
            "aggregate_shared", job_id=record.job_id, table=table, path="remote"
        )
        return {"table": table_to_payload(self.database.get_table(table))}

    def _handle_cleanup(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Drop step tables: by owning job (with an optional keep-list for
        tables backing live plan-cache entries), or an explicit table list
        (expired cache entries whose owning job is long gone)."""
        if "job_id" not in payload:
            dropped = []
            for table in payload.get("tables", ()):
                if table in self._outputs:
                    self.database.drop_table(table, if_exists=True)
                    del self._outputs[table]
                    dropped.append(table)
            return {"dropped": dropped}
        job_id = payload["job_id"]
        keep = set(payload.get("keep", ()))
        dropped = []
        for table, record in list(self._outputs.items()):
            if table in keep:
                continue
            # Step job ids are prefixed by the experiment job id.
            if record.job_id == job_id or record.job_id.startswith(f"{job_id}_"):
                self.database.drop_table(table, if_exists=True)
                del self._outputs[table]
                dropped.append(table)
        return {"dropped": dropped}

    def _handle_row_count(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Row count of a data view (used for dataset availability checks)."""
        query = payload["query"]
        view = self.database.query(query)
        return {"rows": view.num_rows}

    def _require_output(self, table: str) -> _OutputRecord:
        record = self._outputs.get(table)
        if record is None:
            raise FederationError(
                f"worker {self.node_id!r}: table {table!r} is not an exposed step output"
            )
        return record
