"""A simulated network between federation nodes.

In-process replacement for Celery/RabbitMQ: a send is a synchronous call into
the receiving node's handler.  The transport still behaves like a network
where it matters for the reproduction:

- traffic is metered (messages, payload bytes) per link,
- a latency model accumulates *simulated* wall time (per-message latency plus
  bytes over bandwidth), so benchmarks can report modeled network cost,
- failure injection: nodes can be marked down, or links given a drop
  probability, raising :class:`NodeUnavailableError` like a timeout would.
"""

from __future__ import annotations

import pickle
import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import FederationError, NodeUnavailableError
from repro.federation.messages import Message

Handler = Callable[[Message], dict[str, Any]]


@dataclass
class TransportStats:
    """Aggregate traffic counters."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.simulated_seconds = 0.0


class Transport:
    """Registry of node handlers plus the simulated network model."""

    def __init__(
        self,
        latency_seconds: float = 0.0005,
        bandwidth_bytes_per_second: float = 1.25e8,
        drop_probability: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if not 0 <= drop_probability <= 1:
            raise FederationError("drop probability must be in [0, 1]")
        self.latency_seconds = latency_seconds
        self.bandwidth = bandwidth_bytes_per_second
        self.drop_probability = drop_probability
        self._rng = random.Random(seed)
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self.stats = TransportStats()
        self.link_stats: dict[tuple[str, str], TransportStats] = defaultdict(TransportStats)

    def register(self, node_id: str, handler: Handler) -> None:
        if node_id in self._handlers:
            raise FederationError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler

    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    # ------------------------------------------------------ failure injection

    def set_down(self, node_id: str, down: bool = True) -> None:
        """Mark a node unreachable (simulates a crashed or partitioned node)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    # ---------------------------------------------------------------- sending

    def send(self, sender: str, receiver: str, kind: str, payload: dict[str, Any] | None = None) -> dict[str, Any]:
        """Deliver one message and return the handler's response payload."""
        handler = self._handlers.get(receiver)
        if handler is None:
            raise FederationError(f"unknown node {receiver!r}")
        if receiver in self._down or sender in self._down:
            raise NodeUnavailableError(f"node {receiver!r} is unreachable")
        if self.drop_probability and self._rng.random() < self.drop_probability:
            raise NodeUnavailableError(
                f"message {kind!r} from {sender!r} to {receiver!r} was dropped"
            )
        message = Message(sender, receiver, kind, payload or {})
        size = _payload_size(message.payload)
        self._account(sender, receiver, size)
        response = handler(message)
        if response is None:
            response = {}
        self._account(receiver, sender, _payload_size(response))
        return response

    def _account(self, sender: str, receiver: str, size: int) -> None:
        elapsed = self.latency_seconds + size / self.bandwidth
        self.stats.messages += 1
        self.stats.bytes_sent += size
        self.stats.simulated_seconds += elapsed
        link = self.link_stats[(sender, receiver)]
        link.messages += 1
        link.bytes_sent += size
        link.simulated_seconds += elapsed


def _payload_size(payload: Any) -> int:
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - size metering must never break a send
        return 1024
