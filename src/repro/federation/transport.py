"""A simulated network between federation nodes.

In-process replacement for Celery/RabbitMQ: a send is a synchronous call into
the receiving node's handler.  The transport still behaves like a network
where it matters for the reproduction:

- traffic is metered (messages, payload bytes) per link,
- a latency model accumulates *simulated* wall time (per-message latency plus
  bytes over bandwidth), so benchmarks can report modeled network cost,
- failure injection: nodes can be marked down, or links given a drop
  probability, raising :class:`NodeUnavailableError` like a timeout would,
- fault tolerance: a :class:`~repro.federation.policy.RetryPolicy` retries
  transient failures with exponential backoff + jitter and enforces a
  per-message deadline over the *simulated* clock.  Drop decisions and
  jitter units for every attempt are pre-drawn from the seeded RNG in
  request order before dispatch, so a seed fully determines which attempts
  fail, how many retries happen, and what the flow ultimately sees — at any
  fan-out width.  A message is dropped before delivery (a lost request),
  so a retry never re-executes a handler that already ran.

The production platform dispatches tasks to workers through a concurrent
task queue, so the master's fan-outs overlap.  :meth:`Transport.send_many`
and :meth:`Transport.broadcast` reproduce that: a shared thread pool
dispatches to every destination at once, each destination's handler is
serialized by a per-node lock (one mailbox per node), and the simulated
clock charges the *max* over a parallel group instead of the sum.  Setting
``max_workers=1`` (or ``REPRO_FEDERATION_PARALLELISM=1``) restores fully
sequential dispatch, including the summed clock, for debugging and A/B
benchmarking.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import pickle
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.errors import (
    FederationError,
    FederationTimeoutError,
    NodeUnavailableError,
    is_transient,
)
from repro.federation.messages import Message
from repro.federation.policy import RetryPolicy
from repro.federation.serialization import payload_elements
from repro.observability import profiler as profiler_mod
from repro.observability.trace import tracer
from repro.simtest import hooks as sim_hooks

Handler = Callable[[Message], dict[str, Any]]

#: Environment knob for the fan-out width; explicit ``max_workers`` wins.
PARALLELISM_ENV = "REPRO_FEDERATION_PARALLELISM"

#: Upper bound on the shared pool, matching common task-queue defaults.
MAX_POOL_SIZE = 32

#: A (receiver, kind, payload) triple for :meth:`Transport.send_many`.
Request = tuple[str, str, "dict[str, Any] | None"]

#: The job id traffic in the current execution context is attributed to.
#: Set by :func:`job_scope` in the thread driving an experiment; captured at
#: the top of :meth:`Transport.send` / :meth:`Transport.send_many` (the
#: caller's thread) and passed explicitly into pool threads, so per-job
#: attribution is exact at any fan-out width.
_CURRENT_JOB: contextvars.ContextVar["str | None"] = contextvars.ContextVar(
    "repro_transport_job", default=None
)


@contextlib.contextmanager
def job_scope(job_id: str) -> Iterator[None]:
    """Attribute all transport traffic in this context to ``job_id``.

    The scope also binds the calling thread in the sampling profiler's
    attribution registry, so a profile taken across concurrent experiments
    can be filtered down to this job's samples.
    """
    token = _CURRENT_JOB.set(job_id)
    profile_token = profiler_mod.bind_current_thread(job_id)
    try:
        yield
    finally:
        profiler_mod.unbind_thread(profile_token)
        _CURRENT_JOB.reset(token)


def current_job() -> str | None:
    """The job id the calling context attributes traffic to, if any."""
    return _CURRENT_JOB.get()


@dataclass
class TransportStats:
    """Aggregate traffic counters.

    Mutation happens only under the owning transport's stats lock; reads
    from other threads are tear-free in CPython but callers wanting a
    consistent multi-field view should use :meth:`Transport.snapshot`.
    """

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0
    retries: int = 0
    failed_sends: int = 0
    #: Table cells carried by metered payloads (both wire formats).
    payload_elements: int = 0

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.simulated_seconds = 0.0
        self.retries = 0
        self.failed_sends = 0
        self.payload_elements = 0

    def copy(self) -> "TransportStats":
        """An independent copy; mutating it never touches live counters."""
        return TransportStats(
            self.messages,
            self.bytes_sent,
            self.simulated_seconds,
            self.retries,
            self.failed_sends,
            self.payload_elements,
        )


class FanoutResult(list):
    """``send_many(on_error="skip")`` result: successes in request order.

    ``failed`` maps each skipped receiver to the error that exhausted it, so
    callers can evict exactly the nodes that were lost.
    """

    def __init__(self, results: Sequence[Any], failed: "dict[str, FederationError]") -> None:
        super().__init__(results)
        self.failed = failed


class BroadcastResult(dict):
    """``broadcast`` responses keyed by receiver, plus the skipped failures.

    A plain dict (existing callers are unaffected) with a ``failed`` mapping
    of receiver -> error for receivers dropped by ``on_error="skip"``.
    """

    def __init__(
        self,
        responses: "dict[str, dict[str, Any]]",
        failed: "dict[str, FederationError] | None" = None,
    ) -> None:
        super().__init__(responses)
        self.failed = failed or {}


@dataclass(frozen=True)
class _Schedule:
    """Pre-drawn randomness for one logical send: one drop decision per
    attempt plus one jitter unit per potential backoff."""

    drops: tuple[bool, ...]
    jitters: tuple[float, ...]


def _resolve_parallelism(explicit: int | None, n_nodes: int) -> int:
    """Fan-out width: explicit arg, else env var, else min(32, n_nodes)."""
    if explicit is not None:
        return max(1, explicit)
    env = os.environ.get(PARALLELISM_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise FederationError(
                f"{PARALLELISM_ENV} must be an integer, got {env!r}"
            ) from None
    return max(1, min(MAX_POOL_SIZE, n_nodes))


class Transport:
    """Registry of node handlers plus the simulated network model."""

    def __init__(
        self,
        latency_seconds: float = 0.0005,
        bandwidth_bytes_per_second: float = 1.25e8,
        drop_probability: float = 0.0,
        seed: int | None = None,
        max_workers: int | None = None,
        sleep_latency: bool = False,
        retry: RetryPolicy | None = None,
    ) -> None:
        if not 0 <= drop_probability <= 1:
            raise FederationError("drop probability must be in [0, 1]")
        if max_workers is not None and max_workers < 1:
            raise FederationError("max_workers must be >= 1")
        self.latency_seconds = latency_seconds
        self.bandwidth = bandwidth_bytes_per_second
        self.drop_probability = drop_probability
        self.max_workers = max_workers
        #: Per-send retry/backoff/deadline policy; the default retries never.
        self.retry = retry or RetryPolicy()
        #: When True the modeled elapsed time of every message is actually
        #: slept, so wall-clock behavior matches a deployment where workers
        #: are separate machines (used by the scaling benchmarks).
        self.sleep_latency = sleep_latency
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._handlers: dict[str, Handler] = {}
        self._node_locks: dict[str, threading.Lock] = {}
        self._down: set[str] = set()
        self._stats_lock = threading.Lock()
        self.stats = TransportStats()
        self.link_stats: dict[tuple[str, str], TransportStats] = {}
        # Per-job counters: traffic sent inside a job_scope() is additionally
        # charged to that job's meter, so overlapping experiments each see
        # exactly their own usage (the global counters keep the fleet view).
        self._job_stats: dict[str, TransportStats] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._executor_width = 0
        #: How many experiments may fan out at once; sizes the shared pool.
        self._concurrent_jobs = 1
        self._executor_lock = threading.Lock()

    def register(self, node_id: str, handler: Handler) -> None:
        if node_id in self._handlers:
            raise FederationError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler
        self._node_locks[node_id] = threading.Lock()

    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    @property
    def parallelism(self) -> int:
        """The effective fan-out width for group sends."""
        return _resolve_parallelism(self.max_workers, len(self._handlers))

    def snapshot(self) -> TransportStats:
        """A consistent copy of the aggregate counters."""
        with self._stats_lock:
            return self.stats.copy()

    def job_stats(self, job_id: str) -> TransportStats:
        """A consistent copy of one job's traffic counters (zeros if unseen)."""
        with self._stats_lock:
            stats = self._job_stats.get(job_id)
            return stats.copy() if stats is not None else TransportStats()

    def drop_job_stats(self, job_id: str) -> None:
        """Forget a finished job's meter (attribution lives in its result)."""
        with self._stats_lock:
            self._job_stats.pop(job_id, None)

    def _job_meter(self, job_id: str | None) -> TransportStats | None:
        """The live per-job meter; callers must hold the stats lock."""
        if job_id is None:
            return None
        meter = self._job_stats.get(job_id)
        if meter is None:
            meter = self._job_stats[job_id] = TransportStats()
        return meter

    def link_snapshot(self) -> dict[tuple[str, str], TransportStats]:
        """Deep copies of the per-link counters.

        ``link_stats`` itself holds the live objects (mutated under the
        stats lock); handing those to callers would let them corrupt the
        lock-free read path, so accessors copy.
        """
        with self._stats_lock:
            return {link: stats.copy() for link, stats in self.link_stats.items()}

    # ------------------------------------------------------ failure injection

    def set_down(self, node_id: str, down: bool = True) -> None:
        """Mark a node unreachable (simulates a crashed or partitioned node)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    # ---------------------------------------------------------------- sending

    def send(self, sender: str, receiver: str, kind: str, payload: dict[str, Any] | None = None) -> dict[str, Any]:
        """Deliver one message (with retries) and return the response payload."""
        job = current_job()
        with tracer.span("transport.send", receiver=receiver, kind=kind) as span:
            outcome, elapsed = self._run_schedule(
                sender, receiver, kind, payload, self._draw_schedule(), span, job
            )
        with self._stats_lock:
            self.stats.simulated_seconds += elapsed
            meter = self._job_meter(job)
            if meter is not None:
                meter.simulated_seconds += elapsed
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def send_many(
        self,
        sender: str,
        requests: Sequence[Request],
        on_error: str = "raise",
    ) -> list[Any]:
        """Deliver a group of messages concurrently; results in request order.

        ``on_error`` selects the failure policy once every attempt finished
        (a failing destination never aborts or deadlocks the rest):

        - ``"raise"``: re-raise the first error in *request* order,
        - ``"return"``: the result slot holds the exception instead,
        - ``"skip"``: drop unavailable receivers from the result; the
          returned :class:`FanoutResult` records them in ``.failed`` so
          callers can evict exactly the nodes that were lost.  Errors other
          than unavailability still raise.

        Drop-probability decisions and backoff jitter are drawn from the
        seeded RNG in request order *before* dispatch, so failure injection
        and retries stay deterministic regardless of thread scheduling.  The
        simulated clock charges ``max()`` over the group (the sends overlap,
        including their backoff waits); with an effective parallelism of 1
        dispatch is sequential and the clock sums, exactly like
        per-destination loops.
        """
        if on_error not in ("raise", "return", "skip"):
            raise FederationError(f"unknown on_error policy {on_error!r}")
        if not requests:
            return FanoutResult([], {}) if on_error == "skip" else []
        job = current_job()
        schedules = [self._draw_schedule() for _ in requests]
        width = min(self.parallelism, len(requests))
        # The group span is opened in the caller's thread and handed to every
        # pool thread explicitly, so per-worker send spans stay children of
        # the fan-out even though thread-local stacks do not cross threads.
        group_span = tracer.span(
            "transport.fanout", n=len(requests), kind=requests[0][1], width=width
        )

        def attempt(index: int) -> tuple[Any, float]:
            receiver, kind, payload = requests[index]
            # Pool threads work on the job's behalf for the duration of one
            # send; bind them so profiler samples attribute correctly.
            profile_token = (
                profiler_mod.bind_current_thread(job) if job is not None else None
            )
            try:
                with tracer.span(
                    "transport.send", parent=group_span, receiver=receiver, kind=kind
                ) as span:
                    return self._run_schedule(
                        sender, receiver, kind, payload, schedules[index], span, job
                    )
            finally:
                profiler_mod.unbind_thread(profile_token)

        sim = sim_hooks.current()
        with group_span:
            if width <= 1:
                outcomes = [attempt(i) for i in range(len(requests))]
                clock = sum(elapsed for _, elapsed in outcomes)
            elif sim is not None:
                # Simulation mode: the group still *models* parallel dispatch
                # (max-clock), but runs sequentially in a seeded order with
                # scheduler yields between sends, so the interleaving is a
                # pure function of the simulation seed and no pool threads
                # exist.
                outcomes = sim.run_fanout(len(requests), attempt)
                clock = max(elapsed for _, elapsed in outcomes)
            else:
                executor = self._ensure_executor()
                outcomes = list(executor.map(attempt, range(len(requests))))
                clock = max(elapsed for _, elapsed in outcomes)
        with self._stats_lock:
            self.stats.simulated_seconds += clock
            meter = self._job_meter(job)
            if meter is not None:
                meter.simulated_seconds += clock
        results = [outcome for outcome, _ in outcomes]
        if on_error == "raise":
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        elif on_error == "skip":
            kept: list[Any] = []
            failed: dict[str, FederationError] = {}
            for (receiver, _kind, _payload), result in zip(requests, results):
                if isinstance(result, NodeUnavailableError):
                    failed[receiver] = result
                elif isinstance(result, BaseException):
                    raise result
                else:
                    kept.append(result)
            return FanoutResult(kept, failed)
        return results

    def broadcast(
        self,
        sender: str,
        receivers: Sequence[str],
        kind: str,
        payload: dict[str, Any] | None = None,
        on_error: str = "raise",
    ) -> BroadcastResult:
        """Send one message to many receivers; returns {receiver: response}.

        ``on_error="skip"`` drops unreachable receivers from the result (the
        catalog-refresh / cleanup policy) and records them in the returned
        :class:`BroadcastResult`'s ``.failed`` mapping; other policies as in
        :meth:`send_many`.
        """
        skip = on_error == "skip"
        results = self.send_many(
            sender,
            [(receiver, kind, payload) for receiver in receivers],
            on_error="return" if skip else on_error,
        )
        responses: dict[str, dict[str, Any]] = {}
        failed: dict[str, FederationError] = {}
        for receiver, result in zip(receivers, results):
            if isinstance(result, NodeUnavailableError) and skip:
                failed[receiver] = result
                continue
            if isinstance(result, BaseException):
                raise result
            responses[receiver] = result
        return BroadcastResult(responses, failed)

    # -------------------------------------------------------------- internals

    def _draw_schedule(self) -> _Schedule:
        """Pre-draw one send's randomness (drops + jitter) in request order.

        With the default policy (one attempt) and a lossless link this
        consumes no RNG state at all; with ``drop_probability`` set it
        consumes exactly one draw per attempt, keeping legacy seeds stable
        for single-attempt transports.
        """
        attempts = self.retry.max_attempts
        if not self.drop_probability and attempts == 1:
            return _Schedule((False,), ())
        with self._rng_lock:
            if self.drop_probability:
                drops = tuple(
                    self._rng.random() < self.drop_probability for _ in range(attempts)
                )
            else:
                drops = (False,) * attempts
            if attempts > 1 and self.retry.jitter > 0:
                jitters = tuple(self._rng.random() for _ in range(attempts - 1))
            else:
                jitters = (0.5,) * (attempts - 1)
        return _Schedule(drops, jitters)

    def _run_schedule(
        self,
        sender: str,
        receiver: str,
        kind: str,
        payload: dict[str, Any] | None,
        schedule: _Schedule,
        span=None,
        job: str | None = None,
    ) -> tuple[Any, float]:
        """One logical send: attempts + backoff under the retry policy.

        Returns ``(response | exception, simulated seconds)``; never raises,
        so group dispatch can account the elapsed time of failures too.
        Transient errors are retried until the schedule or the deadline runs
        out; permanent errors (handler exceptions, unknown nodes) surface
        immediately.  When tracing, ``span`` records the retry count and the
        final outcome.
        """
        if span is None:
            from repro.observability.trace import NULL_SPAN

            span = NULL_SPAN
        policy = self.retry
        deadline = policy.deadline_seconds
        total = 0.0
        for attempt, dropped in enumerate(schedule.drops):
            try:
                response, elapsed = self._send_one(
                    sender, receiver, kind, payload, dropped, job
                )
            except Exception as exc:  # noqa: BLE001 - classified below
                if not is_transient(exc):
                    self._record_failed_send(job)
                    span.set_error(f"{type(exc).__name__}: {exc}")
                    return exc, total
                # A failed attempt still costs its timeout detection.
                total += self.latency_seconds
                final = attempt + 1 == len(schedule.drops)
                if final:
                    self._record_failed_send(job)
                    span.set_attribute("retries", attempt)
                    span.set_error(f"{type(exc).__name__}: {exc}")
                    return exc, total
                delay = policy.backoff_delay(attempt, schedule.jitters[attempt])
                if deadline is not None and total + delay >= deadline:
                    self._record_failed_send(job)
                    timeout = FederationTimeoutError(
                        f"send {kind!r} to {receiver!r} exceeded its {deadline}s "
                        f"deadline after {attempt + 1} attempts"
                    )
                    timeout.__cause__ = exc
                    span.set_attribute("retries", attempt)
                    span.set_error(f"FederationTimeoutError: {timeout}")
                    return timeout, total
                total += delay
                with self._stats_lock:
                    self.stats.retries += 1
                    meter = self._job_meter(job)
                    if meter is not None:
                        meter.retries += 1
                continue
            total += elapsed
            if attempt:
                span.set_attribute("retries", attempt)
            if deadline is not None and total > deadline:
                self._record_failed_send(job)
                timeout = FederationTimeoutError(
                    f"response for {kind!r} from {receiver!r} arrived after "
                    f"the {deadline}s deadline"
                )
                span.set_error(f"FederationTimeoutError: {timeout}")
                return timeout, total
            return response, total
        raise AssertionError("unreachable: schedule always resolves")

    def _record_failed_send(self, job: str | None = None) -> None:
        with self._stats_lock:
            self.stats.failed_sends += 1
            meter = self._job_meter(job)
            if meter is not None:
                meter.failed_sends += 1

    def reserve_fanout_slots(self, concurrent_jobs: int) -> None:
        """Size the shared fan-out pool for overlapping experiments.

        One experiment needs ``parallelism`` pool threads for a full-width
        fan-out; ``concurrent_jobs`` experiments dispatching at once need that
        many times over, or their (really slept, under ``sleep_latency``)
        sends queue behind each other and concurrency buys nothing.  The
        experiment queue calls this with its executor-pool size.  An existing
        smaller pool is retired (its in-flight work finishes on the old
        threads) and lazily replaced by a wider one.
        """
        with self._executor_lock:
            self._concurrent_jobs = max(self._concurrent_jobs, concurrent_jobs)
            if self._executor is not None and self._executor_width < self._pool_width():
                old = self._executor
                self._executor = None
                old.shutdown(wait=False)

    def _pool_width(self) -> int:
        return min(
            MAX_POOL_SIZE, max(2, self.parallelism) * max(1, self._concurrent_jobs)
        )

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor_width = self._pool_width()
                self._executor = ThreadPoolExecutor(
                    max_workers=self._executor_width,
                    thread_name_prefix="transport",
                )
            return self._executor

    def shutdown(self, wait: bool = True) -> None:
        """Retire the fan-out pool; a later group send lazily recreates it.

        Gives tests and short-lived embedders a deterministic way to reap
        the pool's (non-daemon) threads instead of waiting for GC.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def _send_one(
        self,
        sender: str,
        receiver: str,
        kind: str,
        payload: dict[str, Any] | None,
        dropped: bool,
        job: str | None = None,
    ) -> tuple[dict[str, Any], float]:
        """One request/response exchange; returns (response, simulated s)."""
        handler = self._handlers.get(receiver)
        if handler is None:
            raise FederationError(f"unknown node {receiver!r}")
        extra = 0.0
        sim = sim_hooks.current()
        if sim is not None:
            # Fault injection gate: counts this delivery attempt and may
            # force a drop, add simulated delay, or crash/revive a node
            # (the down-check below then sees the new reachability).  No
            # scheduler yield happens in here — a send runs atomically.
            forced_drop, extra = sim.on_delivery(self, sender, receiver, kind)
            if forced_drop:
                raise NodeUnavailableError(
                    f"message {kind!r} from {sender!r} to {receiver!r} was "
                    "dropped (injected fault)"
                )
        if receiver in self._down or sender in self._down:
            raise NodeUnavailableError(f"node {receiver!r} is unreachable")
        if dropped:
            raise NodeUnavailableError(
                f"message {kind!r} from {sender!r} to {receiver!r} was dropped"
            )
        message = Message(sender, receiver, kind, payload or {})
        size = _payload_size(message.payload)
        elapsed = self._account(
            sender, receiver, size, job, payload_elements(message.payload)
        )
        node_lock = self._node_locks[receiver]
        with node_lock:
            response = handler(message)
        if response is None:
            response = {}
        elapsed += self._account(
            receiver, sender, _payload_size(response), job, payload_elements(response)
        )
        elapsed += extra
        if self.sleep_latency and elapsed > 0:
            time.sleep(elapsed)
        return response, elapsed

    def _account(
        self,
        sender: str,
        receiver: str,
        size: int,
        job: str | None = None,
        elements: int = 0,
    ) -> float:
        """Meter one message; returns its modeled elapsed seconds.

        The *global* simulated clock is charged by the caller (sum for
        sequential sends, max over a parallel group); per-link clocks always
        sum because each link carries its messages back to back.
        """
        elapsed = self.latency_seconds + size / self.bandwidth
        with self._stats_lock:
            self.stats.messages += 1
            self.stats.bytes_sent += size
            self.stats.payload_elements += elements
            link = self.link_stats.get((sender, receiver))
            if link is None:
                link = self.link_stats[(sender, receiver)] = TransportStats()
            link.messages += 1
            link.bytes_sent += size
            link.simulated_seconds += elapsed
            link.payload_elements += elements
            meter = self._job_meter(job)
            if meter is not None:
                meter.messages += 1
                meter.bytes_sent += size
                meter.payload_elements += elements
        return elapsed


def _payload_size(payload: Any) -> int:
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - size metering must never break a send
        return 1024
