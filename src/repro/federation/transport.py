"""A simulated network between federation nodes.

In-process replacement for Celery/RabbitMQ: a send is a synchronous call into
the receiving node's handler.  The transport still behaves like a network
where it matters for the reproduction:

- traffic is metered (messages, payload bytes) per link,
- a latency model accumulates *simulated* wall time (per-message latency plus
  bytes over bandwidth), so benchmarks can report modeled network cost,
- failure injection: nodes can be marked down, or links given a drop
  probability, raising :class:`NodeUnavailableError` like a timeout would.

The production platform dispatches tasks to workers through a concurrent
task queue, so the master's fan-outs overlap.  :meth:`Transport.send_many`
and :meth:`Transport.broadcast` reproduce that: a shared thread pool
dispatches to every destination at once, each destination's handler is
serialized by a per-node lock (one mailbox per node), and the simulated
clock charges the *max* over a parallel group instead of the sum.  Setting
``max_workers=1`` (or ``REPRO_FEDERATION_PARALLELISM=1``) restores fully
sequential dispatch, including the summed clock, for debugging and A/B
benchmarking.
"""

from __future__ import annotations

import os
import pickle
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import FederationError, NodeUnavailableError
from repro.federation.messages import Message

Handler = Callable[[Message], dict[str, Any]]

#: Environment knob for the fan-out width; explicit ``max_workers`` wins.
PARALLELISM_ENV = "REPRO_FEDERATION_PARALLELISM"

#: Upper bound on the shared pool, matching common task-queue defaults.
MAX_POOL_SIZE = 32

#: A (receiver, kind, payload) triple for :meth:`Transport.send_many`.
Request = tuple[str, str, "dict[str, Any] | None"]


@dataclass
class TransportStats:
    """Aggregate traffic counters.

    Mutation happens only under the owning transport's stats lock; reads
    from other threads are tear-free in CPython but callers wanting a
    consistent multi-field view should use :meth:`Transport.snapshot`.
    """

    messages: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0

    def reset(self) -> None:
        self.messages = 0
        self.bytes_sent = 0
        self.simulated_seconds = 0.0


def _resolve_parallelism(explicit: int | None, n_nodes: int) -> int:
    """Fan-out width: explicit arg, else env var, else min(32, n_nodes)."""
    if explicit is not None:
        return max(1, explicit)
    env = os.environ.get(PARALLELISM_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise FederationError(
                f"{PARALLELISM_ENV} must be an integer, got {env!r}"
            ) from None
    return max(1, min(MAX_POOL_SIZE, n_nodes))


class Transport:
    """Registry of node handlers plus the simulated network model."""

    def __init__(
        self,
        latency_seconds: float = 0.0005,
        bandwidth_bytes_per_second: float = 1.25e8,
        drop_probability: float = 0.0,
        seed: int | None = None,
        max_workers: int | None = None,
        sleep_latency: bool = False,
    ) -> None:
        if not 0 <= drop_probability <= 1:
            raise FederationError("drop probability must be in [0, 1]")
        if max_workers is not None and max_workers < 1:
            raise FederationError("max_workers must be >= 1")
        self.latency_seconds = latency_seconds
        self.bandwidth = bandwidth_bytes_per_second
        self.drop_probability = drop_probability
        self.max_workers = max_workers
        #: When True the modeled elapsed time of every message is actually
        #: slept, so wall-clock behavior matches a deployment where workers
        #: are separate machines (used by the scaling benchmarks).
        self.sleep_latency = sleep_latency
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._handlers: dict[str, Handler] = {}
        self._node_locks: dict[str, threading.Lock] = {}
        self._down: set[str] = set()
        self._stats_lock = threading.Lock()
        self.stats = TransportStats()
        self.link_stats: dict[tuple[str, str], TransportStats] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()

    def register(self, node_id: str, handler: Handler) -> None:
        if node_id in self._handlers:
            raise FederationError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler
        self._node_locks[node_id] = threading.Lock()

    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    @property
    def parallelism(self) -> int:
        """The effective fan-out width for group sends."""
        return _resolve_parallelism(self.max_workers, len(self._handlers))

    def snapshot(self) -> TransportStats:
        """A consistent copy of the aggregate counters."""
        with self._stats_lock:
            return TransportStats(
                self.stats.messages, self.stats.bytes_sent, self.stats.simulated_seconds
            )

    # ------------------------------------------------------ failure injection

    def set_down(self, node_id: str, down: bool = True) -> None:
        """Mark a node unreachable (simulates a crashed or partitioned node)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    # ---------------------------------------------------------------- sending

    def send(self, sender: str, receiver: str, kind: str, payload: dict[str, Any] | None = None) -> dict[str, Any]:
        """Deliver one message and return the handler's response payload."""
        response, elapsed = self._send_one(sender, receiver, kind, payload, self._draw_drop())
        with self._stats_lock:
            self.stats.simulated_seconds += elapsed
        return response

    def send_many(
        self,
        sender: str,
        requests: Sequence[Request],
        on_error: str = "raise",
    ) -> list[Any]:
        """Deliver a group of messages concurrently; results in request order.

        ``on_error`` selects the failure policy once every attempt finished
        (a failing destination never aborts or deadlocks the rest):

        - ``"raise"``: re-raise the first error in *request* order,
        - ``"return"``: the result slot holds the exception instead.

        Drop-probability decisions are drawn from the seeded RNG in request
        order *before* dispatch, so failure injection stays deterministic
        regardless of thread scheduling.  The simulated clock charges
        ``max()`` over the group (the sends overlap); with an effective
        parallelism of 1 dispatch is sequential and the clock sums, exactly
        like today's per-destination loops.
        """
        if on_error not in ("raise", "return"):
            raise FederationError(f"unknown on_error policy {on_error!r}")
        if not requests:
            return []
        drops = [self._draw_drop() for _ in requests]
        width = min(self.parallelism, len(requests))

        def attempt(index: int) -> tuple[Any, float]:
            receiver, kind, payload = requests[index]
            try:
                return self._send_one(sender, receiver, kind, payload, drops[index])
            except Exception as exc:  # noqa: BLE001 - propagated per policy
                return exc, 0.0

        if width <= 1:
            outcomes = [attempt(i) for i in range(len(requests))]
            clock = sum(elapsed for _, elapsed in outcomes)
        else:
            executor = self._ensure_executor()
            outcomes = list(executor.map(attempt, range(len(requests))))
            clock = max(elapsed for _, elapsed in outcomes)
        with self._stats_lock:
            self.stats.simulated_seconds += clock
        results = [outcome for outcome, _ in outcomes]
        if on_error == "raise":
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return results

    def broadcast(
        self,
        sender: str,
        receivers: Sequence[str],
        kind: str,
        payload: dict[str, Any] | None = None,
        on_error: str = "raise",
    ) -> dict[str, dict[str, Any]]:
        """Send one message to many receivers; returns {receiver: response}.

        ``on_error="skip"`` drops unreachable receivers from the result (the
        catalog-refresh / cleanup policy); other policies as in
        :meth:`send_many`.
        """
        skip = on_error == "skip"
        results = self.send_many(
            sender,
            [(receiver, kind, payload) for receiver in receivers],
            on_error="return" if skip else on_error,
        )
        responses: dict[str, dict[str, Any]] = {}
        for receiver, result in zip(receivers, results):
            if isinstance(result, NodeUnavailableError) and skip:
                continue
            if isinstance(result, BaseException):
                raise result
            responses[receiver] = result
        return responses

    # -------------------------------------------------------------- internals

    def _draw_drop(self) -> bool:
        if not self.drop_probability:
            return False
        with self._rng_lock:
            return self._rng.random() < self.drop_probability

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=min(MAX_POOL_SIZE, max(2, self.parallelism)),
                    thread_name_prefix="transport",
                )
            return self._executor

    def _send_one(
        self,
        sender: str,
        receiver: str,
        kind: str,
        payload: dict[str, Any] | None,
        dropped: bool,
    ) -> tuple[dict[str, Any], float]:
        """One request/response exchange; returns (response, simulated s)."""
        handler = self._handlers.get(receiver)
        if handler is None:
            raise FederationError(f"unknown node {receiver!r}")
        if receiver in self._down or sender in self._down:
            raise NodeUnavailableError(f"node {receiver!r} is unreachable")
        if dropped:
            raise NodeUnavailableError(
                f"message {kind!r} from {sender!r} to {receiver!r} was dropped"
            )
        message = Message(sender, receiver, kind, payload or {})
        size = _payload_size(message.payload)
        elapsed = self._account(sender, receiver, size)
        node_lock = self._node_locks[receiver]
        with node_lock:
            response = handler(message)
        if response is None:
            response = {}
        elapsed += self._account(receiver, sender, _payload_size(response))
        if self.sleep_latency and elapsed > 0:
            time.sleep(elapsed)
        return response, elapsed

    def _account(self, sender: str, receiver: str, size: int) -> float:
        """Meter one message; returns its modeled elapsed seconds.

        The *global* simulated clock is charged by the caller (sum for
        sequential sends, max over a parallel group); per-link clocks always
        sum because each link carries its messages back to back.
        """
        elapsed = self.latency_seconds + size / self.bandwidth
        with self._stats_lock:
            self.stats.messages += 1
            self.stats.bytes_sent += size
            link = self.link_stats.get((sender, receiver))
            if link is None:
                link = self.link_stats[(sender, receiver)] = TransportStats()
            link.messages += 1
            link.bytes_sent += size
            link.simulated_seconds += elapsed
        return elapsed


def _payload_size(payload: Any) -> int:
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001 - size metering must never break a send
        return 1024
