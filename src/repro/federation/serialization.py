"""Table <-> payload serialization for transport messages.

Wire format v2 (``columnar-v1`` tag) ships each table as a dict of typed
value lists plus per-column null masks — one ``.tolist()`` per column
instead of a Python tuple per row, so encode/decode cost scales with the
number of columns, not the number of cells.  ``table_from_payload`` still
decodes the original row-major format for mixed-version deployments.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine.table import ColumnSpec, Schema, Table
from repro.engine.types import SQLType
from repro.errors import FederationError

#: Version tag carried in every columnar payload.  Payloads without a
#: ``format`` key are the legacy row-major format.
COLUMNAR_FORMAT = "columnar-v1"


def table_to_payload(table: Table) -> dict[str, Any]:
    """Serialize a table into the columnar wire format."""
    values: dict[str, list[Any]] = {}
    nulls: dict[str, list[bool]] = {}
    for spec, column in zip(table.schema, table.columns):
        values[spec.name] = column.values.tolist()
        nulls[spec.name] = column.nulls.tolist()
    return {
        "format": COLUMNAR_FORMAT,
        "columns": [(spec.name, spec.sql_type.value) for spec in table.schema],
        "values": values,
        "nulls": nulls,
    }


def table_from_payload(payload: dict[str, Any]) -> Table:
    """Rebuild a table from either wire format (columnar or legacy rows).

    A payload tagged with an unknown ``format`` is rejected loudly: silently
    decoding a future format as legacy rows would corrupt data mid-study.
    """
    declared = payload.get("format")
    if declared is not None and declared != COLUMNAR_FORMAT:
        raise FederationError(
            f"unknown table payload format {declared!r} "
            f"(this node understands {COLUMNAR_FORMAT!r} and legacy rows)"
        )
    specs = [
        ColumnSpec(name, SQLType.from_name(type_name))
        for name, type_name in payload["columns"]
    ]
    schema = Schema(specs)
    if declared == COLUMNAR_FORMAT:
        from repro.engine.column import Column

        columns = []
        for spec in specs:
            array = np.asarray(
                payload["values"][spec.name], dtype=spec.sql_type.numpy_dtype
            )
            mask = np.asarray(payload["nulls"][spec.name], dtype=bool)
            columns.append(Column.from_numpy(spec.sql_type, array, mask))
        return Table(schema, columns)
    return Table.from_rows(schema, payload["rows"])


def payload_elements(payload: Any) -> int:
    """Count the table cells a message payload carries (0 for non-tables).

    Recognizes both wire formats at any nesting depth, so the transport can
    meter element counts without knowing which message kinds ship tables.
    """
    if not isinstance(payload, dict):
        return 0
    if "columns" in payload:
        if payload.get("format") == COLUMNAR_FORMAT:
            return sum(len(column) for column in payload["values"].values())
        if "rows" in payload:
            return len(payload["rows"]) * len(payload["columns"])
    return sum(payload_elements(value) for value in payload.values())
