"""Table <-> payload serialization for transport messages."""

from __future__ import annotations

from typing import Any

from repro.engine.table import ColumnSpec, Schema, Table
from repro.engine.types import SQLType


def table_to_payload(table: Table) -> dict[str, Any]:
    """Serialize a table into a plain-dict wire format."""
    return {
        "columns": [(spec.name, spec.sql_type.value) for spec in table.schema],
        "rows": table.to_rows(),
    }


def table_from_payload(payload: dict[str, Any]) -> Table:
    """Rebuild a table from the wire format."""
    specs = [ColumnSpec(name, SQLType.from_name(type_name)) for name, type_name in payload["columns"]]
    return Table.from_rows(Schema(specs), payload["rows"])
