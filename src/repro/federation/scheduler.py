"""Dataset-aware algorithm shipping.

The Master tracks dataset availability; the scheduler decides *where* each
requested dataset is read so that replicated datasets are counted exactly
once and work spreads across workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import DatasetUnavailableError


@dataclass(frozen=True)
class ShippingPlan:
    """Which datasets each worker reads for one experiment."""

    assignments: dict[str, list[str]]  # worker -> dataset codes

    @property
    def workers(self) -> list[str]:
        return sorted(self.assignments)

    def datasets_for(self, worker: str) -> list[str]:
        return list(self.assignments.get(worker, []))


def plan_shipping(
    availability: Mapping[str, Sequence[str]],
    datasets: Sequence[str],
) -> ShippingPlan:
    """Assign each requested dataset to exactly one holding worker.

    ``availability`` maps dataset code to the workers holding it.  A dataset
    replicated on several workers is assigned to the worker with the fewest
    assignments so far (greedy load balancing); a dataset with no holder
    raises :class:`DatasetUnavailableError`.
    """
    assignments: dict[str, list[str]] = {}
    missing: list[str] = []
    # Process scarce datasets first so load balancing has room to choose.
    ordered = sorted(datasets, key=lambda code: len(availability.get(code, ())))
    for code in ordered:
        holders = list(availability.get(code, ()))
        if not holders:
            missing.append(code)
            continue
        chosen = min(holders, key=lambda worker: len(assignments.get(worker, [])))
        assignments.setdefault(chosen, []).append(code)
    if missing:
        raise DatasetUnavailableError(
            f"datasets {sorted(missing)} are not available on any active worker"
        )
    return ShippingPlan({worker: sorted(codes) for worker, codes in assignments.items()})
