"""Dataset-aware algorithm shipping.

The Master tracks dataset availability; the scheduler decides *where* each
requested dataset is read so that replicated datasets are counted exactly
once and work spreads across workers.  With experiments running concurrently
the balancer also sees the *in-flight* load: datasets currently assigned to
each worker by running experiments (a :class:`WorkerLoad` snapshot), so a
replicated dataset lands on the genuinely least-busy holder rather than the
least-busy holder of this one experiment.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import DatasetUnavailableError


@dataclass(frozen=True)
class ShippingPlan:
    """Which datasets each worker reads for one experiment."""

    assignments: dict[str, list[str]]  # worker -> dataset codes

    @property
    def workers(self) -> list[str]:
        return sorted(self.assignments)

    def datasets_for(self, worker: str) -> list[str]:
        return list(self.assignments.get(worker, []))


class WorkerLoad:
    """Thread-safe tracker of in-flight dataset assignments per worker.

    The experiment runner acquires a plan's assignments when an experiment
    starts executing and releases them when it finishes (success, error or
    cancellation), so concurrent planners balance against what is actually
    running right now.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def acquire(self, assignments: Mapping[str, Sequence[str]]) -> None:
        with self._lock:
            for worker, datasets in assignments.items():
                self._counts[worker] = self._counts.get(worker, 0) + len(datasets)

    def release(self, assignments: Mapping[str, Sequence[str]]) -> None:
        with self._lock:
            for worker, datasets in assignments.items():
                remaining = self._counts.get(worker, 0) - len(datasets)
                if remaining > 0:
                    self._counts[worker] = remaining
                else:
                    self._counts.pop(worker, None)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


def plan_shipping(
    availability: Mapping[str, Sequence[str]],
    datasets: Sequence[str],
    current_load: Mapping[str, int] | None = None,
) -> ShippingPlan:
    """Assign each requested dataset to exactly one holding worker.

    ``availability`` maps dataset code to the workers holding it.  A dataset
    replicated on several workers is assigned to the holder with the fewest
    datasets counting both this plan's assignments so far and the in-flight
    ``current_load`` (greedy load balancing across concurrent experiments);
    a dataset with no holder raises :class:`DatasetUnavailableError`.

    Ties are broken by worker id: holders are considered in sorted order, so
    the plan never depends on the availability map's insertion order.
    """
    load = dict(current_load or {})
    assignments: dict[str, list[str]] = {}
    missing: list[str] = []
    # Process scarce datasets first so load balancing has room to choose;
    # the code tie-break keeps the plan independent of request order.
    ordered = sorted(datasets, key=lambda code: (len(availability.get(code, ())), code))
    for code in ordered:
        holders = sorted(availability.get(code, ()))
        if not holders:
            missing.append(code)
            continue
        chosen = min(
            holders,
            key=lambda worker: len(assignments.get(worker, [])) + load.get(worker, 0),
        )
        assignments.setdefault(chosen, []).append(code)
    if missing:
        raise DatasetUnavailableError(
            f"datasets {sorted(missing)} are not available on any active worker"
        )
    return ShippingPlan({worker: sorted(codes) for worker, codes in assignments.items()})
