"""Federation runtime: Master and Worker nodes over a simulated transport.

The deployment pieces the paper lists (Celery on RabbitMQ, a Quart REST API,
MicroK8s) are replaced by in-process nodes exchanging typed messages through
:class:`~repro.federation.transport.Transport`, which meters traffic, models
latency, and injects failures.  Orchestration semantics are preserved: jobs
carry global unique identifiers, workers execute algorithm steps as generated
SQL UDFs inside their local engine, and only transfers (aggregates) ever
leave a worker.
"""

from repro.federation.controller import Federation, FederationConfig, create_federation
from repro.federation.master import Master
from repro.federation.messages import Message
from repro.federation.transport import Transport, TransportStats
from repro.federation.worker import Worker

__all__ = [
    "Federation",
    "FederationConfig",
    "Master",
    "Message",
    "Transport",
    "TransportStats",
    "Worker",
    "create_federation",
]
