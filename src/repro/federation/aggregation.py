"""Plain (non-secure) aggregation of secure-transfer payloads on the master.

The paper's non-secure path ships local results through remote/merge tables
and "perform[s] the aggregation there" — on the Master, in the clear.  The
operations match the SMPC cluster's exactly (sum, product, min, max,
disjoint union) so an algorithm runs unchanged on either path; only *where*
the aggregation happens differs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import FederationError


def aggregate_plain(transfers: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate per-worker secure-transfer dicts in the clear."""
    if not transfers:
        raise FederationError("cannot aggregate zero transfers")
    keys = list(transfers[0])
    for transfer in transfers[1:]:
        if list(transfer) != keys:
            raise FederationError("workers disagree on transfer keys")
    result: dict[str, Any] = {}
    for key in keys:
        operations = {t[key]["operation"] for t in transfers}
        if len(operations) != 1:
            raise FederationError(f"key {key!r}: conflicting operations")
        operation = operations.pop()
        data = [t[key]["data"] for t in transfers]
        result[key] = _aggregate_one(operation, data)
    return result


def _aggregate_one(operation: str, data: list[Any]) -> Any:
    scalar = not isinstance(data[0], (list, tuple))
    arrays = [np.asarray(d, dtype=np.float64) for d in data]
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise FederationError("transfer shape mismatch across workers")
    stacked = np.stack(arrays)
    if operation == "sum":
        combined = stacked.sum(axis=0)
    elif operation == "product":
        combined = stacked.prod(axis=0)
    elif operation == "min":
        combined = stacked.min(axis=0)
    elif operation == "max":
        combined = stacked.max(axis=0)
    elif operation == "union":
        combined = (stacked.sum(axis=0) > 0).astype(np.int64)
    else:
        raise FederationError(f"unsupported aggregation operation {operation!r}")
    if scalar:
        value = combined.item()
        return int(value) if operation == "union" else float(value)
    if operation == "union":
        return combined.astype(int).tolist()
    return combined.tolist()
