"""The Master node: orchestration, dataset tracking, aggregation paths.

Paper §2, *Master Node*: "The Master node governs the communication with and
among the workers and keeps track of the dataset availability on each worker
for efficient algorithm shipping.  It also orchestrates the algorithm flow
and handles the aggregates returned from the local computations.  Finally, it
is also possible to perform computations locally as well."

Every per-worker loop here fans out through the transport's concurrent
dispatch (:meth:`Transport.send_many` / :meth:`Transport.broadcast`), the
in-process stand-in for the production platform's task queue: local steps,
catalog refreshes, transfer prefetches, secure-share fetches and broadcasts
all overlap across workers instead of accumulating serially.

Worker loss is governed by a :class:`~repro.federation.policy.FailurePolicy`:
under ``on_worker_loss="fail"`` (the default) the first unreachable worker
aborts the flow, exactly the legacy behavior; under ``"degrade"`` each
fan-out drops the lost workers from its result and continues with the
surviving quorum (``min_workers``), raising
:class:`~repro.errors.QuorumError` when too few remain.  A
:class:`~repro.federation.policy.WorkerHealth` circuit breaker tracks
consecutive failures per worker and re-admits a worker the moment it answers
again (e.g. a later catalog ping).
"""

from __future__ import annotations

import contextvars
import json
import threading
from concurrent.futures import Future
from typing import Any, Mapping, Sequence

from repro.engine.database import Database
from repro.errors import (
    DatasetUnavailableError,
    FederationError,
    NodeUnavailableError,
    QuorumError,
)
from repro.federation.policy import FailurePolicy, WorkerHealth
from repro.federation.serialization import table_from_payload
from repro.federation.transport import BroadcastResult, Transport
from repro.observability.audit import AuditLog
from repro.observability.trace import tracer
from repro.smpc.cluster import NoiseSpec, SMPCCluster
from repro.udfgen.decorators import udf_registry
from repro.udfgen.generator import generate_udf_application, run_udf_application

MASTER_ID = "master"
SMPC_ID = "smpc_cluster"


class Master:
    """Coordinator node; owns a global database for global steps."""

    def __init__(
        self,
        transport: Transport,
        worker_ids: Sequence[str],
        smpc_cluster: SMPCCluster | None = None,
        failure_policy: FailurePolicy | None = None,
    ) -> None:
        self.node_id = MASTER_ID
        self.transport = transport
        self.worker_ids = list(worker_ids)
        self.smpc_cluster = smpc_cluster
        self.policy = failure_policy or FailurePolicy()
        self.health = WorkerHealth(self.policy.failure_threshold)
        #: Append-only privacy audit trail of everything this master touched.
        self.audit = AuditLog(MASTER_ID)
        self.database = Database(name=MASTER_ID)
        self.database.set_remote_resolver(self._resolve_remote)
        self._availability: dict[str, dict[str, list[str]]] = {}
        # Monotonic generation counter of the dataset catalog: bumped every
        # time a refresh observes a *different* availability map.  Step
        # fingerprints embed it, so cached plan results die the moment the
        # data landscape shifts.
        self._catalog_epoch = 0
        self._global_outputs: dict[str, str] = {}  # table -> kind
        # Per-job table counters: names like merge_{job}_{n} must not
        # depend on what *other* experiments did concurrently (a shared
        # counter leaks into payload sizes via the table-name digits), so
        # each job id counts its own tables deterministically.
        self._job_counters: dict[str, int] = {}
        self._counter_lock = threading.Lock()
        # The master's database hosts every experiment's global steps;
        # the engine is not safe under concurrent mutation, so global-step
        # execution and table management serialize here.  Worker fan-outs
        # (the expensive, latency-bound part) stay outside this lock.
        self._db_lock = threading.RLock()
        # Transfer tables prefetched by a parallel fan-out, keyed by
        # 'worker/table'; the remote resolver consumes them so resolution at
        # query time needs no further network round trips.
        self._prefetched: dict[str, Any] = {}
        self._prefetch_lock = threading.Lock()

    # ---------------------------------------------------------- catalog/avail

    def refresh_catalog(self) -> dict[str, dict[str, list[str]]]:
        """Poll workers for their datasets; tolerate unreachable workers.

        The poll is one broadcast: every worker answers concurrently, and the
        availability map is assembled in ``worker_ids`` order so the result
        never depends on response timing.
        """
        responses = self.transport.broadcast(
            self.node_id, self.worker_ids, "list_datasets", on_error="skip"
        )
        self._note_broadcast_health(responses)
        availability: dict[str, dict[str, list[str]]] = {}
        for worker in self.worker_ids:
            response = responses.get(worker)
            if response is None:
                continue
            for data_model, codes in response["datasets"].items():
                model_map = availability.setdefault(data_model, {})
                for code in codes:
                    model_map.setdefault(code, []).append(worker)
        if availability != self._availability:
            self._catalog_epoch += 1
        self._availability = availability
        return availability

    @property
    def catalog_epoch(self) -> int:
        """Generation of the dataset catalog (see :meth:`refresh_catalog`)."""
        return self._catalog_epoch

    @property
    def availability(self) -> dict[str, dict[str, list[str]]]:
        if not self._availability:
            self.refresh_catalog()
        return self._availability

    def workers_for(self, data_model: str, datasets: Sequence[str]) -> list[str]:
        """Workers holding at least one of the requested datasets."""
        model_map = self.availability.get(data_model)
        if model_map is None:
            raise DatasetUnavailableError(f"no worker holds data model {data_model!r}")
        chosen: list[str] = []
        missing: list[str] = []
        for code in datasets:
            holders = model_map.get(code)
            if not holders:
                missing.append(code)
                continue
            for worker in holders:
                if worker not in chosen:
                    chosen.append(worker)
        if missing:
            raise DatasetUnavailableError(
                f"datasets {missing} are not available on any active worker"
            )
        return chosen

    def alive_workers(self) -> list[str]:
        """Workers answering a ping right now.

        Pings go to *every* registered worker, including quarantined ones:
        an answer re-admits a worker through the circuit breaker (recovery),
        a miss extends its quarantine.
        """
        responses = self.transport.broadcast(
            self.node_id, self.worker_ids, "ping", on_error="skip"
        )
        self._note_broadcast_health(responses)
        return [worker for worker in self.worker_ids if worker in responses]

    def _note_broadcast_health(self, responses: BroadcastResult) -> None:
        """Feed one skip-broadcast's outcome into the circuit breaker."""
        for worker in self.worker_ids:
            if worker in responses:
                self.health.record_success(worker)
            elif worker in getattr(responses, "failed", {}):
                self.health.record_failure(worker)

    # ------------------------------------------------------- policy dispatch

    def _fan_out(
        self,
        sender: str,
        requests: Sequence[tuple[str, str, dict[str, Any] | None]],
        what: str,
    ) -> tuple[dict[str, dict[str, Any]], dict[str, FederationError]]:
        """One policy-governed fan-out to workers.

        Returns ``(responses, lost)`` keyed by worker (request order).  Under
        ``on_worker_loss="fail"`` any unavailable worker re-raises its error;
        under ``"degrade"`` lost workers are evicted from the result and the
        surviving set is checked against the ``min_workers`` quorum.
        Permanent errors (handler exceptions, validation failures) always
        propagate — degrading only ever swallows unavailability.
        """
        workers = [request[0] for request in requests]
        with tracer.span("master.fan_out", what=what, n=len(workers)) as span:
            results = self.transport.send_many(sender, requests, on_error="return")
            responses: dict[str, dict[str, Any]] = {}
            lost: dict[str, FederationError] = {}
            for worker, result in zip(workers, results):
                if isinstance(result, NodeUnavailableError):
                    lost[worker] = result
                elif isinstance(result, BaseException):
                    raise result
                else:
                    responses[worker] = result
            for worker in responses:
                self.health.record_success(worker)
            for worker in lost:
                self.health.record_failure(worker)
            if lost:
                span.set_attribute("lost", sorted(lost))
                first = next(iter(lost.values()))
                if not self.policy.degrade:
                    raise first
                if len(responses) < self.policy.min_workers:
                    raise QuorumError(
                        f"{what}: only {len(responses)} of {len(workers)} workers "
                        f"reachable; quorum requires {self.policy.min_workers}"
                    ) from first
        return responses, lost

    # ------------------------------------------------------------ local steps

    def run_local_step(
        self,
        job_id: str,
        udf_name: str,
        per_worker_arguments: Mapping[str, Mapping[str, Any]],
    ) -> dict[str, list[dict[str, str]]]:
        """Run one local computation on each named worker, concurrently.

        ``per_worker_arguments`` maps worker id to that worker's argument
        specs.  Returns {worker: [{"table":..., "kind":...}, ...]}.  Under a
        degrading failure policy, workers lost mid-step are simply absent
        from the result (the caller evicts them from the flow); a quorum
        violation raises :class:`~repro.errors.QuorumError`.
        """
        workers = list(per_worker_arguments)
        responses, _lost = self._fan_out(
            self.node_id,
            [
                (
                    worker,
                    "run_udf",
                    {
                        "job_id": job_id,
                        "udf_name": udf_name,
                        "arguments": dict(per_worker_arguments[worker]),
                    },
                )
                for worker in workers
            ],
            what=f"local step {udf_name!r}",
        )
        return {
            worker: responses[worker]["outputs"] for worker in workers if worker in responses
        }

    def run_local_step_async(
        self,
        job_id: str,
        udf_name: str,
        per_worker_arguments: Mapping[str, Mapping[str, Any]],
        parent_span=None,
    ) -> "Future[dict[str, list[dict[str, str]]]]":
        """Non-blocking :meth:`run_local_step`; returns a Future.

        The plan executor drives this to overlap independent local steps of
        one flow on the shared transport fan-out pool.  ``parent_span``, when
        given, is adopted by the dispatch thread so the fan-out's spans stay
        nested under the caller's plan-node span instead of becoming new
        trace roots.
        """
        future: "Future[dict[str, list[dict[str, str]]]]" = Future()
        caller_context = contextvars.copy_context()

        def dispatch() -> None:
            with tracer.adopt(parent_span):
                try:
                    future.set_result(
                        self.run_local_step(job_id, udf_name, per_worker_arguments)
                    )
                except BaseException as error:  # noqa: BLE001 - via the future
                    future.set_exception(error)

        thread = threading.Thread(
            target=caller_context.run,
            args=(dispatch,),
            name=f"local-step-{job_id}",
            daemon=True,
        )
        thread.start()
        return future

    def _next_counter(self, job_id: str) -> int:
        with self._counter_lock:
            value = self._job_counters.get(job_id, 0) + 1
            self._job_counters[job_id] = value
            return value

    # ------------------------------------------------------ aggregation paths

    def gather_transfers_plain(
        self, job_id: str, worker_tables: Mapping[str, str]
    ) -> list[dict[str, Any]]:
        """Non-secure path: remote + merge tables (never materialized).

        The master declares one remote table per worker output and a merge
        table over them; selecting from the merge table pulls each transfer
        through the remote resolver at query time.  The transfers themselves
        are prefetched with one concurrent fan-out, so the query-time
        resolver hits the prefetch instead of issuing serial round trips.

        Under a degrading failure policy, workers lost between their local
        step and this gather are skipped (quorum permitting): the merge
        covers surviving transfers only.
        """
        counter = self._next_counter(job_id)
        ordered = sorted(worker_tables.items())
        with tracer.span("master.plain_gather", job=job_id, n=len(ordered)):
            lost = self._prefetch_tables(ordered)
            if lost:
                ordered = [(worker, table) for worker, table in ordered if worker not in lost]
            merge_name = f"merge_{job_id}_{counter}"
            with self._db_lock:
                self.database.execute(f"CREATE MERGE TABLE {merge_name} (transfer VARCHAR)")
                for index, (worker, table) in enumerate(ordered):
                    remote_name = f"remote_{job_id}_{counter}_{index}"
                    self.database.execute(
                        f"CREATE REMOTE TABLE {remote_name} (transfer VARCHAR) ON '{worker}/{table}'"
                    )
                    self.database.execute(f"ALTER TABLE {merge_name} ADD TABLE {remote_name}")
                merged = self.database.query(f"SELECT * FROM {merge_name}")
        self.audit.record(
            "plain_aggregate",
            job_id=job_id,
            workers=[worker for worker, _table in ordered],
            dropped=sorted(lost),
        )
        return [json.loads(blob) for blob in merged.column("transfer").to_list()]

    def _prefetch_tables(self, worker_tables: Sequence[tuple[str, str]]) -> set[str]:
        """Fetch several workers' transfer tables in one parallel fan-out.

        Returns the workers lost during the fetch (empty unless the failure
        policy degrades).
        """
        responses, lost = self._fan_out(
            self.node_id,
            [
                (worker, "fetch_table", {"table": table})
                for worker, table in worker_tables
            ],
            what="transfer prefetch",
        )
        with self._prefetch_lock:
            for worker, table in worker_tables:
                if worker in responses:
                    self._prefetched[f"{worker}/{table}"] = responses[worker]["table"]
        return set(lost)

    def gather_transfers_secure(
        self,
        job_id: str,
        worker_tables: Mapping[str, str],
        noise: NoiseSpec | None = None,
    ) -> dict[str, Any]:
        """Secure path: signal the SMPC cluster to import and aggregate.

        The share payloads are fetched from all workers concurrently; the
        cluster then imports them in sorted worker order (imports mutate
        protocol state, so they stay sequential and deterministic).

        Under a degrading failure policy a worker lost before its payload
        was fetched is dropped from the job — its shares never enter the
        cluster, and the survivors' payloads are freshly secret-shared, so
        the aggregate is a valid sharing over exactly the surviving quorum.
        If the cluster already holds a partial contribution for a lost
        worker (an earlier retried import), it is discarded before
        aggregation so the result can never mix a dead worker's data in.

        Returns the single aggregated transfer dict (key -> aggregated data).
        """
        if self.smpc_cluster is None:
            raise FederationError("no SMPC cluster is configured")
        ordered = sorted(worker_tables.items())
        with tracer.span("master.secure_gather", job=job_id, n=len(ordered)):
            responses, lost = self._fan_out(
                SMPC_ID,
                [(worker, "get_secure_payload", {"table": table}) for worker, table in ordered],
                what="secure-share fetch",
            )
            for worker in lost:
                self.smpc_cluster.drop_worker(job_id, worker)
            for worker, _table in ordered:
                if worker in responses:
                    self.smpc_cluster.import_shares(
                        job_id, worker, responses[worker]["payload"]
                    )
            try:
                aggregated = self.smpc_cluster.aggregate(job_id, noise=noise)
            except Exception:
                self.smpc_cluster.abort_job(job_id)
                raise
        self.audit.record(
            "secure_aggregate",
            job_id=job_id,
            workers=sorted(responses),
            dropped=sorted(lost),
            keys=sorted(aggregated),
        )
        return {key: value for key, value in aggregated.items()}

    # ----------------------------------------------------------- global steps

    def run_global_step(
        self, job_id: str, udf_name: str, arguments: Mapping[str, Any]
    ) -> list[dict[str, str]]:
        """Run a global computation step on the master's own engine."""
        spec = udf_registry.get(udf_name)
        with self._db_lock:
            application = generate_udf_application(spec, f"{job_id}_global", dict(arguments))
            run_udf_application(self.database, application)
            outputs = []
            for table, iotype in zip(application.output_tables, application.output_kinds):
                self._global_outputs[table] = iotype.kind
                outputs.append({"table": table, "kind": iotype.kind})
        return outputs

    def store_global_transfer(self, job_id: str, data: Mapping[str, Any]) -> str:
        """Materialize an aggregated dict as a transfer table on the master."""
        counter = self._next_counter(job_id)
        table = f"transfer_{job_id}_{counter}"
        blob = json.dumps(dict(data)).replace("'", "''")
        with self._db_lock:
            self.database.execute(f"CREATE TABLE {table} (transfer VARCHAR)")
            self.database.execute(f"INSERT INTO {table} VALUES ('{blob}')")
            self._global_outputs[table] = "transfer"
        return table

    def read_transfer(self, table: str) -> dict[str, Any]:
        """Read a transfer table on the master."""
        with self._db_lock:
            kind = self._global_outputs.get(table)
            if kind is None:
                raise FederationError(f"table {table!r} is not a known global output")
            if kind not in ("transfer", "secure_transfer"):
                raise FederationError(f"table {table!r} is a {kind!r}, not a transfer")
            blob = self.database.scalar(f"SELECT * FROM {table}")
        return json.loads(blob)

    def broadcast_transfer(self, job_id: str, table: str, workers: Sequence[str]) -> dict[str, str]:
        """Ship a global transfer to workers for the next local iteration.

        Returns {worker: placed table}; under a degrading failure policy,
        workers lost during the broadcast are absent from the result so the
        caller can evict them from the flow.
        """
        with self._db_lock:
            blob = self.database.scalar(f"SELECT * FROM {table}")
        placed = {worker: f"bcast_{table}_{worker}" for worker in workers}
        with tracer.span("master.broadcast_transfer", table=table, n=len(workers)):
            responses, _lost = self._fan_out(
                self.node_id,
                [
                    (
                        worker,
                        "put_transfer",
                        {"job_id": job_id, "table": placed[worker], "blob": blob},
                    )
                    for worker in workers
                ],
                what="global-transfer broadcast",
            )
        return {worker: placed[worker] for worker in workers if worker in responses}

    # ---------------------------------------------------------------- cleanup

    def cleanup(
        self,
        job_id: str,
        workers: Sequence[str],
        keep_tables: Sequence[str] | None = None,
    ) -> None:
        """Drop a finished experiment's tables everywhere.

        ``keep_tables`` names worker tables that must survive because they
        back live plan-cache entries; the key is omitted from the payload
        when empty so the message bytes match the historical protocol.
        """
        payload: dict[str, Any] = {"job_id": job_id}
        if keep_tables:
            payload["keep"] = sorted(keep_tables)
        self.transport.broadcast(
            self.node_id, list(workers), "cleanup", payload, on_error="skip"
        )
        with self._db_lock:
            for table in [t for t in self._global_outputs if job_id in t]:
                self.database.drop_table(table, if_exists=True)
                del self._global_outputs[table]
        with self._counter_lock:
            for key in [
                k
                for k in self._job_counters
                if k == job_id or k.startswith(f"{job_id}_")
            ]:
                del self._job_counters[key]

    def drop_worker_tables(self, tables_by_worker: Mapping[str, Sequence[str]]) -> None:
        """Drop explicitly named tables on workers (expired plan-cache entries).

        Unreachable workers are tolerated: a dead worker's tables die with
        it, and a revived one re-registers datasets, not tables.
        """
        requests = [
            (worker, "cleanup", {"tables": sorted(tables)})
            for worker, tables in sorted(tables_by_worker.items())
            if tables
        ]
        if not requests:
            return
        self.transport.send_many(self.node_id, requests, on_error="return")

    # ----------------------------------------------------------------- remote

    def _resolve_remote(self, location: str):
        """Remote-table resolver: 'worker/table' -> Table, via the transport.

        Prefetched payloads (from :meth:`_prefetch_tables`) are consumed
        first; only cold lookups go over the network.
        """
        with self._prefetch_lock:
            payload = self._prefetched.pop(location, None)
        if payload is not None:
            return table_from_payload(payload)
        try:
            worker, table = location.split("/", 1)
        except ValueError:
            raise FederationError(f"bad remote location {location!r}") from None
        response = self.transport.send(self.node_id, worker, "fetch_table", {"table": table})
        return table_from_payload(response["table"])
