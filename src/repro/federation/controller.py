"""Federation assembly: wire Master, Workers, SMPC cluster and transport."""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.engine.table import Table
from repro.errors import FederationError
from repro.federation.master import Master
from repro.federation.policy import FailurePolicy
from repro.federation.transport import Transport
from repro.federation.worker import DEFAULT_PRIVACY_THRESHOLD, Worker
from repro.observability.audit import AuditLog
from repro.observability.metrics import MetricsRegistry, global_registry
from repro.observability.trace import tracer
from repro.smpc.cluster import SMPCCluster

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan_executor import StepCache


def _make_step_cache() -> "StepCache":
    # Imported lazily: plan_executor imports the federation transport, so a
    # module-level import here would be circular.
    from repro.core.plan_executor import StepCache

    return StepCache()


@dataclass(frozen=True)
class FederationConfig:
    """Deployment knobs for a simulated federation."""

    smpc_nodes: int = 3
    smpc_scheme: str = "shamir"
    privacy_threshold: int = DEFAULT_PRIVACY_THRESHOLD
    latency_seconds: float = 0.0005
    bandwidth_bytes_per_second: float = 1.25e8
    drop_probability: float = 0.0
    seed: int | None = None
    #: Fan-out width for concurrent dispatch; None -> env var or
    #: min(32, n_workers).  1 restores fully sequential dispatch.
    parallelism: int | None = None
    #: Actually sleep each message's modeled latency (scaling benchmarks).
    sleep_latency: bool = False
    #: Fault tolerance: retries/deadline/quorum/degrade contract; None means
    #: the legacy fail-fast behavior (no retries, first loss aborts).
    failure_policy: FailurePolicy | None = None


@dataclass
class Federation:
    """A running federation: the object experiments execute against."""

    transport: Transport
    master: Master
    workers: dict[str, Worker]
    smpc_cluster: SMPCCluster | None = None
    config: FederationConfig = field(default_factory=FederationConfig)
    #: Cross-experiment flow-plan step cache, shared by every runner that
    #: opts into dedup (``REPRO_PLAN_CACHE`` / an explicit ``plan_cache``).
    plan_cache: "StepCache" = field(default_factory=_make_step_cache)

    def worker(self, worker_id: str) -> Worker:
        try:
            return self.workers[worker_id]
        except KeyError:
            raise FederationError(f"no such worker: {worker_id!r}") from None

    def set_worker_down(self, worker_id: str, down: bool = True) -> None:
        """Failure injection: make a worker unreachable."""
        self.worker(worker_id)  # validate
        self.transport.set_down(worker_id, down)
        self.master.refresh_catalog()

    def shutdown(self) -> None:
        """Release pooled resources (the transport's fan-out executor)."""
        self.transport.shutdown()

    # ---------------------------------------------------------- observability

    def critical_path(self, clock: str = "wall", root_name: str | None = None):
        """Critical-path analysis of the process tracer's current buffer.

        Returns a :class:`~repro.observability.critical_path.CriticalPathReport`
        over the longest recorded root span (pass ``root_name="experiment"``
        to skip auxiliary roots).  ``clock="sim"`` attributes the modeled
        network seconds instead of wall time.
        """
        from repro.observability.critical_path import analyze

        return analyze(clock=clock, root_name=root_name)

    def audit_logs(self) -> list[AuditLog]:
        """Every node's append-only audit log: master first, then workers."""
        return [self.master.audit] + [
            self.workers[w].audit for w in sorted(self.workers)
        ]

    def metrics_registry(self) -> MetricsRegistry:
        """A unified registry over every live counter in this federation.

        The registry absorbs existing sources — transport stats, the UDF
        plan cache, circuit-breaker health, SMPC meters, audit event counts
        and process-wide privacy counters — via collectors, so values are
        read lazily at snapshot/render time and the original objects stay
        untouched.
        """
        from repro.udfgen.generator import plan_cache

        registry = MetricsRegistry()
        transport = self.transport
        master = self.master
        smpc = self.smpc_cluster

        def transport_samples():
            stats = transport.snapshot()
            yield ("repro_transport_messages_total", {}, float(stats.messages))
            yield ("repro_transport_bytes_sent_total", {}, float(stats.bytes_sent))
            yield ("repro_transport_payload_elements_total", {}, float(stats.payload_elements))
            yield ("repro_transport_simulated_seconds_total", {}, stats.simulated_seconds)
            yield ("repro_transport_retries_total", {}, float(stats.retries))
            yield ("repro_transport_failed_sends_total", {}, float(stats.failed_sends))
            yield ("repro_transport_parallelism", {}, float(transport.parallelism))

        def plan_cache_samples():
            stats = plan_cache.stats()
            hits, misses = stats["hits"], stats["misses"]
            yield ("repro_udf_plan_cache_hits_total", {}, float(hits))
            yield ("repro_udf_plan_cache_misses_total", {}, float(misses))
            yield ("repro_udf_plan_cache_size", {}, float(stats["size"]))
            total = hits + misses
            yield ("repro_udf_plan_cache_hit_ratio", {}, hits / total if total else 0.0)

        def flow_cache_samples():
            stats = self.plan_cache.stats()
            hits, misses = stats["hits"], stats["misses"]
            yield ("repro_plan_cache_hits_total", {}, float(hits))
            yield ("repro_plan_cache_misses_total", {}, float(misses))
            yield ("repro_plan_cache_entries", {}, float(stats["entries"]))
            total = hits + misses
            yield ("repro_plan_cache_hit_ratio", {}, hits / total if total else 0.0)

        def health_samples():
            yield (
                "repro_worker_breaker_evictions_total",
                {},
                float(master.health.evictions),
            )
            yield (
                "repro_worker_quarantined",
                {},
                float(len(master.health.quarantined())),
            )

        def smpc_samples():
            if smpc is None:
                return
            yield ("repro_smpc_rounds_total", {}, float(smpc.communication.rounds))
            yield ("repro_smpc_elements_total", {}, float(smpc.communication.elements))
            yield ("repro_smpc_offline_triples_total", {}, float(smpc.offline_usage.triples))
            yield (
                "repro_smpc_offline_random_bits_total",
                {},
                float(smpc.offline_usage.random_bits),
            )

        def audit_samples():
            counts: dict[tuple[str, str], int] = {}
            for log in self.audit_logs():
                for event in log.events():
                    key = (event.node, event.event)
                    counts[key] = counts.get(key, 0) + 1
            for (node, event_name), count in sorted(counts.items()):
                yield (
                    "repro_audit_events_total",
                    {"node": node, "event": event_name},
                    float(count),
                )

        def privacy_samples():
            for name, value in global_registry.snapshot().items():
                if name.startswith("repro_privacy_") and isinstance(value, (int, float)):
                    yield (name, {}, float(value))

        registry.register_collector(transport_samples)
        registry.register_collector(plan_cache_samples)
        registry.register_collector(flow_cache_samples)
        registry.register_collector(health_samples)
        registry.register_collector(smpc_samples)
        registry.register_collector(audit_samples)
        registry.register_collector(privacy_samples)
        return registry


def create_federation(
    worker_data: Mapping[str, Mapping[str, Table]],
    config: FederationConfig | None = None,
) -> Federation:
    """Build a federation from per-worker data-model tables.

    ``worker_data`` maps worker id to ``{data_model: table}``; every table
    needs a ``dataset`` column (see :meth:`Worker.load_data_model`).
    """
    config = config or FederationConfig()
    if not worker_data:
        raise FederationError("a federation needs at least one worker")
    policy = config.failure_policy or FailurePolicy()
    transport = Transport(
        latency_seconds=config.latency_seconds,
        bandwidth_bytes_per_second=config.bandwidth_bytes_per_second,
        drop_probability=config.drop_probability,
        seed=config.seed,
        max_workers=config.parallelism,
        sleep_latency=config.sleep_latency,
        retry=policy.retry_policy(),
    )
    workers: dict[str, Worker] = {}
    for worker_id, models in worker_data.items():
        worker = Worker(worker_id, privacy_threshold=config.privacy_threshold)
        for data_model, table in models.items():
            worker.load_data_model(data_model, table)
        transport.register(worker_id, worker.handle)
        workers[worker_id] = worker
    smpc = (
        SMPCCluster(config.smpc_nodes, config.smpc_scheme, seed=config.seed)
        if config.smpc_nodes
        else None
    )
    master = Master(transport, list(workers), smpc_cluster=smpc, failure_policy=policy)
    master.refresh_catalog()
    # Traces report where the *modeled* network time goes: point the process
    # tracer's simulated clock at this federation's transport.  The clock
    # holds the transport weakly — the tracer is a process-global, and a
    # strong closure here would pin the last federation (and its fan-out
    # pool threads) for the life of the process.
    transport_ref = weakref.ref(transport)

    def _sim_clock() -> float:
        live = transport_ref()
        return live.stats.simulated_seconds if live is not None else 0.0

    tracer.sim_clock = _sim_clock
    return Federation(transport, master, workers, smpc, config)
