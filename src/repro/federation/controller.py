"""Federation assembly: wire Master, Workers, SMPC cluster and transport."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.engine.table import Table
from repro.errors import FederationError
from repro.federation.master import Master
from repro.federation.policy import FailurePolicy
from repro.federation.transport import Transport
from repro.federation.worker import DEFAULT_PRIVACY_THRESHOLD, Worker
from repro.smpc.cluster import SMPCCluster


@dataclass(frozen=True)
class FederationConfig:
    """Deployment knobs for a simulated federation."""

    smpc_nodes: int = 3
    smpc_scheme: str = "shamir"
    privacy_threshold: int = DEFAULT_PRIVACY_THRESHOLD
    latency_seconds: float = 0.0005
    bandwidth_bytes_per_second: float = 1.25e8
    drop_probability: float = 0.0
    seed: int | None = None
    #: Fan-out width for concurrent dispatch; None -> env var or
    #: min(32, n_workers).  1 restores fully sequential dispatch.
    parallelism: int | None = None
    #: Actually sleep each message's modeled latency (scaling benchmarks).
    sleep_latency: bool = False
    #: Fault tolerance: retries/deadline/quorum/degrade contract; None means
    #: the legacy fail-fast behavior (no retries, first loss aborts).
    failure_policy: FailurePolicy | None = None


@dataclass
class Federation:
    """A running federation: the object experiments execute against."""

    transport: Transport
    master: Master
    workers: dict[str, Worker]
    smpc_cluster: SMPCCluster | None = None
    config: FederationConfig = field(default_factory=FederationConfig)

    def worker(self, worker_id: str) -> Worker:
        try:
            return self.workers[worker_id]
        except KeyError:
            raise FederationError(f"no such worker: {worker_id!r}") from None

    def set_worker_down(self, worker_id: str, down: bool = True) -> None:
        """Failure injection: make a worker unreachable."""
        self.worker(worker_id)  # validate
        self.transport.set_down(worker_id, down)
        self.master.refresh_catalog()


def create_federation(
    worker_data: Mapping[str, Mapping[str, Table]],
    config: FederationConfig | None = None,
) -> Federation:
    """Build a federation from per-worker data-model tables.

    ``worker_data`` maps worker id to ``{data_model: table}``; every table
    needs a ``dataset`` column (see :meth:`Worker.load_data_model`).
    """
    config = config or FederationConfig()
    if not worker_data:
        raise FederationError("a federation needs at least one worker")
    policy = config.failure_policy or FailurePolicy()
    transport = Transport(
        latency_seconds=config.latency_seconds,
        bandwidth_bytes_per_second=config.bandwidth_bytes_per_second,
        drop_probability=config.drop_probability,
        seed=config.seed,
        max_workers=config.parallelism,
        sleep_latency=config.sleep_latency,
        retry=policy.retry_policy(),
    )
    workers: dict[str, Worker] = {}
    for worker_id, models in worker_data.items():
        worker = Worker(worker_id, privacy_threshold=config.privacy_threshold)
        for data_model, table in models.items():
            worker.load_data_model(data_model, table)
        transport.register(worker_id, worker.handle)
        workers[worker_id] = worker
    smpc = (
        SMPCCluster(config.smpc_nodes, config.smpc_scheme, seed=config.seed)
        if config.smpc_nodes
        else None
    )
    master = Master(transport, list(workers), smpc_cluster=smpc, failure_policy=policy)
    master.refresh_catalog()
    return Federation(transport, master, workers, smpc, config)
