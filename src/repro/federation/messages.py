"""Typed messages exchanged between Master, Workers, and the SMPC cluster."""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field
from typing import Any, Mapping

_MESSAGE_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """One request on the wire.

    ``kind`` selects the handler on the receiving node; ``payload`` carries
    the arguments.  Responses are plain payload dicts.
    """

    sender: str
    receiver: str
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER))


def new_job_id(prefix: str = "job") -> str:
    """A global unique identifier for one computation (paper §2, SMPC)."""
    return f"{prefix}_{uuid.uuid4().hex[:12]}"


#: Message kinds understood by Worker nodes.  Data loading is deliberately
#: absent: ETL happens locally at the hospital (data never arrives over the
#: transport), via :meth:`repro.federation.worker.Worker.load_data_model`.
WORKER_KINDS = (
    "ping",
    "list_datasets",
    "run_udf",
    "get_transfer",
    "put_transfer",
    "get_secure_payload",
    "fetch_table",
    "cleanup",
    "row_count",
)
