"""CSV ingestion with CDE-driven typing."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Sequence

from repro.data.cdes import DataModel
from repro.engine.table import ColumnSpec, Schema, Table
from repro.engine.types import SQLType
from repro.errors import SpecificationError

#: Values treated as SQL NULL in source files.
NA_TOKENS = {"", "na", "n/a", "nan", "null", "none", "?"}


def load_csv(path: str | Path, data_model: DataModel) -> Table:
    """Load a CSV file, typing and validating columns against a data model."""
    with open(path, newline="") as handle:
        return _load(csv.reader(handle), data_model)


def load_csv_text(text: str, data_model: DataModel) -> Table:
    """Load CSV content from a string (tests and inline fixtures)."""
    return _load(csv.reader(io.StringIO(text)), data_model)


def _load(reader, data_model: DataModel) -> Table:
    rows = list(reader)
    if not rows:
        raise SpecificationError("empty CSV input")
    header = [name.strip() for name in rows[0]]
    unknown = [name for name in header if name not in data_model.cdes]
    if unknown:
        raise SpecificationError(
            f"columns not in data model {data_model.name!r}: {unknown}"
        )
    if "dataset" not in header:
        raise SpecificationError("CSV must include the 'dataset' column")
    cdes = [data_model.cde(name) for name in header]
    parsed_rows: list[list[Any]] = []
    for line_number, raw in enumerate(rows[1:], start=2):
        if not raw or all(not cell.strip() for cell in raw):
            continue
        if len(raw) != len(header):
            raise SpecificationError(
                f"line {line_number}: {len(raw)} cells for {len(header)} columns"
            )
        parsed_rows.append(
            [_parse_cell(cell, cde, line_number) for cell, cde in zip(raw, cdes)]
        )
    schema = Schema([ColumnSpec(cde.code, cde.sql_type) for cde in cdes])
    return Table.from_rows(schema, parsed_rows)


def _parse_cell(cell: str, cde, line_number: int) -> Any:
    text = cell.strip()
    if text.lower() in NA_TOKENS:
        return None
    if cde.sql_type == SQLType.REAL:
        try:
            return float(text)
        except ValueError:
            raise SpecificationError(
                f"line {line_number}, column {cde.code!r}: {text!r} is not a number"
            ) from None
    if cde.sql_type == SQLType.INT:
        try:
            return int(float(text))
        except ValueError:
            raise SpecificationError(
                f"line {line_number}, column {cde.code!r}: {text!r} is not an integer"
            ) from None
    if cde.sql_type == SQLType.BOOL:
        lowered = text.lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise SpecificationError(
            f"line {line_number}, column {cde.code!r}: {text!r} is not a boolean"
        )
    return text
