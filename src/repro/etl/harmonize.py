"""Harmonization: validate and clean a loaded table against its CDEs.

Hospitals upload heterogeneous exports; harmonization enforces the Common
Data Element contracts (enumerations, plausible ranges) before the table
reaches the worker's engine, reporting what was dropped or nulled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.cdes import DataModel
from repro.engine.column import Column
from repro.engine.table import Table
from repro.engine.types import SQLType


@dataclass
class HarmonizationReport:
    """What harmonization changed, per column."""

    total_rows: int = 0
    out_of_range_nulled: dict[str, int] = field(default_factory=dict)
    bad_level_nulled: dict[str, int] = field(default_factory=dict)

    @property
    def total_nulled(self) -> int:
        return sum(self.out_of_range_nulled.values()) + sum(self.bad_level_nulled.values())


def harmonize_table(table: Table, data_model: DataModel) -> tuple[Table, HarmonizationReport]:
    """Null out values violating their CDE contract; report the changes."""
    report = HarmonizationReport(total_rows=table.num_rows)
    columns = []
    for spec in table.schema:
        column = table.column(spec.name)
        cde = data_model.cde(spec.name)
        if spec.name == "dataset":
            # The dataset code is an identifier, not a clinical variable:
            # hospitals routinely introduce new cohort codes.
            columns.append(column)
            continue
        if cde.is_categorical:
            allowed = set(cde.enumerations)
            bad = np.array(
                [(v is not None and v not in allowed) for v in column.values], dtype=bool
            ) & ~column.nulls
            if bad.any():
                report.bad_level_nulled[spec.name] = int(bad.sum())
                column = Column(spec.sql_type, column.values.copy(), column.nulls | bad)
        elif spec.sql_type in (SQLType.REAL, SQLType.INT):
            low = cde.min_value
            high = cde.max_value
            if low is not None or high is not None:
                values = column.values.astype(np.float64)
                bad = np.zeros(len(values), dtype=bool)
                if low is not None:
                    bad |= values < low
                if high is not None:
                    bad |= values > high
                bad &= ~column.nulls
                if bad.any():
                    report.out_of_range_nulled[spec.name] = int(bad.sum())
                    column = Column(spec.sql_type, column.values.copy(), column.nulls | bad)
        columns.append(column)
    return Table(table.schema, columns), report
