"""ETL: loading hospital source data into a worker's engine.

Paper §2: "the source data in each hospital may be stored in a different
form (e.g., csv files) or system and MIP provides the required ETL processes
to upload it to MonetDB."
"""

from repro.etl.harmonize import HarmonizationReport, harmonize_table
from repro.etl.loader import load_csv, load_csv_text

__all__ = ["HarmonizationReport", "harmonize_table", "load_csv", "load_csv_text"]
