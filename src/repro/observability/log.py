"""One structured logger for the whole reproduction.

Replaces the scattered bare ``print`` / ad-hoc ``logging`` habits with a
single JSON-lines logger: every record is one line on stderr carrying a
timestamp, level, logger name, an ``event`` slug, and arbitrary structured
fields.  The threshold comes from the ``REPRO_LOG_LEVEL`` environment
variable (``debug`` | ``info`` | ``warning`` | ``error``; default
``warning`` so tests and benchmarks stay quiet) and can be overridden
programmatically with :func:`configure`.

Usage::

    from repro.observability.log import get_logger
    log = get_logger("repro.learning.trainer")
    log.info("round_finished", round=3, loss=0.41, accuracy=0.83)
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, TextIO

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_loggers: dict[str, "StructuredLogger"] = {}
_level_override: int | None = None
_stream_override: TextIO | None = None


def _threshold() -> int:
    if _level_override is not None:
        return _level_override
    raw = os.environ.get(LOG_LEVEL_ENV, "warning").strip().lower()
    return LEVELS.get(raw, LEVELS["warning"])


def _stream() -> TextIO:
    return _stream_override if _stream_override is not None else sys.stderr


def configure(level: str | None = None, stream: TextIO | None = None) -> None:
    """Override the env-driven level and/or the output stream (tests, CLI).

    ``configure()`` with no arguments restores the environment defaults.
    """
    global _level_override, _stream_override
    if level is None:
        _level_override = None
    else:
        key = level.strip().lower()
        if key not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; pick one of {sorted(LEVELS)}")
        _level_override = LEVELS[key]
    _stream_override = stream


class StructuredLogger:
    """A named emitter of structured JSON-lines records."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def is_enabled(self, level: str) -> bool:
        return LEVELS[level] >= _threshold()

    def log(self, level: str, event: str, **fields: Any) -> None:
        if LEVELS[level] < _threshold():
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        stream = _stream()
        with _lock:
            print(line, file=stream)

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> StructuredLogger:
    with _lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger
