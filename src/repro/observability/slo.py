"""SLO baselines: persisted performance expectations and a comparator.

The bench suite writes machine-readable results with one **stable schema**::

    {"name": ..., "config": {...}, "samples": [s, ...],
     "p50": ..., "p95": ..., "wall_s": ...}

(all latency metrics in seconds, lower is better).  This module turns those
snapshots into an enforced trajectory:

- :class:`BenchResult` — parse/compute the stable schema (percentiles from
  raw samples, or from an existing :class:`~repro.observability.metrics.Histogram`
  via :func:`quantiles_from_histogram`).
- :class:`BaselineStore` — rolling-window baselines persisted as
  ``BASELINE_<name>.json`` next to the bench results.  Each update appends
  the run's metrics to a bounded window and re-derives the baseline as the
  window median, so one lucky (or unlucky) run cannot move the bar.
- :func:`compare` / :func:`evaluate` — classify a run as ``ok`` / ``warn``
  / ``regression`` against its baseline with configurable tolerances
  (default: warn above +10%, fail above +20% on any latency metric).
  ``repro health`` renders the verdicts and exits nonzero on regression
  (and, with ``--strict``, on warnings or missing results) — the CI
  ``perf-gate`` job runs exactly that.

Zero dependencies; files are plain JSON so baselines diff cleanly in git.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Latency metrics of the stable schema, all lower-is-better seconds.
METRIC_KEYS = ("p50", "p95", "wall_s")

DEFAULT_WARN_PCT = 10.0
DEFAULT_FAIL_PCT = 20.0
DEFAULT_WINDOW = 10

_STATUS_ORDER = {"ok": 0, "new": 0, "warn": 1, "missing": 1, "regression": 2}


def percentile(samples: Iterable[float], q: float) -> float:
    """Linear-interpolation percentile (the numpy default), stdlib-only."""
    values = sorted(float(v) for v in samples)
    if not values:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    position = q * (len(values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return values[lower]
    fraction = position - lower
    return values[lower] * (1 - fraction) + values[upper] * fraction


def quantiles_from_histogram(
    histogram, quantiles: Iterable[float] = (0.5, 0.95, 0.99), **labels: Any
) -> dict[str, float | None]:
    """Percentile estimates off a live :class:`Histogram`'s buckets.

    Returns ``{"p50": ..., "p95": ..., "p99": ...}`` style keys; ``None``
    values mean the histogram holds no observations (for that label set).
    """
    return {
        f"p{str(round(q * 100, 1)).rstrip('0').rstrip('.')}": histogram.quantile(
            q, **labels
        )
        for q in quantiles
    }


@dataclass
class BenchResult:
    """One bench run in the stable schema."""

    name: str
    config: dict[str, Any] = field(default_factory=dict)
    samples: list[float] = field(default_factory=list)
    p50: float | None = None
    p95: float | None = None
    wall_s: float | None = None

    @classmethod
    def from_samples(
        cls,
        name: str,
        samples: Iterable[float],
        config: Mapping[str, Any] | None = None,
        wall_s: float | None = None,
    ) -> "BenchResult":
        values = [float(v) for v in samples]
        if not values:
            raise ValueError(f"bench {name!r} produced no samples")
        return cls(
            name=name,
            config=dict(config or {}),
            samples=values,
            p50=round(percentile(values, 0.5), 6),
            p95=round(percentile(values, 0.95), 6),
            wall_s=round(wall_s if wall_s is not None else sum(values), 6),
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchResult":
        return cls(
            name=str(payload["name"]),
            config=dict(payload.get("config") or {}),
            samples=[float(v) for v in payload.get("samples") or ()],
            p50=payload.get("p50"),
            p95=payload.get("p95"),
            wall_s=payload.get("wall_s"),
        )

    def metrics(self) -> dict[str, float]:
        return {
            key: float(value)
            for key in METRIC_KEYS
            for value in (getattr(self, key),)
            if value is not None
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "config": self.config,
            "samples": [round(v, 6) for v in self.samples],
            "p50": self.p50,
            "p95": self.p95,
            "wall_s": self.wall_s,
        }


# ------------------------------------------------------------------ baselines


class BaselineStore:
    """Rolling-window baselines persisted as ``BASELINE_<name>.json``."""

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)

    def path(self, name: str) -> Path:
        return self.directory / f"BASELINE_{name}.json"

    def names(self) -> list[str]:
        if not self.directory.is_dir():
            return []
        return sorted(
            p.stem[len("BASELINE_"):] for p in self.directory.glob("BASELINE_*.json")
        )

    def load(self, name: str) -> dict[str, Any] | None:
        path = self.path(name)
        if not path.is_file():
            return None
        return json.loads(path.read_text())

    def update(
        self, result: BenchResult, window: int = DEFAULT_WINDOW
    ) -> dict[str, Any]:
        """Fold one run into the rolling window and persist the baseline.

        The baseline's headline metrics are the window **medians**, so the
        bar tracks genuine drift but shrugs off single outlier runs.
        """
        baseline = self.load(result.name) or {
            "name": result.name,
            "config": result.config,
            "window": [],
        }
        entries = list(baseline.get("window") or [])
        entries.append(result.metrics())
        entries = entries[-max(1, window):]
        baseline["window"] = entries
        baseline["runs"] = len(entries)
        for key in METRIC_KEYS:
            values = [e[key] for e in entries if e.get(key) is not None]
            baseline[key] = round(percentile(values, 0.5), 6) if values else None
        if result.config:
            baseline["config"] = result.config
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path(result.name).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        return baseline


# ----------------------------------------------------------------- comparator


@dataclass
class Verdict:
    """The comparator's classification of one bench vs. its baseline."""

    name: str
    status: str  # ok | warn | regression | new | missing
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "metrics": self.metrics,
            "notes": list(self.notes),
        }


def compare(
    current: BenchResult,
    baseline: Mapping[str, Any] | None,
    warn_pct: float = DEFAULT_WARN_PCT,
    fail_pct: float = DEFAULT_FAIL_PCT,
) -> Verdict:
    """Classify one run against its baseline.

    Tolerances are exclusive: a metric exactly at ``baseline * (1 + tol)``
    still passes; one strictly above it trips the level.  A missing
    baseline yields ``new`` (commit one via ``repro health
    --update-baselines``); a metric present in the baseline but absent
    from the run degrades the verdict to ``warn``.
    """
    if warn_pct > fail_pct:
        raise ValueError("warn_pct must not exceed fail_pct")
    if baseline is None:
        return Verdict(
            current.name, "new",
            metrics={k: {"current": v} for k, v in current.metrics().items()},
            notes=["no baseline on record"],
        )
    verdict = Verdict(current.name, "ok")
    current_metrics = current.metrics()
    for key in METRIC_KEYS:
        base_value = baseline.get(key)
        cur_value = current_metrics.get(key)
        if base_value is None and cur_value is None:
            continue
        if base_value is None:
            verdict.metrics[key] = {"current": cur_value, "status": "new"}
            verdict.notes.append(f"{key}: new metric (no baseline value)")
            continue
        if cur_value is None:
            verdict.metrics[key] = {"baseline": base_value, "status": "missing"}
            verdict.notes.append(f"{key}: missing from the current run")
            verdict.status = _worse(verdict.status, "warn")
            continue
        if base_value <= 0:
            ratio = math.inf if cur_value > 0 else 1.0
        else:
            ratio = cur_value / base_value
        status = "ok"
        if ratio > 1 + fail_pct / 100.0:
            status = "regression"
        elif ratio > 1 + warn_pct / 100.0:
            status = "warn"
        verdict.metrics[key] = {
            "current": cur_value,
            "baseline": base_value,
            "ratio": round(ratio, 4) if ratio != math.inf else "inf",
            "status": status,
        }
        if status != "ok":
            verdict.notes.append(
                f"{key}: {cur_value:.6g}s vs baseline {base_value:.6g}s "
                f"({(ratio - 1) * 100:+.1f}%)"
            )
        verdict.status = _worse(verdict.status, status)
    return verdict


def _worse(a: str, b: str) -> str:
    return a if _STATUS_ORDER.get(a, 0) >= _STATUS_ORDER.get(b, 0) else b


# ----------------------------------------------------------------- evaluation


@dataclass
class HealthReport:
    """Every bench verdict plus baselines that produced no current run."""

    verdicts: list[Verdict] = field(default_factory=list)
    warn_pct: float = DEFAULT_WARN_PCT
    fail_pct: float = DEFAULT_FAIL_PCT

    @property
    def status(self) -> str:
        worst = "ok"
        for verdict in self.verdicts:
            worst = _worse(worst, verdict.status)
        return worst

    def exit_code(self, strict: bool = False) -> int:
        """0 when healthy; 1 on regression (or, strictly, warn/missing)."""
        statuses = {v.status for v in self.verdicts}
        if "regression" in statuses:
            return 1
        if strict and statuses & {"warn", "missing"}:
            return 1
        return 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "warn_pct": self.warn_pct,
            "fail_pct": self.fail_pct,
            "benches": [v.to_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        lines = [
            f"{'bench':<24}{'status':<12}{'p50':>10}{'p95':>10}{'wall_s':>10}",
        ]
        for verdict in self.verdicts:
            cells = []
            for key in METRIC_KEYS:
                info = verdict.metrics.get(key) or {}
                current = info.get("current")
                cells.append(f"{current:>10.4g}" if current is not None else f"{'-':>10}")
            lines.append(f"{verdict.name:<24}{verdict.status:<12}" + "".join(cells))
            for note in verdict.notes:
                lines.append(f"    {note}")
        lines.append(
            f"overall: {self.status} "
            f"(warn >{self.warn_pct:g}%, fail >{self.fail_pct:g}%)"
        )
        return "\n".join(lines)


def load_bench_results(directory: "str | Path") -> list[BenchResult]:
    """Stable-schema ``BENCH_*.json`` files under ``directory``.

    Files without the stable keys (legacy bench payloads) are skipped, so
    the health gate and older result formats coexist in one directory.
    """
    directory = Path(directory)
    results = []
    if not directory.is_dir():
        return results
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or "name" not in payload:
            continue
        if "samples" not in payload and "p95" not in payload:
            continue
        results.append(BenchResult.from_dict(payload))
    return results


def evaluate(
    results_dir: "str | Path",
    baseline_dir: "str | Path | None" = None,
    warn_pct: float = DEFAULT_WARN_PCT,
    fail_pct: float = DEFAULT_FAIL_PCT,
) -> HealthReport:
    """Compare every stable-schema bench result against its baseline."""
    store = BaselineStore(baseline_dir or results_dir)
    report = HealthReport(warn_pct=warn_pct, fail_pct=fail_pct)
    seen = set()
    for result in load_bench_results(results_dir):
        seen.add(result.name)
        report.verdicts.append(
            compare(result, store.load(result.name), warn_pct, fail_pct)
        )
    for name in store.names():
        if name not in seen:
            report.verdicts.append(
                Verdict(name, "missing", notes=["baseline has no current bench run"])
            )
    return report
