"""A unified metrics registry: counters, gauges, histograms, collectors.

The registry is the one surface behind which every private ad-hoc counter in
the stack — :class:`~repro.federation.transport.TransportStats`, the UDF
plan cache's hit/miss counters, retry/failed-send totals, the
circuit-breaker eviction count, SMPC communication meters — is re-exposed
without changing the objects themselves (existing test assertions keep
working against the originals).  Live sources are absorbed through
*collectors*: callables returning samples, evaluated at
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.render_prometheus`
time, so reading metrics never adds work to the hot path.

Instruments follow the Prometheus data model: a ``Counter`` only goes up, a
``Gauge`` is set, a ``Histogram`` observes values into fixed buckets
(cumulative ``le`` semantics plus ``_sum``/``_count``).  All instruments
accept labels as keyword arguments on the recording call.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterable, Mapping

#: One exported measurement: (metric name, labels, value).
Sample = tuple[str, Mapping[str, Any], float]

_DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, float("inf"))


def _label_key(labels: Mapping[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def samples(self) -> list[Sample]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing total, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[Sample]:
        with self._lock:
            return [(self.name, dict(key), value) for key, value in self._values.items()]


class Gauge(_Instrument):
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[Sample]:
        with self._lock:
            return [(self.name, dict(key), value) for key, value in self._values.items()]


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative (Prometheus ``le``) buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = _DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text)
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        self._totals: dict[tuple, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                # NaN compares False against every bound, +Inf included; it
                # must still land in the overflow bucket or the cumulative
                # +Inf count would disagree with ``_count`` (the Prometheus
                # invariant ``le="+Inf" == _count``).
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def snapshot_one(self, **labels: Any) -> dict[str, Any]:
        key = _label_key(labels)
        with self._lock:
            counts = list(self._counts.get(key, [0] * len(self.buckets)))
            cumulative = []
            running = 0
            for count in counts:
                running += count
                cumulative.append(running)
            return {
                "buckets": {
                    ("+Inf" if bound == float("inf") else bound): cum
                    for bound, cum in zip(self.buckets, cumulative)
                },
                "sum": self._sums.get(key, 0.0),
                "count": self._totals.get(key, 0),
            }

    def samples(self) -> list[Sample]:
        out: list[Sample] = []
        with self._lock:
            keys = list(self._counts)
        for key in keys:
            labels = dict(key)
            snap = self.snapshot_one(**labels)
            for bound, cum in snap["buckets"].items():
                out.append((f"{self.name}_bucket", {**labels, "le": bound}, cum))
            out.append((f"{self.name}_sum", labels, snap["sum"]))
            out.append((f"{self.name}_count", labels, snap["count"]))
        return out

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimate the ``q``-quantile from this histogram's buckets.

        ``None`` when the label set holds no observations.  See
        :func:`estimate_quantile` for the interpolation contract.
        """
        with self._lock:
            counts = self._counts.get(_label_key(labels))
            if counts is None:
                return None
            cumulative: list[int] = []
            running = 0
            for count in counts:
                running += count
                cumulative.append(running)
        return estimate_quantile(self.buckets, cumulative, q)


def estimate_quantile(
    bounds: "tuple[float, ...] | list[float]",
    cumulative: "list[int] | tuple[int, ...]",
    q: float,
) -> float | None:
    """Prometheus-style ``histogram_quantile`` over cumulative buckets.

    Linear interpolation inside the target bucket; the first bucket's lower
    edge is 0 when its upper bound is positive (matching PromQL).  Mass in
    the ``+Inf`` overflow bucket is reported as the highest finite bound —
    the histogram cannot resolve anything beyond it.  Returns ``None`` for
    an empty histogram (or one with no finite bounds at all).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not cumulative:
        return None
    total = cumulative[-1]
    if total == 0:
        return None
    rank = q * total
    for index, cum in enumerate(cumulative):
        if cum >= rank and cum > 0:
            upper = bounds[index]
            previous = cumulative[index - 1] if index else 0
            if upper == float("inf"):
                finite = [b for b in bounds if b != float("inf")]
                return finite[-1] if finite else None
            lower = bounds[index - 1] if index else (0.0 if upper > 0 else upper)
            in_bucket = cum - previous
            fraction = (rank - previous) / in_bucket if in_bucket else 1.0
            fraction = min(1.0, max(0.0, fraction))
            return lower + (upper - lower) * fraction
    return None  # pragma: no cover - total > 0 guarantees a hit above


class MetricsRegistry:
    """Holds instruments plus collectors over live, externally-owned counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], Iterable[Sample]]] = []

    # --------------------------------------------------------- registration

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = _DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = Histogram(name, help_text, buckets)
            elif not isinstance(instrument, Histogram):
                raise ValueError(f"metric {name!r} already registered as {instrument.kind}")
            return instrument

    def _get_or_create(self, name: str, cls, help_text: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, help_text)
            elif not isinstance(instrument, cls):
                raise ValueError(f"metric {name!r} already registered as {instrument.kind}")
            return instrument

    def register_collector(self, collector: Callable[[], Iterable[Sample]]) -> None:
        """Absorb an external counter source, read lazily at snapshot time."""
        with self._lock:
            self._collectors.append(collector)

    # --------------------------------------------------------------- output

    def _all_samples(self) -> list[tuple[str, str, str, list[Sample]]]:
        """(name, kind, help, samples) per metric, collectors last."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        out = [
            (inst.name, inst.kind, inst.help, inst.samples()) for inst in instruments
        ]
        for collector in collectors:
            grouped: dict[str, list[Sample]] = {}
            for sample in collector():
                grouped.setdefault(sample[0], []).append(sample)
            for name, samples in grouped.items():
                # Collectors report bare samples; follow the Prometheus
                # naming convention to type them (`*_total` is a counter).
                kind = "counter" if name.endswith("_total") else "gauge"
                out.append((name, kind, "", samples))
        return out

    def snapshot(self) -> dict[str, Any]:
        """Every current value as one JSON-ready mapping.

        Unlabeled metrics map to a scalar; labeled metrics map to a list of
        ``{"labels": ..., "value": ...}`` entries.
        """
        result: dict[str, Any] = {}
        for name, _kind, _help, samples in self._all_samples():
            if len(samples) == 1 and not samples[0][1]:
                result[name] = samples[0][2]
            else:
                result[name] = [
                    {"labels": dict(labels), "value": value}
                    for _name, labels, value in samples
                ]
        return result

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: list[str] = []
        for name, kind, help_text, samples in self._all_samples():
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for sample_name, labels, value in sorted(
                samples, key=lambda s: (s[0], _label_key(s[1]))
            ):
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape(val)}"' for key, val in sorted(
                            (k, str(v)) for k, v in labels.items()
                        )
                    )
                    lines.append(f"{sample_name}{{{rendered}}} {_format_value(value)}")
                else:
                    lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True, default=str)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


#: Process-wide default registry (direct instrumentation; per-federation
#: collectors are attached by ``Federation.metrics_registry()``).
global_registry = MetricsRegistry()
