"""Observability: tracing, metrics, audit logging, structured logging.

Zero-dependency subsystem threaded through every layer of the reproduction
(see docs/ARCHITECTURE.md §10):

- :mod:`repro.observability.trace` — nested spans per federated flow, with
  wall- and simulated-clock timestamps, exportable as JSON or Chrome
  trace-event format (``REPRO_TRACE=1`` enables the process tracer),
- :mod:`repro.observability.metrics` — counters/gauges/histograms plus
  collectors that re-expose the stack's existing private counters behind
  ``registry.snapshot()`` / ``registry.render_prometheus()``,
- :mod:`repro.observability.audit` — append-only per-node privacy audit
  log (data access, aggregates shared, budget spend, evictions),
- :mod:`repro.observability.log` — the one structured JSON-lines logger
  (``REPRO_LOG_LEVEL`` selects the threshold),
- :mod:`repro.observability.critical_path` — blocking-chain analysis over
  finished span trees (self vs. wait attribution, straggler ranking),
- :mod:`repro.observability.profiler` — stdlib sampling profiler with
  per-job attribution, collapsed-stack and speedscope export,
- :mod:`repro.observability.slo` — rolling-window performance baselines
  (``BASELINE_*.json``) and the ok/warn/regression comparator behind
  ``repro health``.
"""

from repro.observability.audit import AuditEvent, AuditLog, merged_events
from repro.observability.critical_path import (
    CriticalPathReport,
    analyze,
    analyze_experiment,
)
from repro.observability.log import LOG_LEVEL_ENV, configure, get_logger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    estimate_quantile,
    global_registry,
)
from repro.observability.profiler import DEFAULT_HZ, SamplingProfiler
from repro.observability.slo import (
    BaselineStore,
    BenchResult,
    HealthReport,
    compare,
    evaluate,
)
from repro.observability.trace import (
    TRACE_ENV,
    Span,
    Tracer,
    filter_tree,
    normalized_tree,
    tracer,
)

__all__ = [
    "AuditEvent",
    "AuditLog",
    "merged_events",
    "CriticalPathReport",
    "analyze",
    "analyze_experiment",
    "DEFAULT_HZ",
    "SamplingProfiler",
    "BaselineStore",
    "BenchResult",
    "HealthReport",
    "compare",
    "evaluate",
    "estimate_quantile",
    "filter_tree",
    "LOG_LEVEL_ENV",
    "configure",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "TRACE_ENV",
    "Span",
    "Tracer",
    "normalized_tree",
    "tracer",
]
