"""Observability: tracing, metrics, audit logging, structured logging.

Zero-dependency subsystem threaded through every layer of the reproduction
(see docs/ARCHITECTURE.md §10):

- :mod:`repro.observability.trace` — nested spans per federated flow, with
  wall- and simulated-clock timestamps, exportable as JSON or Chrome
  trace-event format (``REPRO_TRACE=1`` enables the process tracer),
- :mod:`repro.observability.metrics` — counters/gauges/histograms plus
  collectors that re-expose the stack's existing private counters behind
  ``registry.snapshot()`` / ``registry.render_prometheus()``,
- :mod:`repro.observability.audit` — append-only per-node privacy audit
  log (data access, aggregates shared, budget spend, evictions),
- :mod:`repro.observability.log` — the one structured JSON-lines logger
  (``REPRO_LOG_LEVEL`` selects the threshold).
"""

from repro.observability.audit import AuditEvent, AuditLog, merged_events
from repro.observability.log import LOG_LEVEL_ENV, configure, get_logger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.observability.trace import TRACE_ENV, Span, Tracer, normalized_tree, tracer

__all__ = [
    "AuditEvent",
    "AuditLog",
    "merged_events",
    "LOG_LEVEL_ENV",
    "configure",
    "get_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "TRACE_ENV",
    "Span",
    "Tracer",
    "normalized_tree",
    "tracer",
]
