"""A stdlib-only sampling profiler with per-job attribution.

A background daemon thread wakes ``hz`` times per second, snapshots every
thread's Python stack via :func:`sys._current_frames`, and aggregates the
stacks into counts — the classic wall-clock sampling design (py-spy /
austin, in-process).  No tracing hooks are installed, so the profiled code
runs at full speed between ticks; the measured overhead at the default rate
is a fraction of a percent (asserted by
``tests/observability/test_profiler.py``).

**Per-job attribution.**  The experiment queue drives each job inside the
transport's :func:`~repro.federation.transport.job_scope`; that scope also
binds the executing thread here (:func:`bind_current_thread`), so every
sample is tagged with the job id its thread is working for.  Fan-out pool
threads are tagged for the duration of each send they run on a job's
behalf.  ``collapsed(job=...)`` then yields one job's flamegraph out of a
concurrent mix.

**Determinism safety.**  The simulation harness
(:mod:`repro.simtest`) owns all scheduling inside an activated run; a
free-running sampler thread would be an unscheduled source of wakeups.
:meth:`SamplingProfiler.start` therefore refuses to start while a
simulation is active (returning ``False``), asserted by the profiler test
suite.

Exports: collapsed-stack text (``a;b;c 42`` — the flamegraph.pl /
inferno / speedscope-compatible format) and speedscope's JSON file format.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Any, Iterable

#: Default sampling rate.  A prime, so the sampler does not phase-lock with
#: common periodic workloads (timers, modeled-latency sleeps at round rates).
DEFAULT_HZ = 97.0

#: Sentinel for "all jobs" in the filtering accessors.
_ALL = object()

#: Threads currently working on behalf of a job: ident -> job id.  Plain
#: dict reads/writes are atomic under the GIL; the sampler only reads.
_thread_jobs: dict[int, str] = {}


def bind_current_thread(job_id: str) -> int | None:
    """Attribute the calling thread's samples to ``job_id``.

    Returns the thread ident to pass to :func:`unbind_thread`, or ``None``
    when the thread was already bound (nested scopes keep the outer owner).
    """
    ident = threading.get_ident()
    if ident in _thread_jobs:
        return None
    _thread_jobs[ident] = job_id
    return ident


def unbind_thread(ident: int | None) -> None:
    """Undo :func:`bind_current_thread` (no-op for a ``None`` token)."""
    if ident is not None:
        _thread_jobs.pop(ident, None)


def thread_job(ident: int) -> str | None:
    """The job a thread's samples are attributed to, if any."""
    return _thread_jobs.get(ident)


def _frame_label(frame) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    function = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}.{function}"


class SamplingProfiler:
    """Samples every thread's stack ``hz`` times per second while running."""

    def __init__(self, hz: float = DEFAULT_HZ, max_depth: int = 128) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._lock = threading.Lock()
        #: (job id or None, root→leaf stack tuple) -> tick count.
        self._counts: Counter[tuple[str | None, tuple[str, ...]]] = Counter()
        self._samples = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started_wall: float | None = None
        self._elapsed = 0.0

    # -------------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> bool:
        """Begin sampling; returns False (and stays off) under simulation.

        The simtest scheduler's interleavings are a pure function of the
        seed; a sampler thread waking at wall-clock rate would perturb that
        contract, so an active simulation vetoes the profiler entirely.
        """
        from repro.simtest import hooks as sim_hooks

        if sim_hooks.current() is not None:
            return False
        with self._lock:
            if self._thread is not None:
                return True
            self._stop.clear()
            self._started_wall = time.perf_counter()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return True

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
            if self._started_wall is not None:
                self._elapsed += time.perf_counter() - self._started_wall
                self._started_wall = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5)

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # --------------------------------------------------------------- sampling

    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        while not self._stop.wait(interval):
            self._sample_once(own_ident)

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        tick: list[tuple[str | None, tuple[str, ...]]] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            stack.reverse()  # root → leaf, the collapsed-stack convention
            tick.append((_thread_jobs.get(ident), tuple(stack)))
        with self._lock:
            self._samples += 1
            for key in tick:
                self._counts[key] += 1

    # ---------------------------------------------------------------- exports

    @property
    def sample_count(self) -> int:
        """Sampler ticks taken so far (each tick samples every thread)."""
        with self._lock:
            return self._samples

    @property
    def elapsed_seconds(self) -> float:
        with self._lock:
            running = (
                time.perf_counter() - self._started_wall
                if self._started_wall is not None
                else 0.0
            )
            return self._elapsed + running

    def jobs(self) -> list[str]:
        """Job ids that have attributed samples."""
        with self._lock:
            return sorted({job for job, _stack in self._counts if job is not None})

    def stack_counts(self, job: Any = _ALL) -> dict[tuple[str, ...], int]:
        """Aggregated stack → tick counts; ``job`` filters attribution.

        ``job=None`` selects only unattributed samples, a job id selects
        that job's, and the default selects everything.
        """
        out: Counter[tuple[str, ...]] = Counter()
        with self._lock:
            for (sample_job, stack), count in self._counts.items():
                if job is _ALL or sample_job == job:
                    out[stack] += count
        return dict(out)

    def collapsed(self, job: Any = _ALL) -> str:
        """Collapsed-stack flamegraph text: ``frame;frame;frame count``."""
        counts = self.stack_counts(job)
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro-profile", job: Any = _ALL) -> dict[str, Any]:
        """The speedscope JSON file format (https://www.speedscope.app).

        One sampled profile; each unique stack becomes a sample weighted by
        its tick count times the sampling interval.
        """
        counts = self.stack_counts(job)
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        samples: list[list[int]] = []
        weights: list[float] = []
        interval = 1.0 / self.hz
        for stack, count in sorted(counts.items()):
            indexed = []
            for label in stack:
                index = frame_index.get(label)
                if index is None:
                    index = frame_index[label] = len(frames)
                    frames.append({"name": label})
                indexed.append(index)
            samples.append(indexed)
            weights.append(count * interval)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": round(total, 9),
                    "samples": samples,
                    "weights": [round(w, 9) for w in weights],
                }
            ],
            "exporter": "repro-profiler",
            "name": name,
        }

    def summary(self) -> dict[str, Any]:
        with self._lock:
            stacks = len(self._counts)
            samples = self._samples
        return {
            "hz": self.hz,
            "ticks": samples,
            "unique_stacks": stacks,
            "jobs": self.jobs(),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


def merge_collapsed(chunks: Iterable[str]) -> str:
    """Merge collapsed-stack texts (summing counts of identical stacks)."""
    totals: Counter[str] = Counter()
    for chunk in chunks:
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            try:
                totals[stack] += int(count)
            except ValueError:
                continue
    lines = [f"{stack} {count}" for stack, count in sorted(totals.items())]
    return "\n".join(lines) + ("\n" if lines else "")
