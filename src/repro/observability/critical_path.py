"""Critical-path analysis over finished span trees.

A federated flow is a tree of spans: serial steps nest, fan-outs open one
child per worker in parallel pool threads, retries stack extra attempts
inside a send.  Raw traces answer "what happened"; this module answers the
operator question "*where did the time go and what would make it faster*":

- **The blocking chain.**  Starting from a root span's end instant and
  walking backwards, the *blocker* at any moment is the child that finished
  last before it — shrinking a non-blocking sibling cannot move the root's
  end.  Recursing into each blocker tiles the root's duration into
  :class:`PathSegment`\\ s, each attributed either to a span's own work or
  to a gap of parent self-time.  By construction the segment durations sum
  to the root duration exactly (the ±1% acceptance reconciliation allows
  for float rounding in exported traces).
- **Self vs. wait attribution.**  Per span *kind* (the span name), how much
  of the total time was the span's own work (duration minus the merged
  coverage of its children) versus waiting on children.  A fan-out span
  with near-zero self time is pure coordination; one with large self time
  is doing master-side work worth profiling.
- **Straggler ranking.**  Spans carrying a ``receiver``/``worker``/``node``
  attribute are grouped per worker; the ranking shows which hospital node
  the flow spent its time on, and the straggler factor (slowest over
  median) quantifies imbalance a rebalancing planner could reclaim.

The analyzer is pure: it consumes the nested dicts of
:meth:`~repro.observability.trace.Tracer.span_tree` (or a JSON trace loaded
back from disk) and touches no live tracer state.  Both clocks work —
``clock="wall"`` for real time, ``clock="sim"`` for the transport's modeled
network seconds (where a span can legitimately have zero width).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: Tolerance for "ends at the same instant" comparisons, in clock seconds.
_EPS = 1e-9

#: Span attributes that identify the worker/node a span talks to, in
#: precedence order.
_WORKER_ATTRIBUTES = ("receiver", "worker", "node")


@dataclass(frozen=True)
class PathSegment:
    """One tile of the blocking chain through a trace."""

    name: str
    span_id: int | None
    start: float
    end: float
    #: ``"span"`` for time inside the named span's own frame, ``"self"``
    #: for a gap where the parent itself was the blocker.
    kind: str = "span"
    worker: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start": round(self.start, 9),
            "end": round(self.end, 9),
            "duration": round(self.duration, 9),
            "kind": self.kind,
            "worker": self.worker,
        }


@dataclass
class KindAttribution:
    """Aggregate self/wait attribution for one span kind."""

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    critical: float = 0.0

    @property
    def wait_time(self) -> float:
        return max(0.0, self.total - self.self_time)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": round(self.total, 9),
            "self_s": round(self.self_time, 9),
            "wait_s": round(self.wait_time, 9),
            "critical_s": round(self.critical, 9),
        }


@dataclass
class WorkerAttribution:
    """Time spent in spans addressed to one worker."""

    worker: str
    count: int = 0
    total: float = 0.0
    critical: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "count": self.count,
            "total_s": round(self.total, 9),
            "critical_s": round(self.critical, 9),
        }


@dataclass
class CriticalPathReport:
    """The analyzer's output: chain, attributions, ranking, reconciliation."""

    clock: str
    root_name: str
    root_duration: float
    segments: list[PathSegment] = field(default_factory=list)
    by_kind: list[KindAttribution] = field(default_factory=list)
    workers: list[WorkerAttribution] = field(default_factory=list)

    @property
    def chain_duration(self) -> float:
        return sum(segment.duration for segment in self.segments)

    @property
    def reconciliation(self) -> float:
        """Chain coverage of the root duration (1.0 = exact tiling)."""
        if self.root_duration <= 0:
            return 1.0
        return self.chain_duration / self.root_duration

    @property
    def straggler_factor(self) -> float:
        """Slowest worker's total over the median worker's total."""
        totals = sorted(w.total for w in self.workers if w.total > 0)
        if not totals:
            return 1.0
        median = totals[len(totals) // 2]
        return totals[-1] / median if median > 0 else 1.0

    def top_segments(self, n: int = 5) -> list[dict[str, Any]]:
        """The chain's heaviest (name, worker) groups, largest share first."""
        grouped: dict[tuple[str, str | None], float] = {}
        for segment in self.segments:
            label = segment.name if segment.kind == "span" else f"{segment.name} (self)"
            key = (label, segment.worker)
            grouped[key] = grouped.get(key, 0.0) + segment.duration
        ranked = sorted(grouped.items(), key=lambda item: -item[1])[:n]
        out = []
        for (label, worker), seconds in ranked:
            share = seconds / self.root_duration if self.root_duration > 0 else 0.0
            out.append(
                {
                    "name": label,
                    "worker": worker,
                    "seconds": round(seconds, 9),
                    "share": round(share, 4),
                }
            )
        return out

    def headline(self) -> str:
        """One operator-facing sentence: the dominant chain contributor."""
        top = self.top_segments(1)
        if not top:
            return f"{self.root_name}: empty critical path"
        entry = top[0]
        where = f" on {entry['worker']}" if entry["worker"] else ""
        return (
            f"{self.root_name} spent {entry['share']:.0%} of "
            f"{self.root_duration:.4g}s in {entry['name']}{where}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "clock": self.clock,
            "root": self.root_name,
            "root_duration_s": round(self.root_duration, 9),
            "chain_duration_s": round(self.chain_duration, 9),
            "reconciliation": round(self.reconciliation, 6),
            "straggler_factor": round(self.straggler_factor, 4),
            "headline": self.headline(),
            "top": self.top_segments(),
            "segments": [segment.to_dict() for segment in self.segments],
            "by_kind": [kind.to_dict() for kind in self.by_kind],
            "workers": [worker.to_dict() for worker in self.workers],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def render(self, top: int = 10) -> str:
        """A terminal-friendly report: headline, chain table, rankings."""
        lines = [self.headline(), ""]
        lines.append(
            f"critical path — {len(self.segments)} segments, "
            f"{self.chain_duration:.4g}s of {self.root_duration:.4g}s "
            f"({self.reconciliation:.1%} reconciled, {self.clock} clock)"
        )
        lines.append(f"{'share':>7}  {'seconds':>10}  segment")
        for entry in self.top_segments(top):
            where = f" @ {entry['worker']}" if entry["worker"] else ""
            lines.append(
                f"{entry['share']:>6.1%}  {entry['seconds']:>10.4g}  "
                f"{entry['name']}{where}"
            )
        if self.by_kind:
            lines.append("")
            lines.append(
                f"{'kind':<24}{'count':>6}{'total s':>10}{'self s':>10}"
                f"{'wait s':>10}{'critical s':>12}"
            )
            for kind in self.by_kind[:top]:
                lines.append(
                    f"{kind.name:<24}{kind.count:>6}{kind.total:>10.4g}"
                    f"{kind.self_time:>10.4g}{kind.wait_time:>10.4g}"
                    f"{kind.critical:>12.4g}"
                )
        if self.workers:
            lines.append("")
            lines.append(
                f"workers by time (straggler factor {self.straggler_factor:.2f}):"
            )
            for worker in self.workers[:top]:
                lines.append(
                    f"  {worker.worker:<20}{worker.total:>10.4g}s total"
                    f"{worker.critical:>10.4g}s on the critical path"
                )
        return "\n".join(lines)


# --------------------------------------------------------------- tree access


def _window(node: Mapping[str, Any], clock: str) -> tuple[float, float] | None:
    """A node's (start, end) under the chosen clock, or None if unfinished."""
    start = node.get(f"start_{clock}")
    end = node.get(f"end_{clock}")
    if start is None or end is None:
        return None
    return float(start), max(float(start), float(end))


def _worker_of(node: Mapping[str, Any]) -> str | None:
    attributes = node.get("attributes") or {}
    for key in _WORKER_ATTRIBUTES:
        value = attributes.get(key)
        if value is not None:
            return str(value)
    return None


def _children(node: Mapping[str, Any]) -> Iterable[Mapping[str, Any]]:
    return node.get("children") or ()


def _merged_coverage(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of intervals (children may overlap)."""
    if not intervals:
        return 0.0
    covered = 0.0
    current_start, current_end = None, None
    for start, end in sorted(intervals):
        if current_end is None or start > current_end + _EPS:
            if current_end is not None:
                covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        covered += current_end - current_start
    return covered


# ----------------------------------------------------------------- the chain


def _chain(node: Mapping[str, Any], clock: str,
           clip: tuple[float, float]) -> list[PathSegment]:
    """Tile ``node``'s clipped window into blocking-chain segments.

    Walks backwards from the window's end: the blocker at instant ``t`` is
    the child with the latest end at or before ``t``; the gap between that
    child's end and ``t`` is the node's own (self) time.  Children entirely
    overlapped by an already-chosen blocker end after the shrinking ``t``
    and drop out naturally — they are the parallel, non-blocking siblings.
    """
    window = _window(node, clock)
    if window is None:
        return []
    start = max(window[0], clip[0])
    end = min(window[1], clip[1])
    if end <= start + _EPS:
        # Zero-width under this clock (common for sim time): one marker
        # segment so the span still appears in the chain with zero cost.
        return [PathSegment(node["name"], node.get("span_id"), start, start,
                            worker=_worker_of(node))]
    name = node["name"]
    span_id = node.get("span_id")
    worker = _worker_of(node)

    candidates = []
    for child in _children(node):
        child_window = _window(child, clock)
        if child_window is None:
            continue
        child_start = max(child_window[0], start)
        child_end = min(child_window[1], end)
        if child_end > child_start - _EPS:
            candidates.append((child_end, child_start, child))
    candidates.sort(key=lambda item: item[0])
    # A childless (leaf) node's remaining time is its own frame, not a
    # "self" gap between children.
    leaf = not candidates

    reversed_segments: list[PathSegment] = []
    t = end
    while candidates:
        # Blocker: the last finisher at or before t.
        while candidates and candidates[-1][0] > t + _EPS:
            candidates.pop()
        if not candidates:
            break
        child_end, child_start, child = candidates.pop()
        child_end = min(child_end, t)
        if child_end < t - _EPS:
            reversed_segments.append(
                PathSegment(name, span_id, child_end, t, kind="self", worker=worker)
            )
        sub = _chain(child, clock, (child_start, child_end))
        reversed_segments.extend(reversed(sub))
        t = min(t, child_start)
        if t <= start + _EPS:
            break
    if t > start + _EPS:
        reversed_segments.append(
            PathSegment(name, span_id, start, t,
                        kind="span" if leaf else "self", worker=worker)
        )
    segments = list(reversed(reversed_segments))
    if not segments:
        segments = [PathSegment(name, span_id, start, end, worker=worker)]
    return segments


def _walk(node: Mapping[str, Any], clock: str,
          kinds: dict[str, KindAttribution],
          workers: dict[str, WorkerAttribution]) -> None:
    window = _window(node, clock)
    if window is None:
        return
    duration = window[1] - window[0]
    child_intervals = []
    for child in _children(node):
        child_window = _window(child, clock)
        if child_window is not None:
            clipped = (max(child_window[0], window[0]), min(child_window[1], window[1]))
            if clipped[1] > clipped[0]:
                child_intervals.append(clipped)
        _walk(child, clock, kinds, workers)
    self_time = max(0.0, duration - _merged_coverage(child_intervals))

    kind = kinds.setdefault(node["name"], KindAttribution(node["name"]))
    kind.count += 1
    kind.total += duration
    kind.self_time += self_time

    worker_id = _worker_of(node)
    if worker_id is not None:
        worker = workers.setdefault(worker_id, WorkerAttribution(worker_id))
        worker.count += 1
        worker.total += duration


# -------------------------------------------------------------------- facade


def analyze(
    roots: "list[Mapping[str, Any]] | Mapping[str, Any] | None" = None,
    clock: str = "wall",
    root_name: str | None = None,
) -> CriticalPathReport:
    """Analyze a span tree; the report covers the heaviest matching root.

    ``roots`` accepts :meth:`Tracer.span_tree` output (a list of root
    nodes), one root node, or ``None`` for the process tracer's current
    buffer.  ``root_name`` restricts the analysis to roots of that span
    name (e.g. ``"experiment"``, skipping ``experiment.queued`` roots).
    """
    if clock not in ("wall", "sim"):
        raise ValueError(f"unknown clock {clock!r} (use 'wall' or 'sim')")
    if roots is None:
        from repro.observability.trace import tracer

        roots = tracer.span_tree()
    if isinstance(roots, Mapping):
        roots = [roots]
    candidates = [
        (window[1] - window[0], root)
        for root in roots
        for window in (_window(root, clock),)
        if window is not None and (root_name is None or root["name"] == root_name)
    ]
    if not candidates:
        return CriticalPathReport(clock=clock, root_name=root_name or "(no trace)",
                                  root_duration=0.0)
    duration, root = max(candidates, key=lambda item: item[0])
    window = _window(root, clock)
    assert window is not None
    segments = _chain(root, clock, window)

    kinds: dict[str, KindAttribution] = {}
    workers: dict[str, WorkerAttribution] = {}
    _walk(root, clock, kinds, workers)
    # Critical seconds per kind / worker come from the chain itself.
    for segment in segments:
        kind = kinds.setdefault(segment.name, KindAttribution(segment.name))
        kind.critical += segment.duration
        if segment.worker is not None:
            worker = workers.setdefault(
                segment.worker, WorkerAttribution(segment.worker)
            )
            worker.critical += segment.duration

    return CriticalPathReport(
        clock=clock,
        root_name=root["name"],
        root_duration=duration,
        segments=segments,
        by_kind=sorted(kinds.values(), key=lambda k: -k.critical),
        workers=sorted(workers.values(), key=lambda w: -w.total),
    )


def analyze_experiment(experiment_id: str, clock: str = "wall") -> CriticalPathReport | None:
    """The critical path of one experiment's root span in the live tracer.

    Returns ``None`` when the tracer holds no finished root span whose
    ``experiment`` attribute matches — e.g. tracing was off for the run.
    """
    from repro.observability.trace import tracer

    matching = [
        root
        for root in tracer.span_tree()
        if root["name"] == "experiment"
        and (root.get("attributes") or {}).get("experiment") == experiment_id
    ]
    if not matching:
        return None
    return analyze(matching, clock=clock)
