"""Nested-span tracing for federated flows.

A :class:`Tracer` records a tree of :class:`Span`\\ s per experiment: one
root span per flow, one span per local/global step, one per fan-out with a
child span per worker send (retries included), plus UDF generation/execution
and SMPC protocol rounds.  Spans carry both wall-clock timestamps
(``time.perf_counter``) and *simulated*-clock timestamps (the transport's
modeled network seconds), so a trace shows where the modeled time went even
when the suite runs in milliseconds.

Design constraints:

- **Zero dependencies, near-zero disabled cost.**  The module-level
  :data:`tracer` is disabled unless ``REPRO_TRACE`` is set; a disabled
  ``tracer.span(...)`` returns a shared no-op context manager without
  allocating anything, so instrumented hot paths stay within the <5%%
  overhead budget asserted by the E5 benchmark.
- **Determinism.**  Span structure is a pure function of the flow: the
  transport pre-draws failure schedules, so the same seed produces the same
  span tree (modulo sibling order and timestamps) at any fan-out
  parallelism — asserted by ``tests/observability/test_trace_determinism``.
- **Cross-thread parentage.**  The span stack is thread-local; a fan-out
  captures the caller's current span and passes it explicitly as ``parent``
  to the spans its pool threads open, keeping per-worker sends nested under
  the fan-out span.

Exports: :meth:`Tracer.export_json` (a flat list of span dicts) and
:meth:`Tracer.export_chrome` (the Chrome ``chrome://tracing`` /
Perfetto trace-event format).
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from typing import Any, Callable, Mapping

TRACE_ENV = "REPRO_TRACE"


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "").strip() not in ("", "0", "false", "no")


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "start_wall",
        "end_wall",
        "start_sim",
        "end_sim",
        "status",
        "error",
        "thread_id",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: int,
        parent_id: int | None,
        attributes: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_wall = time.perf_counter()
        self.end_wall: float | None = None
        self.start_sim = tracer._sim_now()
        self.end_sim: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self.thread_id = threading.get_ident()

    # Context-manager protocol: the tracer pushes on __enter__ via span().
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self.end_wall = time.perf_counter()
        self.end_sim = self._tracer._sim_now()
        self._tracer._pop(self)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_error(self, message: str) -> None:
        """Mark the span failed without raising through it."""
        self.status = "error"
        self.error = message

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def set_error(self, message: str) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans to an in-memory buffer; one instance per process."""

    def __init__(self, enabled: bool | None = None) -> None:
        self._enabled = _env_enabled() if enabled is None else enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: list[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1
        #: Simulated-clock source (seconds); the transport wires this to its
        #: modeled-network clock when a federation is assembled.
        self.sim_clock: Callable[[], float] | None = None

    # ------------------------------------------------------------- switches

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every recorded span (the buffer, not the enabled state)."""
        with self._lock:
            self._spans = []
            self._next_span_id = 1
            self._next_trace_id = 1
        self._local = threading.local()

    # --------------------------------------------------------------- spans

    def span(
        self,
        name: str,
        parent: "Span | _NullSpan | None" = None,
        **attributes: Any,
    ) -> "Span | _NullSpan":
        """Open a span as a context manager.

        Without ``parent`` the span nests under the calling thread's current
        span (a new root — and a new ``trace_id`` — if there is none).  Pass
        the caller's span explicitly when entering from another thread, e.g.
        a fan-out pool worker.
        """
        if not self._enabled:
            return NULL_SPAN
        if isinstance(parent, _NullSpan):
            parent = None
        if parent is None:
            parent = self.current()
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            if parent is None:
                trace_id = f"trace-{self._next_trace_id}"
                self._next_trace_id += 1
                parent_id = None
            else:
                trace_id = parent.trace_id
                parent_id = parent.span_id
        span = Span(self, name, trace_id, span_id, parent_id, dict(attributes))
        with self._lock:
            self._spans.append(span)
        self._stack().append(span)
        return span

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextlib.contextmanager
    def adopt(self, span: "Span | _NullSpan | None"):
        """Make another thread's open span the caller's current span.

        Used by worker threads that execute on behalf of a span opened
        elsewhere (e.g. the master's async local-step dispatch): spans they
        open nest under the adopted span instead of becoming new roots.  A
        ``None`` (or null) span makes this a no-op.
        """
        if span is None or isinstance(span, _NullSpan) or not self._enabled:
            yield
            return
        stack = self._stack()
        stack.append(span)
        try:
            yield
        finally:
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:
                stack.remove(span)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; keep the structure sane
            stack.remove(span)

    def _sim_now(self) -> float:
        clock = self.sim_clock
        if clock is None:
            return 0.0
        try:
            return float(clock())
        except Exception:  # pragma: no cover - a clock must never break a span
            return 0.0

    # ------------------------------------------------------------- exports

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def export_json(self) -> list[dict[str, Any]]:
        """Flat list of span dicts (parent linkage via ``parent_id``)."""
        return [span.to_dict() for span in self.spans()]

    def export_chrome(self) -> dict[str, Any]:
        """The Chrome trace-event format (``chrome://tracing`` / Perfetto).

        Each finished span becomes one complete ("ph": "X") event; wall
        timestamps are microseconds relative to the earliest span.  Span
        attributes, the simulated-clock window, and error status travel in
        ``args``.
        """
        spans = [s for s in self.spans() if s.end_wall is not None]
        origin = min((s.start_wall for s in spans), default=0.0)
        events: list[dict[str, Any]] = []
        tids: dict[int, int] = {}
        for span in spans:
            tid = tids.setdefault(span.thread_id, len(tids) + 1)
            args: dict[str, Any] = dict(span.attributes)
            args["trace_id"] = span.trace_id
            args["sim_seconds"] = round((span.end_sim or 0.0) - span.start_sim, 9)
            if span.status != "ok":
                args["error"] = span.error
            events.append(
                {
                    "name": span.name,
                    "cat": "repro" if span.status == "ok" else "repro,error",
                    "ph": "X",
                    "ts": round((span.start_wall - origin) * 1e6, 3),
                    "dur": round((span.end_wall - span.start_wall) * 1e6, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def critical_path(self, clock: str = "wall", root_name: str | None = None):
        """Critical-path analysis of the recorded buffer.

        Delegates to :func:`repro.observability.critical_path.analyze`
        (imported lazily so the tracer itself stays dependency-free on the
        hot path); analyzes the longest matching root span.
        """
        from repro.observability.critical_path import analyze

        return analyze(self.span_tree(), clock=clock, root_name=root_name)

    def span_tree(self) -> list[dict[str, Any]]:
        """Nested view of the buffer: roots with recursive ``children``."""
        spans = self.spans()
        nodes = {
            span.span_id: {**span.to_dict(), "children": []} for span in spans
        }
        roots: list[dict[str, Any]] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        return roots


def filter_tree(
    roots: list[dict[str, Any]],
    min_ms: float = 0.0,
    top: int | None = None,
    clock: str = "wall",
) -> list[dict[str, Any]]:
    """Prune a :meth:`Tracer.span_tree` view for human consumption.

    ``min_ms`` drops spans shorter than the threshold — unless a descendant
    survives, in which case the ancestor is kept as scaffolding so the tree
    stays connected.  ``top`` caps each span's children to the N slowest;
    pruned nodes are summarized in a ``children_dropped`` count (with their
    total duration in ``dropped_ms``) rather than vanishing silently.  The
    input is not mutated.
    """
    if min_ms < 0:
        raise ValueError("min_ms must be >= 0")
    if top is not None and top < 1:
        raise ValueError("top must be >= 1")

    def duration_ms(node: Mapping[str, Any]) -> float:
        start, end = node.get(f"start_{clock}"), node.get(f"end_{clock}")
        if start is None or end is None:
            return 0.0
        return max(0.0, (end - start) * 1e3)

    def prune(node: dict[str, Any]) -> dict[str, Any] | None:
        children = [
            kept
            for child in node.get("children", ())
            if (kept := prune(child)) is not None
        ]
        own_ms = duration_ms(node)
        if own_ms < min_ms and not children:
            return None
        out = dict(node)
        if top is not None and len(children) > top:
            ranked = sorted(children, key=duration_ms, reverse=True)
            kept_set = {id(c) for c in ranked[:top]}
            dropped = [c for c in children if id(c) not in kept_set]
            children = [c for c in children if id(c) in kept_set]
            out["children_dropped"] = len(dropped)
            out["dropped_ms"] = round(sum(duration_ms(c) for c in dropped), 3)
        out["children"] = children
        out["duration_ms"] = round(own_ms, 3)
        return out

    return [kept for root in roots if (kept := prune(root)) is not None]


def normalized_tree(roots: list[Mapping[str, Any]] | None = None) -> Any:
    """A structural fingerprint of a span tree, modulo sibling order.

    Keeps span names, error status, and the determinism-relevant attributes
    (receiver/kind/retries/eviction); drops ids, timestamps and thread
    placement, plus attributes that legitimately vary between equivalent
    runs: randomly drawn job/step/experiment ids and the tables named after
    them, the configured fan-out ``width``, and plan-cache hit/miss flags
    (which concurrent worker warms the shared cache first is a scheduling
    accident).  Two runs with the same seed must produce equal fingerprints
    at any fan-out parallelism.
    """
    if roots is None:
        roots = tracer.span_tree()

    _unstable = (
        "elapsed_wall",
        "bytes",
        "plan_cache",
        "definition_skipped",
        "experiment",
        "step",
        "job",
        "table",
        "function",
        "width",
    )

    def norm(node: Mapping[str, Any]) -> tuple:
        attrs = node.get("attributes", {})
        kept = tuple(
            sorted(
                (k, json.dumps(v, sort_keys=True, default=str))
                for k, v in attrs.items()
                if k not in _unstable
            )
        )
        children = tuple(sorted(norm(child) for child in node.get("children", ())))
        return (node["name"], node["status"], kept, children)

    return tuple(sorted(norm(root) for root in roots))


#: The process-wide tracer every instrumented module imports.
tracer = Tracer()
