"""Append-only privacy audit log for masters and workers.

Federated medical platforms must answer, per experiment: which datasets and
variables were read, how many rows each hospital contributed, which
aggregates left each worker, how much privacy budget was spent, and which
workers were evicted mid-flow.  Every node (the master and each worker)
owns one :class:`AuditLog`; events are structured, monotonically sequenced,
and never mutated or removed.

Event vocabulary (the ``event`` field):

- ``dataset_read`` — a worker compiled a data view (datasets, variables,
  row count) for a local step,
- ``rows_contributed`` — rows entering a local computation after the
  privacy-threshold check,
- ``aggregate_shared`` — a transfer/secure-transfer left a worker (and to
  whom: master or SMPC cluster),
- ``transfer_received`` — a global transfer was placed on a worker,
- ``secure_aggregate`` — the SMPC cluster combined a job's shares,
- ``privacy_spend`` — one (epsilon, delta) release from
  :class:`repro.privacy.accountant.PrivacyAccountant`,
- ``worker_evicted`` — the flow dropped a worker (degrade path),
- ``experiment_started`` / ``experiment_finished`` — flow lifecycle.

Step job ids are prefixed by their experiment id, so
``log.events(job_id=<experiment_id>)`` returns everything an experiment
touched (prefix match).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class AuditEvent:
    """One immutable audit record."""

    seq: int
    wall_time: float
    node: str
    event: str
    job_id: str | None
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "wall_time": self.wall_time,
            "node": self.node,
            "event": self.event,
            "job_id": self.job_id,
            "details": dict(self.details),
        }


class AuditLog:
    """Thread-safe, append-only event log owned by one node."""

    def __init__(self, node: str) -> None:
        self.node = node
        self._lock = threading.Lock()
        self._events: list[AuditEvent] = []

    def record(self, event: str, job_id: str | None = None, **details: Any) -> AuditEvent:
        with self._lock:
            entry = AuditEvent(
                seq=len(self._events),
                wall_time=time.time(),
                node=self.node,
                event=event,
                job_id=job_id,
                details=details,
            )
            self._events.append(entry)
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(
        self,
        job_id: str | None = None,
        event: str | None = None,
    ) -> list[AuditEvent]:
        """Query the log; ``job_id`` prefix-matches step ids of an experiment."""
        with self._lock:
            entries = list(self._events)
        if event is not None:
            entries = [e for e in entries if e.event == event]
        if job_id is not None:
            entries = [
                e
                for e in entries
                if e.job_id is not None
                and (e.job_id == job_id or e.job_id.startswith(f"{job_id}_"))
            ]
        return entries

    def to_dicts(
        self, job_id: str | None = None, event: str | None = None
    ) -> list[dict[str, Any]]:
        return [entry.to_dict() for entry in self.events(job_id=job_id, event=event)]


def merged_events(
    logs: Iterable[AuditLog],
    job_id: str | None = None,
    event: str | None = None,
) -> list[dict[str, Any]]:
    """One experiment's audit trail across nodes, in (time, node, seq) order."""
    entries: list[AuditEvent] = []
    for log in logs:
        entries.extend(log.events(job_id=job_id, event=event))
    entries.sort(key=lambda e: (e.wall_time, e.node, e.seq))
    return [entry.to_dict() for entry in entries]
