"""Exception hierarchy for the MIP reproduction.

Every subsystem raises exceptions derived from :class:`ReproError`, so callers
can catch platform failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class EngineError(ReproError):
    """Base class for errors raised by the columnar SQL engine."""


class ParseError(EngineError):
    """A SQL statement could not be parsed."""


class CatalogError(EngineError):
    """A table, column, or function is missing or already exists."""


class ExecutionError(EngineError):
    """A statement parsed but failed during execution."""


class TypeMismatchError(EngineError):
    """A value or expression has an incompatible SQL type."""


class UDFError(ReproError):
    """A Python UDF failed to validate, generate, or execute."""


class SMPCError(ReproError):
    """Base class for secure multi-party computation failures."""


class IntegrityError(SMPCError):
    """A MAC check or share-consistency check failed (tampering detected)."""


class ThresholdError(SMPCError):
    """Not enough shares are available to reconstruct a secret."""


class PrivacyError(ReproError):
    """A differential-privacy parameter or budget is invalid or exhausted."""


class FederationError(ReproError):
    """Base class for federation-runtime failures."""


class NodeUnavailableError(FederationError):
    """A worker or SMPC node did not respond."""


class FederationTimeoutError(NodeUnavailableError):
    """A message exceeded its delivery deadline (including retries/backoff).

    Subclasses :class:`NodeUnavailableError` so eviction and skip policies
    treat a deadline the same as an unreachable node, but it is *not*
    transient: the retry budget that could have helped is already spent.
    """


class QuorumError(FederationError):
    """Too few reachable workers remain to satisfy the failure policy."""


class DatasetUnavailableError(FederationError):
    """A requested dataset is not present on any active worker."""


class ExperimentNotFoundError(ReproError):
    """An experiment or job id does not exist in the engine's history."""


class ExperimentCancelledError(ReproError):
    """An experiment was cancelled (pre-dispatch or cooperatively mid-flow)."""


class QueueFullError(ReproError):
    """The experiment queue rejected a submission (admission control)."""


class AlgorithmError(ReproError):
    """An algorithm received invalid inputs or reached an invalid state."""


class SpecificationError(AlgorithmError):
    """Experiment parameters violate the algorithm's specification."""


class PrivacyThresholdError(AlgorithmError):
    """A computation would expose a group smaller than the privacy threshold."""


class SimTestError(ReproError):
    """The deterministic simulation harness hit an internal fault (a stuck
    task, a malformed fault spec, or activation while disabled)."""


class DurabilityError(ReproError):
    """The durability subsystem (journal, checkpoints, recovery) failed."""


class JournalCorruptionError(DurabilityError):
    """A journal frame failed its CRC or framing check where corruption is
    not recoverable by truncation (e.g. an explicit integrity probe)."""


class MasterCrashError(BaseException):
    """A simulated master crash (simtest fault ``crash@N:master``).

    Derives from :class:`BaseException` — like ``KeyboardInterrupt`` — so
    that the engine's ``except Exception``/``except ReproError`` handlers
    cannot convert a crash into an ordinary failed result.  A crash must
    leave the job with no terminal journal record; recovery then re-enqueues
    it on restart.
    """


def is_transient(error: BaseException) -> bool:
    """Whether retrying the failed operation could plausibly succeed.

    Unavailability (down node, dropped message) is transient; a deadline is
    permanent (the retry budget is spent), and so is everything else — a
    handler exception or a validation error will fail identically on every
    attempt.
    """
    if isinstance(error, FederationTimeoutError):
        return False
    return isinstance(error, NodeUnavailableError)
