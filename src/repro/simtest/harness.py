"""Run one complete deterministic simulation from a one-line spec.

A scenario is fully described by ``seed=S;par=P;jobs=N;faults=<plan>``:
the scheduler seed, the queue's concurrency, how many experiments to
submit (cycling through fixed request archetypes, with pinned ids
``sim_job_1`` … aliased ``job1`` … for fault targeting), and the fault
plan.  :func:`run_simulation` builds a fresh federation under an active
:class:`~repro.simtest.runtime.SimRuntime`, drives every job to a terminal
state, runs the :class:`~repro.simtest.invariants.InvariantChecker`, and
returns a :class:`SimReport` whose ``transcript`` (interleaving decisions +
fired faults + invariant report) is byte-identical across runs of the same
spec.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.core.experiment import ExperimentEngine, ExperimentRequest
from repro.data.cohorts import CohortSpec, generate_cohort
from repro.errors import SimTestError
from repro.federation.controller import FederationConfig, create_federation
from repro.federation.policy import FailurePolicy
from repro.simtest.faults import FaultPlan
from repro.simtest.invariants import (
    InvariantChecker,
    InvariantReport,
    privacy_counter_snapshot,
)
from repro.simtest.runtime import SimRuntime

import repro.algorithms  # noqa: F401  (register algorithms once)

#: The fixed sim-worker topology (names are valid fault targets).
SIM_WORKERS = ("hospital_a", "hospital_b", "hospital_c")
SIM_DATASETS = ("edsd", "adni", "ppmi")
SIM_ROWS = 120

#: Request archetypes submitted round-robin (descriptive stats first so a
#: one-job simulation exercises the secure min/max/sum/union operations).
ARCHETYPES: tuple[ExperimentRequest, ...] = (
    ExperimentRequest(
        algorithm="descriptive_stats",
        data_model="dementia",
        datasets=SIM_DATASETS,
        y=("lefthippocampus",),
        name="sim-descriptive",
    ),
    ExperimentRequest(
        algorithm="pearson_correlation",
        data_model="dementia",
        datasets=SIM_DATASETS,
        y=("lefthippocampus", "righthippocampus"),
        name="sim-pearson",
    ),
    ExperimentRequest(
        algorithm="linear_regression",
        data_model="dementia",
        datasets=SIM_DATASETS,
        y=("lefthippocampus",),
        x=("agevalue",),
        name="sim-linreg",
    ),
    ExperimentRequest(
        algorithm="ttest_onesample",
        data_model="dementia",
        datasets=SIM_DATASETS,
        y=("p_tau",),
        parameters={"mu": 50.0},
        name="sim-ttest",
    ),
    # Appended last so the round-robin of existing <=4-job corpus specs is
    # unchanged; crash-recovery scenarios select it with ``algo=``.
    ExperimentRequest(
        algorithm="logistic_regression",
        data_model="dementia",
        datasets=SIM_DATASETS,
        y=("converted_ad",),
        x=("p_tau",),
        # A fixed iteration budget below the convergence point: secure
        # fixed-point noise shifts *when* Newton converges (5 vs 6 rounds),
        # which would trip the exact `iterations` comparison against the
        # plain oracle; with a hard cap both paths run identical rounds.
        parameters={"max_iterations": 4, "tolerance": 0.0},
        name="sim-logistic",
    ),
)

_SPEC_RE = re.compile(
    r"^seed=(?P<seed>\d+);par=(?P<par>\d+);jobs=(?P<jobs>\d+);faults=(?P<faults>.*?)"
    r"(?:;algo=(?P<algo>[a-z0-9_]+))?$"
)

_worker_data_cache: dict[int, dict[str, dict[str, Any]]] = {}
_oracle_cache: dict[tuple, dict[str, Any] | None] = {}


@dataclass(frozen=True)
class SimSpec:
    """One (seed, parallelism, jobs, fault plan) scenario.

    ``algo`` optionally pins every job to the archetype of one algorithm
    (``;algo=logistic_regression``) instead of the round-robin; it is
    emitted only when set, so pre-existing spec strings round-trip
    byte-identically.
    """

    seed: int
    parallelism: int = 1
    jobs: int = 1
    faults: FaultPlan = field(default_factory=FaultPlan)
    algo: str | None = None

    @classmethod
    def parse(cls, text: str) -> "SimSpec":
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise SimTestError(
                f"malformed sim spec {text!r} "
                "(expected seed=S;par=P;jobs=N;faults=...[;algo=NAME])"
            )
        return cls(
            seed=int(match.group("seed")),
            parallelism=int(match.group("par")),
            jobs=int(match.group("jobs")),
            faults=FaultPlan.parse(match.group("faults")),
            algo=match.group("algo"),
        )

    def spec(self) -> str:
        text = (
            f"seed={self.seed};par={self.parallelism};jobs={self.jobs};"
            f"faults={self.faults.spec()}"
        )
        if self.algo is not None:
            text += f";algo={self.algo}"
        return text

    def replace(self, **changes: Any) -> "SimSpec":
        from dataclasses import replace

        return replace(self, **changes)


@dataclass
class SimReport:
    """Everything one simulation produced."""

    spec: SimSpec
    results: list[Any]
    invariants: InvariantReport
    transcript: str
    unhandled: list[tuple[str, BaseException]]

    @property
    def ok(self) -> bool:
        return self.invariants.ok and not self.unhandled

    def failures(self) -> list[str]:
        lines = [f"{name}: {detail}" for name, detail in self.invariants.failures()]
        lines.extend(
            f"unhandled in {task}: {type(error).__name__}: {error}"
            for task, error in self.unhandled
        )
        return lines


def repro_command(spec: SimSpec) -> str:
    """The single-line command that replays one scenario exactly."""
    return f"PYTHONPATH=src python -m repro fuzz --replay '{spec.spec()}'"


def sim_worker_data(rows: int = SIM_ROWS) -> dict[str, dict[str, Any]]:
    """Three deterministic hospital cohorts (cached: tables are read-only)."""
    if rows not in _worker_data_cache:
        _worker_data_cache[rows] = {
            worker: {
                "dementia": generate_cohort(
                    CohortSpec(dataset, rows, seed=11 * (index + 1))
                )
            }
            for index, (worker, dataset) in enumerate(zip(SIM_WORKERS, SIM_DATASETS))
        }
    return _worker_data_cache[rows]


def sim_requests(n: int, algo: str | None = None) -> list[ExperimentRequest]:
    if algo is not None:
        for archetype in ARCHETYPES:
            if archetype.algorithm == algo:
                return [archetype] * n
        raise SimTestError(f"no sim archetype for algorithm {algo!r}")
    return [ARCHETYPES[index % len(ARCHETYPES)] for index in range(n)]


def _build_federation(spec: SimSpec):
    return create_federation(
        sim_worker_data(),
        FederationConfig(
            smpc_nodes=3,
            smpc_scheme="shamir",
            seed=spec.seed,
            failure_policy=FailurePolicy(retries=2, on_worker_loss="degrade"),
        ),
    )


def run_simulation(spec: SimSpec) -> SimReport:
    """Execute one scenario end to end and check every invariant.

    Plans containing a ``crash@N:master`` fault cannot run as one linear
    life; they dispatch to the two-life kill-and-restart protocol in
    :mod:`repro.simtest.restart` (imported lazily — it needs this module).
    """
    if spec.faults.master_crashes():
        from repro.simtest.restart import run_crash_simulation

        return run_crash_simulation(spec)
    runtime = SimRuntime(
        seed=spec.seed, parallelism=spec.parallelism, faults=spec.faults
    )
    with runtime.activate():
        federation = create_federation_for_sim(spec)
        engine = ExperimentEngine(federation, max_concurrent=spec.parallelism)
        baseline = federation.transport.snapshot()
        cluster = federation.smpc_cluster
        smpc_baseline = (
            (cluster.communication.rounds, cluster.communication.elements)
            if cluster is not None
            else (0, 0)
        )
        privacy_baseline = privacy_counter_snapshot()
        job_ids = []
        for index, request in enumerate(sim_requests(spec.jobs, algo=spec.algo)):
            job_id = f"sim_job_{index + 1}"
            runtime.alias(f"job{index + 1}", job_id)
            engine.submit(request, experiment_id=job_id)
            job_ids.append(job_id)
        runtime.apply_predispatch_cancels()
        runtime.drive()
        results = [engine.get(job_id) for job_id in job_ids]
        engine.shutdown(wait=True)
    # The oracle runs after deactivation, on real (but still deterministic)
    # machinery, so it contributes nothing to the transcript.
    oracles = {
        result.experiment_id: oracle
        for result in results
        if result.status.value == "success"
        and not result.evicted
        and (oracle := plain_oracle(result.request)) is not None
    }
    report = InvariantChecker(
        federation=federation,
        results=results,
        histories=engine.queue.job_histories(),
        baseline=baseline,
        smpc_baseline=smpc_baseline,
        privacy_baseline=privacy_baseline,
        oracles=oracles,
        revived_workers=runtime.revived_workers,
    ).check()
    federation.transport.shutdown()
    unhandled = runtime.unhandled_errors()
    header = f"# sim {spec.spec()}"
    transcript = "\n".join(
        [header, *runtime.transcript, report.format()]
    ) + "\n"
    return SimReport(
        spec=spec,
        results=results,
        invariants=report,
        transcript=transcript,
        unhandled=unhandled,
    )


def create_federation_for_sim(spec: SimSpec):
    """Build the simulation federation (split out for test monkeypatching)."""
    return _build_federation(spec)


def plain_oracle(request: ExperimentRequest) -> dict[str, Any] | None:
    """The plain-aggregation result of a request on a clean federation.

    Cached per request — the fuzzer replays the same archetypes thousands
    of times.  Returns None when even the clean plain run fails (then the
    equivalence invariant has no oracle to compare against).
    """
    key = (
        request.algorithm,
        request.y,
        request.x,
        tuple(sorted(request.parameters.items())),
        request.datasets,
    )
    if key not in _oracle_cache:
        federation = create_federation(
            sim_worker_data(),
            FederationConfig(smpc_nodes=0, smpc_scheme="shamir", seed=7),
        )
        engine = ExperimentEngine(federation, aggregation="plain")
        try:
            result = engine.run(request)
            _oracle_cache[key] = (
                dict(result.result) if result.status.value == "success" else None
            )
        finally:
            engine.shutdown(wait=True)
            federation.transport.shutdown()
    return _oracle_cache[key]
