"""The active simulation: scheduler + fault plan + production integration.

A :class:`SimRuntime` is what :func:`repro.simtest.hooks.current` returns
while a simulation runs.  Production code calls exactly four things on it:

- ``on_delivery(transport, sender, receiver, kind)`` from
  ``Transport._send_one`` — counts deliveries and applies message faults
  (forced drops, extra delay, worker crash/revive) at deterministic points;
- ``run_fanout(n, attempt)`` from ``Transport.send_many`` — replaces the
  thread-pool dispatch of a parallel group with sequential execution in a
  seeded permutation order, yielding to the scheduler between sends (the
  clock still charges ``max()`` over the group, so fan-out *semantics* are
  unchanged — only the nondeterministic thread timing is gone);
- ``flow_step(label)`` from step boundaries (runner entry,
  ``ExecutionContext.check_cancelled``, ``SMPCCluster.aggregate``) — counts
  steps, applies cancellation faults, and yields;
- ``register_queue(queue)`` from ``ExperimentQueue.start()`` — sim-mode
  queues spawn no worker threads; the runtime dispatches claimed jobs as
  scheduler tasks, honoring ``max_concurrent``.

Yield points are placed only where the calling thread holds no lock another
task could need (between fan-out attempts, at step boundaries before the
SMPC cluster lock, never inside a single ``send()``), so a parked task can
never deadlock the simulation; a violation trips the scheduler watchdog.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import ExperimentNotFoundError, MasterCrashError, SimTestError
from repro.simtest import hooks
from repro.simtest.faults import FaultPlan
from repro.simtest.scheduler import DEFAULT_STEP_TIMEOUT, SimScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.jobs import ExperimentQueue


class SimRuntime:
    """One deterministic simulation run."""

    def __init__(
        self,
        seed: int,
        parallelism: int = 1,
        faults: FaultPlan | None = None,
        step_timeout: float = DEFAULT_STEP_TIMEOUT,
    ) -> None:
        if parallelism < 1:
            raise SimTestError("parallelism must be >= 1")
        self.seed = seed
        self.parallelism = parallelism
        self.faults = faults or FaultPlan()
        self.scheduler = SimScheduler(seed, step_timeout=step_timeout)
        #: Scheduling decisions + fired faults, in order (see transcript()).
        self.transcript = self.scheduler.transcript
        self.deliveries = 0
        self.flow_steps = 0
        #: Plan nodes dispatched while this simulation was active (counted
        #: only — plan-node dispatch must not shift fault addressing or the
        #: scheduler transcript, which are pinned by the replay corpus).
        self.plan_nodes = 0
        #: Workers a ``revive`` fault brought back (invariant checkers must
        #: not flag their later traffic as post-eviction resurrection).
        self.revived_workers: set[str] = set()
        #: Short names used in fault specs (``job1``) -> real experiment ids.
        self.job_aliases: dict[str, str] = {}
        #: Set once a ``crash@N:master`` fault fires.  From then on every
        #: simulation hook raises :class:`~repro.errors.MasterCrashError`,
        #: unwinding all in-flight tasks — the process is "dead", and the
        #: harness restarts the service from its state directory.
        self.master_crashed = False
        self._fired = [False] * len(self.faults.faults)
        self._queue: "ExperimentQueue | None" = None
        self._job_tasks: list[Any] = []

    @contextlib.contextmanager
    def activate(self) -> Iterator["SimRuntime"]:
        """Install this runtime as the process-wide active simulation."""
        hooks.install(self)
        try:
            yield self
        finally:
            hooks.uninstall(self)

    def alias(self, name: str, job_id: str) -> None:
        """Map a fault-spec job name (``job1``) to a submitted experiment."""
        self.job_aliases[name] = job_id

    # ------------------------------------------------------- transport hooks

    def on_delivery(
        self, transport, sender: str, receiver: str, kind: str
    ) -> tuple[bool, float]:
        """Count one delivery attempt; returns (forced_drop, extra_seconds).

        Crash/revive faults flip the target's reachability on the transport
        *before* this delivery, so its own down-check sees the new state.
        """
        self._check_master_alive()
        self.deliveries += 1
        count = self.deliveries
        forced_drop = False
        extra = 0.0
        for index, fault in enumerate(self.faults.faults):
            if self._fired[index] or fault.at > count or fault.is_master_crash:
                continue
            if fault.kind == "drop":
                if fault.target is not None and fault.target != receiver:
                    continue
                self._fired[index] = True
                forced_drop = True
                self.transcript.append(
                    f"fault {fault.spec()} fired delivery={count} receiver={receiver}"
                )
            elif fault.kind == "delay":
                if fault.target is not None and fault.target != receiver:
                    continue
                self._fired[index] = True
                extra += fault.amount
                self.transcript.append(
                    f"fault {fault.spec()} fired delivery={count} receiver={receiver}"
                )
            elif fault.kind == "crash":
                self._fired[index] = True
                transport.set_down(fault.target, True)
                self.transcript.append(f"fault {fault.spec()} fired delivery={count}")
            elif fault.kind == "revive":
                self._fired[index] = True
                transport.set_down(fault.target, False)
                self.revived_workers.add(fault.target)
                self.transcript.append(f"fault {fault.spec()} fired delivery={count}")
        return forced_drop, extra

    def run_fanout(self, n: int, attempt: Callable[[int], Any]) -> list[Any]:
        """Dispatch a parallel group sequentially in seeded order.

        Results return indexed by original request position.  Called from a
        scheduler task, control yields before every send so other tasks can
        interleave mid-fan-out; called off-task (federation setup before the
        simulation is driven) the group just runs in permuted order.
        """
        order = self.scheduler.permute(n)
        if self._consume_reorder():
            order.reverse()
        results: list[Any] = [None] * n
        for index in order:
            self.scheduler.checkpoint(f"fanout[{index}]")
            self._check_master_alive()
            results[index] = attempt(index)
        return results

    def _consume_reorder(self) -> bool:
        reordered = False
        for index, fault in enumerate(self.faults.faults):
            if (
                not self._fired[index]
                and fault.kind == "reorder"
                and fault.at <= self.deliveries + 1
            ):
                self._fired[index] = True
                reordered = True
                self.transcript.append(
                    f"fault {fault.spec()} fired delivery={self.deliveries}"
                )
        return reordered

    # ------------------------------------------------------------ flow hooks

    def flow_step(self, label: str) -> None:
        """A step boundary: count, apply step faults (cancel, master crash),
        yield."""
        self._check_master_alive()
        self.flow_steps += 1
        count = self.flow_steps
        for index, fault in enumerate(self.faults.faults):
            if (
                self._fired[index]
                or fault.kind != "cancel"
                or fault.at < 1
                or fault.at > count
            ):
                continue
            self._fired[index] = True
            self._cancel(fault.target, f"fault {fault.spec()} fired step={count}")
        for index, fault in enumerate(self.faults.faults):
            if (
                self._fired[index]
                or not fault.is_master_crash
                or fault.at > count
            ):
                continue
            self._fired[index] = True
            self.master_crashed = True
            self.transcript.append(f"fault {fault.spec()} fired step={count}")
        self._check_master_alive()
        self.scheduler.checkpoint(label)

    def _check_master_alive(self) -> None:
        if self.master_crashed:
            raise MasterCrashError("the simulated master process has crashed")

    def plan_node(self, label: str) -> None:
        """One flow-plan node was dispatched.

        Deliberately *not* a step boundary: no fault check, no scheduler
        checkpoint, no transcript entry.  Anything more would renumber the
        byte-pinned corpus transcripts recorded before the plan IR existed.
        """
        self.plan_nodes += 1

    def apply_predispatch_cancels(self) -> None:
        """Fire ``cancel@0`` faults (guaranteed pre-dispatch cancellation).

        The harness calls this after submitting jobs and before driving the
        scheduler, while every job is still queued.
        """
        for index, fault in enumerate(self.faults.faults):
            if self._fired[index] or fault.kind != "cancel" or fault.at != 0:
                continue
            self._fired[index] = True
            self._cancel(fault.target, f"fault {fault.spec()} fired pre-dispatch")

    def _cancel(self, target: str, note: str) -> None:
        job_id = self.job_aliases.get(target, target)
        if self._queue is None:
            self.transcript.append(f"{note} (no queue)")
            return
        try:
            initiated = self._queue.cancel(job_id)
        except ExperimentNotFoundError:
            self.transcript.append(f"{note} (unknown job {job_id})")
            return
        self.transcript.append(f"{note} job={job_id} initiated={initiated}")

    # --------------------------------------------------------- queue driving

    def register_queue(self, queue: "ExperimentQueue") -> None:
        if self._queue is not None and self._queue is not queue:
            raise SimTestError("a simulation drives exactly one experiment queue")
        self._queue = queue

    def _in_flight(self) -> int:
        return sum(1 for task in self._job_tasks if not task.done)

    def maybe_dispatch(self) -> bool:
        """Claim queued jobs into scheduler tasks up to the parallelism cap."""
        queue = self._queue
        if queue is None or self.master_crashed:
            return False
        dispatched = False
        while self._in_flight() < self.parallelism:
            job = queue.sim_claim()
            if job is None:
                break
            task = self.scheduler.spawn(
                f"job:{job.job_id}", lambda claimed=job: queue._execute_claimed(claimed)
            )
            self._job_tasks.append(task)
            dispatched = True
        return dispatched

    def drive(self) -> None:
        """Run dispatch + cooperative scheduling until the system is idle."""
        self._check_driver_thread()
        while True:
            dispatched = self.maybe_dispatch()
            stepped = self.scheduler.step_once()
            if not dispatched and not stepped:
                if (
                    self._queue is not None
                    and self._queue.sim_pending()
                    and not self.master_crashed
                ):
                    raise SimTestError("simulation stalled with queued jobs")
                return

    def drive_until(self, predicate: Callable[[], bool]) -> None:
        """Advance the simulation until ``predicate()`` holds (or it stalls)."""
        self._check_driver_thread()
        while not predicate():
            dispatched = self.maybe_dispatch()
            stepped = self.scheduler.step_once()
            if not dispatched and not stepped:
                raise SimTestError("simulation went idle before the awaited condition")

    def _check_driver_thread(self) -> None:
        if self.scheduler.current_task() is not None:
            raise SimTestError(
                "the simulation must be driven from outside its own tasks"
            )

    def unhandled_errors(self) -> list[tuple[str, BaseException]]:
        """Task-body exceptions that escaped the queue's error handling.

        A :class:`~repro.errors.MasterCrashError` is the *intended* unwind
        of a simulated crash, not an escape — tasks it killed are not
        failures.
        """
        return [
            (name, task.error)
            for name, task in sorted(self.scheduler.tasks.items())
            if task.error is not None
            and not isinstance(task.error, MasterCrashError)
        ]
