"""The production-side hook surface of the simulation harness.

Every call site in the runtime (transport dispatch, queue start, flow step
boundaries, SMPC aggregation) consults :func:`current` — a single module
global that is ``None`` unless a simulation is active.  Real runs therefore
pay one attribute read per hook and behave exactly as before; the behavior
change exists only inside a :meth:`~repro.simtest.runtime.SimRuntime.activate`
block.

``REPRO_SIMTEST`` is the kill switch: it defaults to ``off`` (no simulation
unless a harness activates one programmatically), and setting it explicitly
to ``off``/``0``/``false`` additionally *forbids* activation, so a deployment
can guarantee the cooperative scheduler never replaces its real thread
pools.  The harness sets it to ``on`` for the duration of a simulation so
subprocesses and log lines can tell simulated runs apart.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.errors import SimTestError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simtest.runtime import SimRuntime

#: Environment knob; ``off`` is both the default state and the hard disable.
SIMTEST_ENV = "REPRO_SIMTEST"

_DISABLED_VALUES = {"off", "0", "false", "disabled"}

_active: "Optional[SimRuntime]" = None


def current() -> "Optional[SimRuntime]":
    """The active simulation runtime, or None in a real run (the default)."""
    return _active


def simtest_mode() -> str:
    """``on`` while a simulation drives this process, else ``off``."""
    return "on" if _active is not None else "off"


def hard_disabled() -> bool:
    """True when ``REPRO_SIMTEST`` explicitly forbids simulation."""
    return os.environ.get(SIMTEST_ENV, "").strip().lower() in _DISABLED_VALUES


def install(runtime: "SimRuntime") -> None:
    """Make ``runtime`` the process-wide active simulation.

    Exactly one simulation may be active at a time; nesting would make the
    hook call sites ambiguous about which scheduler owns the current thread.
    """
    global _active
    if hard_disabled():
        raise SimTestError(
            f"simulation testing is disabled ({SIMTEST_ENV}="
            f"{os.environ.get(SIMTEST_ENV)!r}); unset it to run simulations"
        )
    if _active is not None:
        raise SimTestError("a simulation runtime is already active")
    _active = runtime
    os.environ[SIMTEST_ENV] = "on"


def uninstall(runtime: "SimRuntime") -> None:
    """Deactivate ``runtime``; a mismatch is a harness bug and raises."""
    global _active
    if _active is not runtime:
        raise SimTestError("uninstall of a runtime that is not active")
    _active = None
    os.environ.pop(SIMTEST_ENV, None)
