"""Randomized search over (seed, fault plan, parallelism) scenarios.

The fuzzer samples :class:`~repro.simtest.harness.SimSpec` tuples, runs each
through :func:`~repro.simtest.harness.run_simulation`, and on the first
failure greedily shrinks the scenario — dropping faults one at a time,
reducing the job count, then the parallelism — to a minimal spec that still
fails, reported as a single replayable command line.  Because a spec fully
determines a simulation, the shrunk command reproduces the failure exactly
on any machine.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.simtest.faults import Fault, FaultPlan
from repro.simtest.harness import (
    ARCHETYPES,
    SIM_WORKERS,
    SimReport,
    SimSpec,
    repro_command,
    run_simulation,
)

#: Sampling ranges: delivery counters sized to a few experiments' traffic,
#: step counters to a few flows' checkpoints.
MAX_DELIVERY_AT = 80
MAX_STEP_AT = 16
PARALLELISM_CHOICES = (1, 2, 4, 8)
MAX_JOBS = 4
MAX_FAULTS = 3


@dataclass
class RunOutcome:
    """One simulation attempt: a report, or the exception that broke it."""

    spec: SimSpec
    report: SimReport | None = None
    error: BaseException | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None or (self.report is not None and not self.report.ok)

    def failures(self) -> list[str]:
        if self.error is not None:
            return [f"harness: {type(self.error).__name__}: {self.error}"]
        return self.report.failures() if self.report is not None else []


@dataclass
class FuzzResult:
    """The outcome of one fuzzing session."""

    runs: int
    elapsed_seconds: float
    specs: list[SimSpec] = field(default_factory=list)
    failure: RunOutcome | None = None
    shrunk: SimSpec | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def command(self) -> str | None:
        return repro_command(self.shrunk) if self.shrunk is not None else None


def run_one(spec: SimSpec) -> RunOutcome:
    """Run one scenario, capturing harness-level exceptions as failures."""
    try:
        return RunOutcome(spec, report=run_simulation(spec))
    except Exception as error:  # noqa: BLE001 - a crashing sim is a finding
        return RunOutcome(spec, error=error)


def sample_spec(rng: random.Random, master_crash: bool = False) -> SimSpec:
    """Draw one scenario (seed, parallelism, jobs, fault plan).

    With ``master_crash`` the kind pool additionally contains ``mcrash``
    (a ``crash@N:master`` step fault), so the durability CI lane fuzzes
    kill-and-restart recovery alongside the ordinary fault kinds.
    """
    jobs = rng.randint(1, MAX_JOBS)
    kinds = ("drop", "drop", "delay", "crash", "cancel", "reorder")
    if master_crash:
        kinds += ("mcrash", "mcrash")
    faults = []
    for _ in range(rng.randint(0, MAX_FAULTS)):
        kind = rng.choice(kinds)
        if kind == "mcrash":
            faults.append(Fault("crash", rng.randint(1, MAX_STEP_AT), "master"))
        elif kind == "drop":
            target = rng.choice((None,) + SIM_WORKERS)
            faults.append(Fault("drop", rng.randint(1, MAX_DELIVERY_AT), target))
        elif kind == "delay":
            faults.append(
                Fault(
                    "delay",
                    rng.randint(1, MAX_DELIVERY_AT),
                    rng.choice((None,) + SIM_WORKERS),
                    amount=rng.choice((0.01, 0.05, 0.25)),
                )
            )
        elif kind == "crash":
            worker = rng.choice(SIM_WORKERS)
            at = rng.randint(1, MAX_DELIVERY_AT)
            faults.append(Fault("crash", at, worker))
            if rng.random() < 0.5:
                faults.append(
                    Fault("revive", at + rng.randint(5, 30), worker)
                )
        elif kind == "cancel":
            faults.append(
                Fault("cancel", rng.randint(0, MAX_STEP_AT), f"job{rng.randint(1, jobs)}")
            )
        else:
            faults.append(Fault("reorder", rng.randint(1, MAX_DELIVERY_AT)))
    return SimSpec(
        seed=rng.randrange(2**32),
        parallelism=rng.choice(PARALLELISM_CHOICES),
        jobs=jobs,
        faults=FaultPlan.of(faults[:MAX_FAULTS]),
    )


def shrink(spec: SimSpec, still_fails: Callable[[SimSpec], bool] | None = None) -> SimSpec:
    """Greedy delta debugging to a locally-minimal failing spec.

    Each pass tries removing one fault, then lowering the job count, then
    the parallelism; passes repeat until a fixpoint.  ``still_fails``
    defaults to re-running the simulation (tests inject cheaper oracles).
    """
    if still_fails is None:
        still_fails = lambda candidate: run_one(candidate).failed  # noqa: E731
    changed = True
    while changed:
        changed = False
        for index in range(len(spec.faults)):
            candidate = spec.replace(faults=spec.faults.without(index))
            if still_fails(candidate):
                spec = candidate
                changed = True
                break
        if changed:
            continue
        for jobs in range(1, spec.jobs):
            candidate = spec.replace(jobs=jobs)
            if still_fails(candidate):
                spec = candidate
                changed = True
                break
        if changed:
            continue
        for parallelism in (1, 2, 4):
            if parallelism >= spec.parallelism:
                break
            candidate = spec.replace(parallelism=parallelism)
            if still_fails(candidate):
                spec = candidate
                changed = True
                break
    return spec


def fuzz(
    runs: int,
    seed: int = 0,
    budget_seconds: float | None = None,
    emit: Callable[[str], None] | None = None,
    master_crash: bool = False,
) -> FuzzResult:
    """Sample and run up to ``runs`` scenarios; shrink the first failure.

    ``budget_seconds`` additionally caps the session by wall time (the CI
    lane's randomized budget).  ``emit`` receives one progress line per run.
    ``master_crash`` admits ``crash@N:master`` faults into the sample pool.
    """
    rng = random.Random(f"simtest-fuzz-{seed}")
    started = time.monotonic()
    result = FuzzResult(runs=0, elapsed_seconds=0.0)
    for index in range(runs):
        if budget_seconds is not None and time.monotonic() - started >= budget_seconds:
            break
        spec = sample_spec(rng, master_crash=master_crash)
        outcome = run_one(spec)
        result.runs += 1
        result.specs.append(spec)
        if emit is not None:
            status = "FAIL" if outcome.failed else "ok"
            emit(f"[{index + 1}/{runs}] {status} {spec.spec()}")
        if outcome.failed:
            if emit is not None:
                for line in outcome.failures():
                    emit(f"  {line}")
                emit("shrinking...")
            result.failure = outcome
            result.shrunk = shrink(spec)
            if emit is not None:
                emit(f"shrunk to: {result.shrunk.spec()}")
                emit(f"reproduce with: {repro_command(result.shrunk)}")
            break
    result.elapsed_seconds = time.monotonic() - started
    return result


def write_corpus(path: str, specs: list[SimSpec]) -> None:
    """Write scenario specs one per line (the replayable fuzz corpus)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# simtest corpus: one seed=...;par=...;jobs=...;faults=... per line\n")
        for spec in specs:
            handle.write(spec.spec() + "\n")


def read_corpus(path: str) -> list[SimSpec]:
    with open(path, "r", encoding="utf-8") as handle:
        return [
            SimSpec.parse(line)
            for line in handle
            if line.strip() and not line.lstrip().startswith("#")
        ]


__all__ = [
    "ARCHETYPES",
    "FuzzResult",
    "RunOutcome",
    "fuzz",
    "read_corpus",
    "run_one",
    "sample_spec",
    "shrink",
    "write_corpus",
]
