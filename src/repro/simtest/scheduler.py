"""Cooperative task scheduling over real threads.

The production runtime overlaps work with a fan-out thread pool and queue
executor threads; thread timing makes their interleaving nondeterministic.
:class:`SimScheduler` replaces timing with *choice*: each unit of concurrent
work becomes a :class:`SimTask` — a real (daemon) thread that is parked on a
semaphore whenever it is not the one task the scheduler has chosen to run.
At every yield point exactly one task is runnable, the scheduler picks the
next one with a seeded RNG over a sorted candidate list, and therefore the
complete interleaving is a pure function of the seed.

The ping-pong per task is two binary semaphores:

- the driver calls :meth:`SimTask.step`: release ``resume``, block on
  ``yielded``;
- the task thread calls :meth:`SimTask.wait_turn` inside
  :meth:`SimScheduler.checkpoint`: release ``yielded``, block on ``resume``.

At most one of driver/task is ever running, so task-visible state needs no
additional locking.  A task that blocks forever (e.g. a yield point placed
inside a lock another parked task holds) trips a watchdog timeout and raises
:class:`~repro.errors.SimTestError` with the stuck thread's stack, instead
of hanging the test run.
"""

from __future__ import annotations

import random
import sys
import threading
import traceback
from typing import Callable, Optional

from repro.errors import SimTestError

#: A task thread stuck past this many wall seconds is a harness bug
#: (a yield point inside a lock); fail loudly instead of hanging CI.
DEFAULT_STEP_TIMEOUT = 30.0


class SimTask:
    """One cooperatively-scheduled unit of work on a parked daemon thread."""

    def __init__(self, name: str, fn: Callable[[], None], scheduler: "SimScheduler") -> None:
        self.name = name
        self.scheduler = scheduler
        self.done = False
        self.error: BaseException | None = None
        #: The label of the last yield point this task parked at ("spawn"
        #: before the first step, "exit" once the body returned).
        self.last_label = "spawn"
        self._fn = fn
        self._resume = threading.Semaphore(0)
        self._yielded = threading.Semaphore(0)
        self._thread = threading.Thread(
            target=self._run, name=f"simtask-{name}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        # Park until the driver's first step; the task body never runs
        # concurrently with the driver or another task.
        self._resume.acquire()
        self.scheduler._bind(self)
        try:
            self._fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced by the driver
            self.error = exc
        finally:
            self.scheduler._unbind()
            self.done = True
            self.last_label = "exit"
            self._yielded.release()

    def step(self, timeout: float) -> str:
        """Run the task until its next yield point (driver side)."""
        self._resume.release()
        if not self._yielded.acquire(timeout=timeout):
            raise SimTestError(
                f"task {self.name!r} did not yield within {timeout}s "
                f"(last label {self.last_label!r}); stuck at:\n"
                f"{self._stack_dump()}"
            )
        return self.last_label

    def wait_turn(self, label: str) -> None:
        """Park at a yield point until the driver steps us again (task side)."""
        self.last_label = label
        self._yielded.release()
        self._resume.acquire()

    def _stack_dump(self) -> str:
        frame = sys._current_frames().get(self._thread.ident)
        if frame is None:
            return "  <thread exited>"
        return "".join(traceback.format_stack(frame))


class SimScheduler:
    """Seeded driver over a set of :class:`SimTask` s.

    ``rng`` is consumed only by scheduling decisions (task choice and
    fan-out permutations), never by the system under test — the transport
    keeps its own seeded RNG — so scheduler and workload randomness cannot
    perturb each other.
    """

    def __init__(self, seed: int, step_timeout: float = DEFAULT_STEP_TIMEOUT) -> None:
        self.seed = seed
        # A string seed hashes stably across processes (unlike tuples under
        # PYTHONHASHSEED), and the prefix decorrelates it from the transport
        # RNG when a federation reuses the same integer seed.
        self.rng = random.Random(f"simtest-scheduler-{seed}")
        self.step_timeout = step_timeout
        #: Every scheduling decision, in order: the deterministic transcript.
        self.transcript: list[str] = []
        self.tasks: dict[str, SimTask] = {}
        self._local = threading.local()

    # ------------------------------------------------------------- task side

    def _bind(self, task: SimTask) -> None:
        self._local.task = task

    def _unbind(self) -> None:
        self._local.task = None

    def current_task(self) -> Optional[SimTask]:
        """The SimTask owning the calling thread, or None off-task (driver
        thread, or production code running before the simulation starts)."""
        return getattr(self._local, "task", None)

    def checkpoint(self, label: str) -> None:
        """A yield point: hand control back to the driver, if on a task.

        Safe to call from anywhere — a non-task thread just keeps running,
        so hooks in production code need no mode checks of their own.
        """
        task = self.current_task()
        if task is not None:
            task.wait_turn(label)

    def permute(self, n: int) -> list[int]:
        """A seeded permutation of range(n) (fan-out dispatch order)."""
        order = list(range(n))
        self.rng.shuffle(order)
        return order

    # ----------------------------------------------------------- driver side

    def spawn(self, name: str, fn: Callable[[], None]) -> SimTask:
        """Create a parked task; it first runs when the driver steps it."""
        if name in self.tasks:
            raise SimTestError(f"duplicate sim task name {name!r}")
        task = SimTask(name, fn, self)
        self.tasks[name] = task
        self.transcript.append(f"spawn {name}")
        return task

    def runnable(self) -> list[SimTask]:
        """Unfinished tasks in name order (the RNG picks among these)."""
        return [task for _name, task in sorted(self.tasks.items()) if not task.done]

    def step_once(self) -> bool:
        """Advance one seeded-random runnable task to its next yield point.

        Returns False when no task is runnable.  A task body that raised is
        recorded in the transcript but not re-raised here — the queue layer
        owns error semantics; the runtime surfaces truly unhandled errors.
        """
        ready = self.runnable()
        if not ready:
            return False
        task = ready[self.rng.randrange(len(ready))] if len(ready) > 1 else ready[0]
        label = task.step(self.step_timeout)
        if task.done and task.error is not None:
            self.transcript.append(
                f"step {task.name} error {type(task.error).__name__}"
            )
        else:
            self.transcript.append(f"step {task.name} {label}")
        return True

    def run_all(self) -> None:
        """Drive every task to completion."""
        while self.step_once():
            pass
