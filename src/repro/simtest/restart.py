"""Two-life crash/restart simulation: kill the master, recover, compare.

``crash@N:master`` scenarios cannot run as one linear simulation — the
fault kills the service mid-flow and everything interesting happens *after*
the process is gone.  :func:`run_crash_simulation` therefore runs two
"lives" against one durable state directory:

life 1
    a normal :class:`~repro.simtest.runtime.SimRuntime` with the full fault
    plan driving a ``MIPService(state_dir=...)`` until the crash unwinds
    every in-flight task (or, when the crash counter is never reached, to
    completion — the post-terminal cell of the crash matrix);
life 2
    a fresh runtime with the same seed and *no* faults (every one-shot
    fault belongs to life 1), a fresh federation, and a new service on the
    same state directory.  Constructing the service replays the journal,
    restores finished results into history, and re-enqueues interrupted
    jobs so they resume from their checkpoints.

The invariant suite is extended across the restart boundary: per-life
telemetry conservation (life 1 folds in the orphan meters of jobs the
crash killed), legal life-1 history *prefixes*, restart completeness
(every job terminal after life 2; restored results byte-identical to what
life 1 recorded), resume audit laws (``experiment_resumed`` in life 2, no
``experiment_finished`` in life 1 for a resumed job), the full single-life
checker over life 2, and — the durability acceptance law — byte-identical
results against an uninterrupted run of the same spec (checked when the
master crash is the only fault; other faults fire differently across the
two protocols, so byte equality is not a law there).

Nothing filesystem-specific (the temp state directory path) reaches the
transcript, so crash-scenario transcripts stay byte-comparable.
"""

from __future__ import annotations

import json
import tempfile
from typing import Any

from repro.api.service import MIPService
from repro.observability.audit import merged_events
from repro.simtest.faults import FaultPlan
from repro.simtest.invariants import (
    InvariantChecker,
    InvariantReport,
    privacy_counter_snapshot,
)
from repro.simtest.runtime import SimRuntime

#: Job states that mean "reached the end of its lifecycle".
_TERMINAL = ("success", "error", "cancelled")


def run_crash_simulation(spec) -> Any:
    """Run one ``crash@N:master`` scenario end to end (both lives)."""
    with tempfile.TemporaryDirectory(prefix="repro-sim-state-") as state_dir:
        return _run_two_lives(spec, state_dir)


def _canonical(result) -> str:
    """The byte-comparison form of a result (payload + status + error)."""
    return json.dumps(
        {"status": result.status.value, "result": result.result, "error": result.error},
        sort_keys=True,
    )


def _legal_prefix(history: tuple[str, ...]) -> bool:
    return any(
        history == legal[: len(history)]
        for legal in InvariantChecker._LEGAL_HISTORIES
    )


def _telemetry_totals(telemetries) -> dict[str, float]:
    return {
        "messages": sum(t.messages for t in telemetries),
        "bytes": sum(t.bytes_sent for t in telemetries),
        "smpc_rounds": sum(t.smpc_rounds for t in telemetries),
        "smpc_elements": sum(t.smpc_elements for t in telemetries),
    }


def _run_two_lives(spec, state_dir: str):
    from repro.simtest import harness

    # ------------------------------------------------------------- life 1
    runtime1 = SimRuntime(
        seed=spec.seed, parallelism=spec.parallelism, faults=spec.faults
    )
    with runtime1.activate():
        federation1 = harness.create_federation_for_sim(spec)
        service1 = MIPService(
            federation1, pool_size=spec.parallelism, state_dir=state_dir
        )
        baseline1 = federation1.transport.snapshot()
        cluster1 = federation1.smpc_cluster
        smpc_baseline1 = (
            (cluster1.communication.rounds, cluster1.communication.elements)
            if cluster1 is not None
            else (0, 0)
        )
        job_ids = []
        for index, request in enumerate(
            harness.sim_requests(spec.jobs, algo=spec.algo)
        ):
            job_id = f"sim_job_{index + 1}"
            runtime1.alias(f"job{index + 1}", job_id)
            service1.engine.submit(request, experiment_id=job_id)
            job_ids.append(job_id)
        runtime1.apply_predispatch_cancels()
        runtime1.drive()
        queue1 = service1.engine.queue
        histories1 = queue1.job_histories()
        life1_results = {}
        orphan_telemetry = {}
        for job_id in job_ids:
            history = histories1.get(job_id, ())
            if history and history[-1] in _TERMINAL:
                life1_results[job_id] = queue1.get(job_id)
            else:
                # The crash killed this job mid-flight; its per-job meters
                # were never collected into a result, so read them here for
                # the conservation law.
                orphan_telemetry[job_id] = queue1._collect_telemetry(job_id)
        life1_end = federation1.transport.snapshot()
        life1_smpc_end = (
            (cluster1.communication.rounds, cluster1.communication.elements)
            if cluster1 is not None
            else (0, 0)
        )
        life1_events = {
            job_id: merged_events(federation1.audit_logs(), job_id=job_id)
            for job_id in job_ids
        }
        service1.shutdown(wait=True)
    federation1.transport.shutdown()
    crashed = runtime1.master_crashed

    # ------------------------------------------------------------- life 2
    runtime2 = SimRuntime(
        seed=spec.seed, parallelism=spec.parallelism, faults=FaultPlan()
    )
    with runtime2.activate():
        federation2 = harness.create_federation_for_sim(spec)
        service2 = MIPService(
            federation2, pool_size=spec.parallelism, state_dir=state_dir
        )
        recovery = service2.recovery or {}
        baseline2 = federation2.transport.snapshot()
        cluster2 = federation2.smpc_cluster
        smpc_baseline2 = (
            (cluster2.communication.rounds, cluster2.communication.elements)
            if cluster2 is not None
            else (0, 0)
        )
        privacy_baseline2 = privacy_counter_snapshot()
        runtime2.drive()
        results = [service2.engine.get(job_id) for job_id in job_ids]
        histories2 = service2.engine.queue.job_histories()
        service2.shutdown(wait=True)
    resumed = set(recovery.get("resumed", ()))
    restored = set(recovery.get("restored", ()))
    resumed_results = [r for r in results if r.experiment_id in resumed]

    report = InvariantReport()
    _check_life1_conservation(
        report,
        life1_results,
        orphan_telemetry,
        baseline1,
        life1_end,
        smpc_baseline1,
        life1_smpc_end,
    )
    _check_life1_prefixes(report, histories1)
    _check_restart_completeness(
        report, spec, job_ids, results, life1_results, resumed, restored, crashed
    )
    _check_resume_audit(report, resumed, life1_events, federation2)
    checker2 = InvariantChecker(
        federation=federation2,
        results=resumed_results,
        histories=histories2,
        baseline=baseline2,
        smpc_baseline=smpc_baseline2,
        privacy_baseline=privacy_baseline2,
        oracles={
            result.experiment_id: oracle
            for result in resumed_results
            if result.status.value == "success"
            and not result.evicted
            and (oracle := harness.plain_oracle(result.request)) is not None
        },
        revived_workers=runtime2.revived_workers,
    )
    for name, ok, detail in checker2.check().entries:
        report.record(f"life2-{name}", ok, detail)
    federation2.transport.shutdown()
    _check_resume_determinism(report, spec, results)

    unhandled = runtime1.unhandled_errors() + runtime2.unhandled_errors()
    header = f"# sim {spec.spec()}"
    marker = (
        "# restart "
        f"restored={sorted(restored)} resumed={sorted(resumed)} "
        f"orphans={recovery.get('orphan_records', 0)}"
    )
    transcript = (
        "\n".join(
            [header, *runtime1.transcript, marker, *runtime2.transcript, report.format()]
        )
        + "\n"
    )
    return harness.SimReport(
        spec=spec,
        results=results,
        invariants=report,
        transcript=transcript,
        unhandled=unhandled,
    )


def _check_life1_conservation(
    report, life1_results, orphan_telemetry, baseline, end, smpc_baseline, smpc_end
) -> None:
    """Life-1 global meter deltas equal terminal-result telemetry plus the
    orphan meters of crash-killed jobs — the crash loses work, not
    accounting."""
    attributed = _telemetry_totals(
        [r.telemetry for r in life1_results.values()]
        + list(orphan_telemetry.values())
    )
    problems = []
    if attributed["messages"] != end.messages - baseline.messages:
        problems.append(
            f"messages: jobs={attributed['messages']} "
            f"global={end.messages - baseline.messages}"
        )
    if attributed["bytes"] != end.bytes_sent - baseline.bytes_sent:
        problems.append(
            f"bytes: jobs={attributed['bytes']} "
            f"global={end.bytes_sent - baseline.bytes_sent}"
        )
    if attributed["smpc_rounds"] != smpc_end[0] - smpc_baseline[0]:
        problems.append(
            f"smpc rounds: jobs={attributed['smpc_rounds']} "
            f"global={smpc_end[0] - smpc_baseline[0]}"
        )
    if attributed["smpc_elements"] != smpc_end[1] - smpc_baseline[1]:
        problems.append(
            f"smpc elements: jobs={attributed['smpc_elements']} "
            f"global={smpc_end[1] - smpc_baseline[1]}"
        )
    report.record(
        "life1-telemetry-conservation", not problems, "; ".join(sorted(problems))
    )


def _check_life1_prefixes(report, histories1) -> None:
    """Every life-1 history is a legal lifecycle path or a proper prefix of
    one (a crash may truncate a history but never scramble it)."""
    problems = [
        f"{job_id}: {'>'.join(histories1[job_id])}"
        for job_id in sorted(histories1)
        if not _legal_prefix(histories1[job_id])
    ]
    report.record("life1-legal-prefixes", not problems, "; ".join(problems))


def _check_restart_completeness(
    report, spec, job_ids, results, life1_results, resumed, restored, crashed
) -> None:
    """After life 2 every job is terminal; jobs that finished in life 1 were
    restored (not re-run) with byte-identical results; jobs the crash
    interrupted were resumed."""
    problems = []
    for result in results:
        if result.status.value not in _TERMINAL:
            problems.append(f"{result.experiment_id}: non-terminal after restart")
    for job_id in sorted(life1_results):
        if job_id not in restored:
            problems.append(f"{job_id}: finished in life 1 but not restored")
            continue
        recovered = next(r for r in results if r.experiment_id == job_id)
        if _canonical(recovered) != _canonical(life1_results[job_id]):
            problems.append(f"{job_id}: restored result differs from life 1")
    for job_id in sorted(set(job_ids) - set(life1_results)):
        if job_id not in resumed:
            problems.append(f"{job_id}: interrupted in life 1 but not resumed")
    if crashed and not resumed and len(life1_results) < len(job_ids):
        problems.append("crash fired but nothing was resumed")
    report.record("restart-completeness", not problems, "; ".join(problems))


def _check_resume_audit(report, resumed, life1_events, federation2) -> None:
    """A resumed job carries no ``experiment_finished`` from its first life
    and is audited ``experiment_resumed`` exactly once in its second."""
    problems = []
    logs2 = federation2.audit_logs()
    for job_id in sorted(resumed):
        names1 = [e["event"] for e in life1_events.get(job_id, ())]
        if "experiment_finished" in names1:
            problems.append(f"{job_id}: finished in life 1 yet resumed")
        events2 = merged_events(logs2, job_id=job_id, event="experiment_resumed")
        if len(events2) != 1:
            problems.append(
                f"{job_id}: expected 1 experiment_resumed audit, saw {len(events2)}"
            )
    report.record("restart-audit-completeness", not problems, "; ".join(problems))


def _check_resume_determinism(report, spec, results) -> None:
    """The acceptance law: when the master crash is the *only* fault, the
    crash-and-resume run must produce byte-identical per-job outcomes to an
    uninterrupted run of the same spec.  Mixed fault plans are skipped —
    their other one-shot faults fire at different counters across the two
    protocols, so byte equality is not a law there."""
    from repro.simtest import harness

    if len(spec.faults.master_crashes()) != len(spec.faults):
        report.record(
            "resume-determinism", True, "skipped (mixed fault plan)"
        )
        return
    clean = harness.run_simulation(spec.replace(faults=FaultPlan()))
    by_id = {r.experiment_id: r for r in clean.results}
    problems = []
    for result in results:
        reference = by_id.get(result.experiment_id)
        if reference is None:
            problems.append(f"{result.experiment_id}: missing from clean run")
        elif _canonical(result) != _canonical(reference):
            problems.append(
                f"{result.experiment_id}: differs from uninterrupted run"
            )
    detail = "; ".join(problems) if problems else f"compared={len(results)}"
    report.record("resume-determinism", not problems, detail)
