"""Deterministic simulation testing for the federation runtime.

The subsystem virtualizes the platform's real concurrency — the transport
fan-out pool and the experiment queue's executor threads — into
cooperatively-scheduled tasks whose interleaving is a pure function of a
seed, layers a composable fault plan (drops, delays, reorders, crashes,
cancellations) on top, and checks system-wide invariants against the
observability layer after every run.  Real runs are untouched: production
code consults :func:`repro.simtest.hooks.current`, which is None unless a
harness activated a runtime (and ``REPRO_SIMTEST=off`` forbids even that).

Entry points: :func:`~repro.simtest.harness.run_simulation` for one
scenario, :func:`~repro.simtest.fuzz.fuzz` for randomized search with
shrinking, and the ``repro fuzz`` CLI for both.

The heavyweight symbols resolve lazily (PEP 562): production modules import
``repro.simtest.hooks`` at module scope, so this package init must not pull
the harness (and through it the whole experiment stack) back in.
"""

from repro.simtest.faults import Fault, FaultPlan
from repro.simtest.scheduler import SimScheduler, SimTask

_LAZY = {
    "SimRuntime": ("repro.simtest.runtime", "SimRuntime"),
    "InvariantChecker": ("repro.simtest.invariants", "InvariantChecker"),
    "InvariantReport": ("repro.simtest.invariants", "InvariantReport"),
    "SimReport": ("repro.simtest.harness", "SimReport"),
    "SimSpec": ("repro.simtest.harness", "SimSpec"),
    "repro_command": ("repro.simtest.harness", "repro_command"),
    "run_simulation": ("repro.simtest.harness", "run_simulation"),
}

__all__ = [
    "Fault",
    "FaultPlan",
    "InvariantChecker",
    "InvariantReport",
    "SimReport",
    "SimRuntime",
    "SimScheduler",
    "SimSpec",
    "SimTask",
    "repro_command",
    "run_simulation",
]


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
