"""The composable fault-plan DSL.

A :class:`FaultPlan` is an ordered set of one-shot faults, each keyed to a
deterministic counter of the simulation, so the same plan under the same
seed always strikes the same logical instant:

- message faults fire on the global *delivery* counter (every attempted
  delivery in ``Transport._send_one``, in deterministic order because the
  scheduler serializes all sends):

  ``drop@12`` / ``drop@12:hospital_a``
      delivery 12 (to ``hospital_a``, if named) is lost in flight and raises
      :class:`~repro.errors.NodeUnavailableError`, exercising the retry /
      eviction machinery exactly like a drop-probability loss.
  ``delay@7=0.05`` / ``delay@7:hospital_a=0.05``
      delivery 7 costs 0.05 extra simulated seconds.
  ``crash@9:hospital_b``
      the named worker goes down right before delivery 9.
  ``revive@30:hospital_b``
      the named worker comes back right before delivery 30.
  ``reorder@3``
      the first fan-out group at/after delivery 3 dispatches in reversed
      (post-permutation) order.

- cancellation faults fire on the global *flow-step* counter (every
  checkpoint a running experiment passes):

  ``cancel@5:job2``
      cancel the experiment aliased ``job2`` when the step counter reaches
      5; ``cancel@0:job2`` cancels before dispatch (right after submit).

  ``crash@5:master``
      the *master process* dies when the flow-step counter reaches 5 —
      every in-flight experiment unwinds with
      :class:`~repro.errors.MasterCrashError`, nothing further is
      journaled, and the harness restarts the service from its
      ``state_dir`` to exercise recovery.  A ``crash`` fault whose target
      is ``master`` is the one crash keyed to the step counter (worker
      crashes stay on the delivery counter).

Faults are comma-joined into a spec string (``drop@3,crash@9:hospital_b``)
that round-trips through :meth:`FaultPlan.parse` / :meth:`FaultPlan.spec`,
so a failing fuzz case prints as one flag value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SimTestError

#: Fault kinds keyed to the delivery counter.
DELIVERY_KINDS = ("drop", "delay", "crash", "revive", "reorder")
#: Fault kinds keyed to the flow-step counter.
STEP_KINDS = ("cancel",)
#: The special ``crash`` target that kills the master instead of a worker.
MASTER_TARGET = "master"

_FAULT_RE = re.compile(
    r"^(?P<kind>[a-z]+)@(?P<at>\d+)(?::(?P<target>[A-Za-z0-9_.-]+))?"
    r"(?:=(?P<amount>[0-9.eE+-]+))?$"
)


@dataclass(frozen=True, order=True)
class Fault:
    """One scheduled fault; immutable and totally ordered for stable specs."""

    kind: str
    at: int
    target: str | None = None
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in DELIVERY_KINDS + STEP_KINDS:
            raise SimTestError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise SimTestError(f"fault {self.kind!r} needs a counter >= 0")
        if self.kind in ("crash", "revive", "cancel") and not self.target:
            raise SimTestError(f"fault {self.kind!r} needs a target (kind@N:target)")
        if self.is_master_crash and self.at < 1:
            raise SimTestError(
                "crash@N:master fires on the flow-step counter and needs N >= 1"
            )
        if self.kind == "delay" and self.amount <= 0:
            raise SimTestError("delay faults need an amount (delay@N=seconds)")

    def spec(self) -> str:
        text = f"{self.kind}@{self.at}"
        if self.target:
            text += f":{self.target}"
        if self.kind == "delay":
            text += f"={self.amount:g}"
        return text

    @property
    def is_master_crash(self) -> bool:
        return self.kind == "crash" and self.target == MASTER_TARGET


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of one-shot faults."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a comma-joined fault spec; empty/``none`` is the empty plan."""
        spec = spec.strip()
        if not spec or spec == "none":
            return cls()
        faults = []
        for item in spec.split(","):
            item = item.strip()
            match = _FAULT_RE.match(item)
            if match is None:
                raise SimTestError(f"malformed fault {item!r} in plan {spec!r}")
            amount = match.group("amount")
            faults.append(
                Fault(
                    kind=match.group("kind"),
                    at=int(match.group("at")),
                    target=match.group("target"),
                    amount=float(amount) if amount is not None else 0.0,
                )
            )
        return cls(tuple(faults))

    @classmethod
    def of(cls, faults: Iterable[Fault]) -> "FaultPlan":
        return cls(tuple(faults))

    def spec(self) -> str:
        """The canonical spec string (``none`` for the empty plan)."""
        if not self.faults:
            return "none"
        return ",".join(fault.spec() for fault in self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def without(self, index: int) -> "FaultPlan":
        """A copy with one fault removed (the shrinker's reduction move)."""
        return FaultPlan(self.faults[:index] + self.faults[index + 1 :])

    def delivery_faults(self) -> list[Fault]:
        return [
            f
            for f in self.faults
            if f.kind in DELIVERY_KINDS and not f.is_master_crash
        ]

    def step_faults(self) -> list[Fault]:
        return [f for f in self.faults if f.kind in STEP_KINDS or f.is_master_crash]

    def master_crashes(self) -> list[Fault]:
        return [f for f in self.faults if f.is_master_crash]
