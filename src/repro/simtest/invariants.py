"""System-wide laws checked after every simulated experiment batch.

The checker treats the observability layer as the oracle: transport meters,
job state histories, the append-only audit logs and the privacy counters
must agree with each other and with the experiment results no matter how
the scheduler interleaved the run or which faults fired.  Every check
produces a deterministic report line (no wall times, stable ordering, fixed
float formatting), so the invariant report is part of the byte-comparable
simulation transcript.

Invariants:

``telemetry-conservation``
    The per-job meters each result carries sum exactly to the delta of the
    global :class:`~repro.federation.transport.TransportStats` (and the SMPC
    protocol meter) over the run — attribution neither loses nor invents
    traffic.
``meter-hygiene``
    No per-job transport or SMPC meters survive their job (each finished
    job's meters were dropped after its result captured them).
``job-lifecycle``
    Every job's state history is a legal path of
    PENDING -> QUEUED [-> RUNNING] -> SUCCESS | ERROR | CANCELLED, with no
    states after a terminal one (no resurrection after cancel).
``audit-completeness``
    Lifecycle events exist for every job; every secure aggregate is
    preceded by ``aggregate_shared(path=smpc)`` share events from exactly
    its contributing workers; evictions in results and audit logs match
    one-to-one; no evicted worker contributes after its eviction step.
``smpc-plain-equivalence``
    For successful, zero-eviction experiments, the secure result equals a
    plain-aggregation oracle of the same request within fixed-point
    tolerance.
``privacy-monotonicity``
    Per-experiment ``privacy_spend`` totals never decrease, and the
    process-wide privacy counters never ran backwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.federation.transport import TransportStats
from repro.observability.audit import merged_events

#: Relative tolerance for secure-vs-plain value comparison (fixed-point
#: encoding error dominates; see smpc.encoding).
EQUIVALENCE_REL_TOL = 1e-4
EQUIVALENCE_ABS_TOL = 1e-6


@dataclass
class InvariantReport:
    """Ordered invariant outcomes; formats to deterministic text."""

    entries: list[tuple[str, bool, str]] = field(default_factory=list)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.entries.append((name, ok, detail))

    @property
    def ok(self) -> bool:
        return all(ok for _name, ok, _detail in self.entries)

    def failures(self) -> list[tuple[str, str]]:
        return [(name, detail) for name, ok, detail in self.entries if not ok]

    def format(self) -> str:
        lines = []
        for name, ok, detail in self.entries:
            status = "ok" if ok else "FAIL"
            lines.append(f"invariant {name} {status}" + (f" {detail}" if detail else ""))
        return "\n".join(lines)


class InvariantChecker:
    """Checks the six system-wide laws over one finished simulation.

    ``results`` are the batch's :class:`~repro.core.experiment.ExperimentResult`
    objects in submission order; ``histories`` maps job id to its recorded
    state history; ``baseline``/``smpc_baseline``/``privacy_baseline`` are
    counter snapshots taken after federation setup and before the first
    submission; ``oracles`` maps eligible job ids to plain-aggregation
    result dicts; ``revived_workers`` are workers a fault revived (exempt
    from cross-experiment resurrection complaints).
    """

    def __init__(
        self,
        federation,
        results: Sequence[Any],
        histories: Mapping[str, Sequence[str]],
        baseline: TransportStats,
        smpc_baseline: tuple[int, int],
        privacy_baseline: Mapping[str, float],
        oracles: Mapping[str, Mapping[str, Any]] | None = None,
        revived_workers: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        self.federation = federation
        self.results = list(results)
        self.histories = {job: tuple(states) for job, states in histories.items()}
        self.baseline = baseline
        self.smpc_baseline = smpc_baseline
        self.privacy_baseline = dict(privacy_baseline)
        self.oracles = dict(oracles or {})
        self.revived_workers = set(revived_workers)

    def check(self) -> InvariantReport:
        report = InvariantReport()
        self._check_conservation(report)
        self._check_meter_hygiene(report)
        self._check_lifecycle(report)
        self._check_audit_completeness(report)
        self._check_equivalence(report)
        self._check_privacy_monotonicity(report)
        return report

    # ------------------------------------------------- telemetry conservation

    def _check_conservation(self, report: InvariantReport) -> None:
        end = self.federation.transport.snapshot()
        per_job_messages = sum(r.telemetry.messages for r in self.results)
        per_job_bytes = sum(r.telemetry.bytes_sent for r in self.results)
        per_job_seconds = sum(
            r.telemetry.simulated_network_seconds for r in self.results
        )
        problems = []
        global_messages = end.messages - self.baseline.messages
        if per_job_messages != global_messages:
            problems.append(
                f"messages: jobs={per_job_messages} global={global_messages}"
            )
        global_bytes = end.bytes_sent - self.baseline.bytes_sent
        if per_job_bytes != global_bytes:
            problems.append(f"bytes: jobs={per_job_bytes} global={global_bytes}")
        global_seconds = end.simulated_seconds - self.baseline.simulated_seconds
        if not math.isclose(
            per_job_seconds, global_seconds, rel_tol=1e-9, abs_tol=1e-9
        ):
            problems.append(
                f"seconds: jobs={per_job_seconds!r} global={global_seconds!r}"
            )
        cluster = self.federation.smpc_cluster
        if cluster is not None:
            rounds0, elements0 = self.smpc_baseline
            global_rounds = cluster.communication.rounds - rounds0
            global_elements = cluster.communication.elements - elements0
            job_rounds = sum(r.telemetry.smpc_rounds for r in self.results)
            job_elements = sum(r.telemetry.smpc_elements for r in self.results)
            if job_rounds != global_rounds:
                problems.append(
                    f"smpc rounds: jobs={job_rounds} global={global_rounds}"
                )
            if job_elements != global_elements:
                problems.append(
                    f"smpc elements: jobs={job_elements} global={global_elements}"
                )
        report.record(
            "telemetry-conservation", not problems, "; ".join(sorted(problems))
        )

    # ------------------------------------------------------------ meter leaks

    def _check_meter_hygiene(self, report: InvariantReport) -> None:
        transport = self.federation.transport
        with transport._stats_lock:
            orphaned = sorted(transport._job_stats)
        problems = [f"transport meter {job}" for job in orphaned]
        cluster = self.federation.smpc_cluster
        if cluster is not None:
            with cluster._lock:
                problems.extend(f"smpc meter {job}" for job in sorted(cluster._job_meters))
        report.record("meter-hygiene", not problems, "; ".join(problems))

    # ----------------------------------------------------------- job states

    _LEGAL_HISTORIES = frozenset(
        {
            ("pending", "queued", "cancelled"),
            ("pending", "queued", "running", "success"),
            ("pending", "queued", "running", "error"),
            ("pending", "queued", "running", "cancelled"),
        }
    )

    def _check_lifecycle(self, report: InvariantReport) -> None:
        problems = []
        for job_id in sorted(self.histories):
            history = self.histories[job_id]
            if history not in self._LEGAL_HISTORIES:
                problems.append(f"{job_id}: {'>'.join(history)}")
        report.record("job-lifecycle", not problems, "; ".join(problems))

    # ------------------------------------------------------------- audit laws

    def _check_audit_completeness(self, report: InvariantReport) -> None:
        problems = []
        logs = self.federation.audit_logs()
        for result in self.results:
            job_id = result.experiment_id
            events = merged_events(logs, job_id=job_id)
            names = [e["event"] for e in events]
            pre_dispatch = self.histories.get(job_id, ()) == (
                "pending",
                "queued",
                "cancelled",
            )
            if pre_dispatch:
                if "experiment_cancelled" not in names:
                    problems.append(f"{job_id}: pre-dispatch cancel not audited")
                continue
            if "experiment_started" not in names:
                problems.append(f"{job_id}: missing experiment_started")
            if "experiment_finished" not in names:
                problems.append(f"{job_id}: missing experiment_finished")
            self._check_secure_aggregates(job_id, events, problems)
            self._check_evictions(result, events, problems)
        report.record("audit-completeness", not problems, "; ".join(problems))

    def _check_secure_aggregates(
        self, job_id: str, events: list[dict], problems: list[str]
    ) -> None:
        """Every secure aggregate must be fed by per-worker share events.

        A worker's ``aggregate_shared(path=smpc)`` event carries the step id
        of the step that *created* the secure table, not of the read that
        aggregates it, so the law is precedence and count, not step-id
        equality: walking the merged log in order, each ``secure_aggregate``
        consumes one prior unconsumed share event per contributing worker.
        """
        available: dict[str, int] = {}
        for event in events:
            if (
                event["event"] == "aggregate_shared"
                and event["details"].get("path") == "smpc"
            ):
                available[event["node"]] = available.get(event["node"], 0) + 1
            elif event["event"] == "secure_aggregate":
                step = event["job_id"]
                missing = []
                for worker in sorted(event["details"].get("workers", ())):
                    if available.get(worker, 0) > 0:
                        available[worker] -= 1
                    else:
                        missing.append(worker)
                if missing:
                    problems.append(
                        f"{step}: secure aggregate without shares from "
                        f"{','.join(missing)}"
                    )

    def _check_evictions(
        self, result, events: list[dict], problems: list[str]
    ) -> None:
        """Result evictions and audited evictions must match one-to-one, and
        an evicted worker must not contribute after its eviction step."""
        job_id = result.experiment_id
        audited: dict[str, int] = {}
        for event in events:
            if event["event"] != "worker_evicted":
                continue
            step = _step_number(event["job_id"], job_id)
            for worker in event["details"].get("workers", ()):
                audited.setdefault(worker, step if step is not None else -1)
        result_evicted = set(getattr(result, "evicted", ()))
        for worker in sorted(result_evicted - set(audited)):
            problems.append(f"{job_id}: eviction of {worker} not audited")
        for worker in sorted(set(audited) - result_evicted):
            problems.append(f"{job_id}: audited eviction of {worker} not in result")
        for event in events:
            if event["event"] not in ("aggregate_shared", "dataset_read", "rows_contributed"):
                continue
            worker = event["node"]
            if worker not in audited:
                continue
            step = _step_number(event["job_id"], job_id)
            if step is not None and audited[worker] >= 0 and step > audited[worker]:
                problems.append(
                    f"{job_id}: {worker} contributed at step {step} after "
                    f"eviction at step {audited[worker]}"
                )

    # --------------------------------------------------- plain/secure oracle

    def _check_equivalence(self, report: InvariantReport) -> None:
        problems = []
        checked = 0
        for result in self.results:
            if result.status.value != "success" or getattr(result, "evicted", ()):
                continue
            oracle = self.oracles.get(result.experiment_id)
            if oracle is None:
                continue
            checked += 1
            mismatch = _first_mismatch(result.result, oracle)
            if mismatch:
                problems.append(f"{result.experiment_id}: {mismatch}")
        detail = "; ".join(problems) if problems else f"checked={checked}"
        report.record("smpc-plain-equivalence", not problems, detail)

    # ------------------------------------------------------------ privacy law

    def _check_privacy_monotonicity(self, report: InvariantReport) -> None:
        problems = []
        logs = self.federation.audit_logs()
        for result in self.results:
            last = 0.0
            for event in merged_events(
                logs, job_id=result.experiment_id, event="privacy_spend"
            ):
                total = float(event["details"].get("total_epsilon", 0.0))
                if total + 1e-12 < last:
                    problems.append(
                        f"{result.experiment_id}: total_epsilon fell "
                        f"{last!r} -> {total!r}"
                    )
                last = total
        from repro.observability.metrics import global_registry

        snapshot = global_registry.snapshot()
        for name, start in sorted(self.privacy_baseline.items()):
            now = snapshot.get(name, 0.0)
            if isinstance(now, (int, float)) and now + 1e-12 < start:
                problems.append(f"{name} fell {start!r} -> {now!r}")
        report.record("privacy-monotonicity", not problems, "; ".join(problems))


def privacy_counter_snapshot() -> dict[str, float]:
    """Process-wide privacy counters (the monotonicity baseline)."""
    from repro.observability.metrics import global_registry

    return {
        name: float(value)
        for name, value in global_registry.snapshot().items()
        if name.startswith("repro_privacy_") and isinstance(value, (int, float))
    }


def _step_number(step_id: str | None, job_id: str) -> int | None:
    """The numeric step index of ``{job_id}_s{n}...``-shaped step ids."""
    if not step_id or not step_id.startswith(f"{job_id}_s"):
        return None
    digits = ""
    for char in step_id[len(job_id) + 2 :]:
        if char.isdigit():
            digits += char
        else:
            break
    return int(digits) if digits else None


def _first_mismatch(secure: Any, plain: Any, path: str = "") -> str | None:
    """Recursive approximate comparison; returns a description or None."""
    where = path or "result"
    if isinstance(secure, Mapping) and isinstance(plain, Mapping):
        if sorted(secure) != sorted(plain):
            return f"{where}: keys differ"
        for key in sorted(secure):
            found = _first_mismatch(secure[key], plain[key], f"{where}.{key}")
            if found:
                return found
        return None
    if isinstance(secure, (list, tuple)) and isinstance(plain, (list, tuple)):
        if len(secure) != len(plain):
            return f"{where}: length {len(secure)} != {len(plain)}"
        for index, (a, b) in enumerate(zip(secure, plain)):
            found = _first_mismatch(a, b, f"{where}[{index}]")
            if found:
                return found
        return None
    if isinstance(secure, (int, float)) and isinstance(plain, (int, float)):
        a, b = float(secure), float(plain)
        if math.isnan(a) and math.isnan(b):
            return None
        if not math.isclose(
            a, b, rel_tol=EQUIVALENCE_REL_TOL, abs_tol=EQUIVALENCE_ABS_TOL
        ):
            return f"{where}: {a!r} != {b!r}"
        return None
    if secure != plain:
        return f"{where}: {secure!r} != {plain!r}"
    return None
