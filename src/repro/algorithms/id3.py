"""Federated ID3: multiway decision trees over nominal features.

Classic ID3 splits a node on the categorical feature with the highest
information gain, creating one child per level.  Federated, each round
aggregates per (open leaf, candidate feature, level, class) counts via
secure sums; the master computes entropies and extends the tree.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)
from repro.algorithms.cart import publish_tree


@udf(
    data=relation(),
    target=literal(),
    classes=literal(),
    features=literal(),
    feature_levels=literal(),
    tree=transfer(),
    open_leaves=literal(),
    return_type=[secure_transfer()],
)
def id3_stats_local(data, target, classes, features, feature_levels, tree, open_leaves):
    """Per (leaf, feature, level) class counts for all open leaves."""
    assignment = _h.route_tree(data, tree)
    labels = data[target]
    payload = {}
    for leaf in open_leaves:
        leaf_mask = assignment == str(leaf)
        totals = _h.category_counts(labels[leaf_mask], classes)
        payload[f"leaf{leaf}_total"] = {"data": totals.tolist(), "operation": "sum"}
        for feature_index, feature in enumerate(features):
            values = data[feature][leaf_mask]
            labels_leaf = labels[leaf_mask]
            for level_index, level in enumerate(feature_levels[feature_index]):
                counts = _h.category_counts(labels_leaf[values == level], classes)
                payload[f"leaf{leaf}_f{feature_index}_l{level_index}"] = {
                    "data": counts.tolist(),
                    "operation": "sum",
                }
    return payload


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts[counts > 0] / total
    return float(-(proportions * np.log2(proportions)).sum())


@register_algorithm
class ID3(FederatedAlgorithm):
    """ID3 decision tree: nominal target, nominal features."""

    name = "id3"
    label = "ID3"
    needs_y = "required"
    needs_x = "required"
    y_types = ("nominal",)
    x_types = ("nominal",)
    parameters = (
        ParameterSpec("max_depth", "int", label="Maximum tree depth", default=4,
                      min_value=1, max_value=10),
        ParameterSpec("min_samples_split", "int", label="Minimum rows to split",
                      default=20, min_value=2),
        ParameterSpec("min_gain", "real", label="Minimum information gain",
                      default=1e-9, min_value=0.0),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        target = self.y[0]
        variables = [target] + list(self.x)
        metadata = resolve_observed_levels(self, variables)
        classes = list(metadata.get(target, {}).get("enumerations", []))
        if len(classes) < 2:
            raise AlgorithmError(f"target {target!r} has fewer than 2 observed classes")
        feature_levels = [
            list(metadata.get(f, {}).get("enumerations", [])) for f in self.x
        ]
        view = self.data_view(variables)

        tree: dict[str, Any] = {
            "root": 0,
            "nodes": {"0": {"type": "leaf", "depth": 0, "used": []}},
        }
        open_leaves = [0]
        next_id = 1
        while open_leaves:
            tree_transfer = self.global_run(
                func=publish_tree, keyword_args={"tree_in": tree}, share_to_locals=[True]
            )
            handle = self.local_run(
                func=id3_stats_local,
                keyword_args={
                    "data": view,
                    "target": target,
                    "classes": classes,
                    "features": list(self.x),
                    "feature_levels": feature_levels,
                    "tree": tree_transfer,
                    "open_leaves": open_leaves,
                },
                share_to_global=[True],
            )
            stats = self.ctx.get_transfer_data(handle)
            new_open: list[int] = []
            for leaf in open_leaves:
                node = tree["nodes"][str(leaf)]
                totals = np.asarray(stats[f"leaf{leaf}_total"], dtype=np.float64)
                node["n"] = int(totals.sum())
                node["class_counts"] = totals.astype(int).tolist()
                node["prediction"] = classes[int(totals.argmax())] if totals.sum() else None
                node["entropy"] = entropy(totals)
                if (
                    node["n"] < self.params["min_samples_split"]
                    or node["entropy"] == 0.0
                    or node["depth"] >= self.params["max_depth"]
                ):
                    continue
                best = self._best_feature(leaf, node, totals, feature_levels, stats)
                if best is None:
                    continue
                feature_index, gain, level_counts = best
                children: dict[str, int] = {}
                majority = classes[int(totals.argmax())]
                depth = node["depth"] + 1
                used = node["used"] + [self.x[feature_index]]
                default_child = None
                default_size = -1.0
                for level_index, level in enumerate(feature_levels[feature_index]):
                    counts = level_counts[level_index]
                    child_id = next_id
                    next_id += 1
                    child = {
                        "type": "leaf",
                        "depth": depth,
                        "used": used,
                        "n": int(counts.sum()),
                        "class_counts": counts.astype(int).tolist(),
                        "prediction": classes[int(counts.argmax())] if counts.sum() else majority,
                        "entropy": entropy(counts),
                    }
                    tree["nodes"][str(child_id)] = child
                    children[level] = child_id
                    if counts.sum() > default_size:
                        default_size = float(counts.sum())
                        default_child = child_id
                    if (
                        child["n"] >= self.params["min_samples_split"]
                        and child["entropy"] > 0
                        and depth < self.params["max_depth"]
                        and len(used) < len(self.x)
                    ):
                        new_open.append(child_id)
                node.update(
                    type="split",
                    feature=self.x[feature_index],
                    children=children,
                    default_child=default_child,
                    gain=gain,
                )
            open_leaves = new_open
        n_leaves = sum(1 for n in tree["nodes"].values() if n["type"] == "leaf")
        return {
            "tree": tree,
            "classes": classes,
            "n_nodes": len(tree["nodes"]),
            "n_leaves": n_leaves,
            "max_depth": max(n["depth"] for n in tree["nodes"].values()),
            "target": target,
        }

    def _best_feature(self, leaf, node, totals, feature_levels, stats):
        parent_entropy = entropy(totals)
        parent_n = totals.sum()
        best = None
        best_gain = self.params["min_gain"]
        for feature_index, feature in enumerate(self.x):
            if feature in node["used"]:
                continue
            level_counts = [
                np.asarray(stats[f"leaf{leaf}_f{feature_index}_l{i}"], dtype=np.float64)
                for i in range(len(feature_levels[feature_index]))
            ]
            weighted = sum(
                counts.sum() / parent_n * entropy(counts)
                for counts in level_counts
                if counts.sum() > 0
            )
            gain = parent_entropy - weighted
            if gain > best_gain:
                best_gain = gain
                best = (feature_index, float(gain), level_counts)
        return best
