"""Federated linear regression (the paper's Figure 2 algorithm).

One local pass computes the additively aggregatable sufficient statistics
(X^T X, X^T y, y^T y, n); the global step solves the normal equations and
derives inference statistics.  A cross-validated variant reuses the same
local pass with per-fold statistics, so k-fold CV needs no extra data
passes.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.observability.log import get_logger
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h

logger = get_logger("algorithms.linear_regression")


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    metadata=literal(),
    return_type=[secure_transfer()],
)
def linreg_fit_local(data, covariates, response, metadata):
    """Local step: sufficient statistics of the normal equations."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    y = np.asarray(data[response], dtype=np.float64)
    stats = _h.regression_sufficient_stats(design, y)
    return {
        "xtx": {"data": stats["xtx"].tolist(), "operation": "sum"},
        "xty": {"data": stats["xty"].tolist(), "operation": "sum"},
        "yty": {"data": stats["yty"], "operation": "sum"},
        "sum_y": {"data": stats["sum_y"], "operation": "sum"},
        "n": {"data": stats["n"], "operation": "sum"},
    }


@udf(aggregates=transfer(), return_type=[transfer()])
def linreg_fit_global(aggregates):
    """Global step: solve the normal equations from aggregated statistics."""
    xtx = np.asarray(aggregates["xtx"], dtype=np.float64)
    xty = np.asarray(aggregates["xty"], dtype=np.float64)
    coefficients = np.linalg.solve(xtx, xty)
    return {
        "coefficients": coefficients.tolist(),
        "xtx": xtx.tolist(),
        "xty": xty.tolist(),
        "yty": aggregates["yty"],
        "sum_y": aggregates["sum_y"],
        "n": aggregates["n"],
    }


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    metadata=literal(),
    n_folds=literal(),
    seed=literal(),
    return_type=[secure_transfer()],
)
def linreg_cv_local(data, covariates, response, metadata, n_folds, seed):
    """Local step for CV: per-fold sufficient statistics in one pass."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    y = np.asarray(data[response], dtype=np.float64)
    folds = _h.fold_assignments(len(y), n_folds, seed)
    payload = {}
    for fold in range(n_folds):
        mask = folds == fold
        stats = _h.regression_sufficient_stats(design[mask], y[mask])
        payload[f"xtx_{fold}"] = {"data": stats["xtx"].tolist(), "operation": "sum"}
        payload[f"xty_{fold}"] = {"data": stats["xty"].tolist(), "operation": "sum"}
        payload[f"yty_{fold}"] = {"data": stats["yty"], "operation": "sum"}
        payload[f"sum_y_{fold}"] = {"data": stats["sum_y"], "operation": "sum"}
        payload[f"n_{fold}"] = {"data": stats["n"], "operation": "sum"}
    return payload


def solve_linear_model(
    xtx: np.ndarray, xty: np.ndarray, yty: float, sum_y: float, n: int
) -> dict[str, Any]:
    """OLS estimates and inference from aggregated sufficient statistics."""
    p = xtx.shape[0]
    degrees_of_freedom = n - p
    if degrees_of_freedom <= 0:
        raise AlgorithmError(
            f"not enough observations ({n}) for {p} model parameters"
        )
    try:
        xtx_inverse = np.linalg.inv(xtx)
    except np.linalg.LinAlgError as exc:
        raise AlgorithmError(f"singular design matrix: {exc}") from exc
    coefficients = xtx_inverse @ xty
    sse = float(yty - coefficients @ xty)
    sse = max(sse, 0.0)
    sst = float(yty - (sum_y**2) / n)
    mse = sse / degrees_of_freedom
    standard_errors = np.sqrt(np.clip(np.diag(xtx_inverse) * mse, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = np.where(standard_errors > 0, coefficients / standard_errors, np.inf)
    p_values = 2.0 * scipy.stats.t.sf(np.abs(t_values), degrees_of_freedom)
    t_critical = scipy.stats.t.ppf(0.975, degrees_of_freedom)
    r_squared = 1.0 - sse / sst if sst > 0 else 0.0
    adjusted = 1.0 - (1.0 - r_squared) * (n - 1) / degrees_of_freedom
    return {
        "coefficients": coefficients.tolist(),
        "std_err": standard_errors.tolist(),
        "t_values": [float(t) for t in t_values],
        "p_values": [float(v) for v in p_values],
        "ci_lower": (coefficients - t_critical * standard_errors).tolist(),
        "ci_upper": (coefficients + t_critical * standard_errors).tolist(),
        "residual_sum_squares": sse,
        "total_sum_squares": sst,
        "mean_squared_error": mse,
        "r_squared": float(r_squared),
        "adjusted_r_squared": float(adjusted),
        "degrees_of_freedom": int(degrees_of_freedom),
        "n_observations": int(n),
    }


@register_algorithm
class LinearRegression(FederatedAlgorithm):
    """OLS regression of one numeric response on covariates."""

    name = "linear_regression"
    label = "Linear Regression"
    needs_y = "required"
    needs_x = "required"
    y_types = ("numeric",)
    x_types = ("numeric", "nominal")

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        response = self.y[0]
        variables = [response] + list(self.x)
        self.metadata = resolve_observed_levels(self, variables)
        data = self.data_view(variables)
        local_transfers = self.local_run(
            func=linreg_fit_local,
            keyword_args={
                "data": data,
                "covariates": list(self.x),
                "response": response,
                "metadata": self.metadata,
            },
            share_to_global=[True],
        )
        global_transfer = self.global_run(
            func=linreg_fit_global,
            keyword_args=dict(aggregates=local_transfers),
            share_to_locals=[False],
        )
        aggregates = self.ctx.get_transfer_data(global_transfer)
        design_names = self._design_names()
        result = solve_linear_model(
            np.asarray(aggregates["xtx"]),
            np.asarray(aggregates["xty"]),
            float(aggregates["yty"]),
            float(aggregates["sum_y"]),
            int(aggregates["n"]),
        )
        result["variable_names"] = design_names
        result["response"] = response
        logger.info(
            "linreg_fit",
            response=response,
            covariates=list(self.x),
            n=result.get("n_observations"),
            r_squared=result.get("r_squared"),
        )
        return result

    def _design_names(self) -> list[str]:
        names = ["intercept"]
        for variable in self.x:
            info = self.metadata.get(variable, {})
            if info.get("is_categorical"):
                for level in list(info.get("enumerations", []))[1:]:
                    names.append(f"{variable}[{level}]")
            else:
                names.append(variable)
        return names


@register_algorithm
class LinearRegressionCV(FederatedAlgorithm):
    """k-fold cross-validated linear regression."""

    name = "linear_regression_cv"
    label = "Linear Regression Cross-validation"
    needs_y = "required"
    needs_x = "required"
    y_types = ("numeric",)
    x_types = ("numeric", "nominal")
    parameters = (
        ParameterSpec("n_splits", "int", label="Number of folds", default=5,
                      min_value=2, max_value=20),
        ParameterSpec("seed", "int", label="Fold-split seed", default=0),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        response = self.y[0]
        n_folds = self.params["n_splits"]
        self.metadata = resolve_observed_levels(self, [response] + list(self.x))
        data = self.data_view([response] + list(self.x))
        local_transfers = self.local_run(
            func=linreg_cv_local,
            keyword_args={
                "data": data,
                "covariates": list(self.x),
                "response": response,
                "metadata": self.metadata,
                "n_folds": n_folds,
                "seed": self.params["seed"],
            },
            share_to_global=[True],
        )
        aggregates = self.ctx.get_transfer_data(local_transfers)
        fold_stats = []
        for fold in range(n_folds):
            fold_stats.append(
                {
                    "xtx": np.asarray(aggregates[f"xtx_{fold}"], dtype=np.float64),
                    "xty": np.asarray(aggregates[f"xty_{fold}"], dtype=np.float64),
                    "yty": float(aggregates[f"yty_{fold}"]),
                    "sum_y": float(aggregates[f"sum_y_{fold}"]),
                    "n": int(aggregates[f"n_{fold}"]),
                }
            )
        fold_metrics = []
        for held_out in range(n_folds):
            train = [fold_stats[i] for i in range(n_folds) if i != held_out]
            test = fold_stats[held_out]
            xtx = sum(s["xtx"] for s in train)
            xty = sum(s["xty"] for s in train)
            coefficients = np.linalg.solve(xtx, xty)
            n_test = test["n"]
            if n_test == 0:
                continue
            sse = float(
                test["yty"] - 2.0 * coefficients @ test["xty"]
                + coefficients @ test["xtx"] @ coefficients
            )
            sst = float(test["yty"] - (test["sum_y"] ** 2) / n_test)
            fold_metrics.append(
                {
                    "fold": held_out,
                    "n_test": n_test,
                    "mse": sse / n_test,
                    "rmse": float(np.sqrt(max(sse, 0.0) / n_test)),
                    "r_squared": 1.0 - sse / sst if sst > 0 else 0.0,
                }
            )
        mses = [m["mse"] for m in fold_metrics]
        return {
            "folds": fold_metrics,
            "mean_mse": float(np.mean(mses)),
            "std_mse": float(np.std(mses, ddof=1)) if len(mses) > 1 else 0.0,
            "mean_r_squared": float(np.mean([m["r_squared"] for m in fold_metrics])),
            "n_splits": n_folds,
            "response": response,
        }
