"""Federated logistic regression via Newton-Raphson (IRLS).

Each iteration: the master broadcasts the current coefficients; every worker
computes its local gradient, Hessian, and log-likelihood; the secure sum
yields the global Newton step.  Inference (standard errors, Wald z, CIs)
comes from the inverse Hessian at convergence.  The cross-validated variant
trains one model per held-out fold using per-fold local statistics.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.observability.log import get_logger
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)

logger = get_logger("algorithms.logistic_regression")


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    beta=transfer(),
    return_type=[secure_transfer()],
)
def logreg_step_local(data, covariates, response, positive_level, metadata, beta):
    """One Newton iteration's local statistics."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    coefficients = np.asarray(beta["beta"], dtype=np.float64)
    stats = _h.logistic_gradient_hessian(design, y, coefficients)
    return {
        "gradient": {"data": stats["gradient"].tolist(), "operation": "sum"},
        "hessian": {"data": stats["hessian"].tolist(), "operation": "sum"},
        "log_likelihood": {"data": stats["log_likelihood"], "operation": "sum"},
        "n": {"data": stats["n"], "operation": "sum"},
        "n_positive": {"data": float(y.sum()), "operation": "sum"},
    }


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    beta=transfer(),
    threshold=literal(),
    return_type=[secure_transfer()],
)
def logreg_confusion_local(data, covariates, response, positive_level, metadata, beta, threshold):
    """Confusion counts and score histograms at the fitted coefficients."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    coefficients = np.asarray(beta["beta"], dtype=np.float64)
    scores = _h.sigmoid(design @ coefficients)
    confusion = _h.confusion_counts(y.astype(bool), scores, threshold)
    histograms = _h.score_histograms(y.astype(bool), scores)
    return {
        "tp": {"data": confusion["tp"], "operation": "sum"},
        "fp": {"data": confusion["fp"], "operation": "sum"},
        "fn": {"data": confusion["fn"], "operation": "sum"},
        "tn": {"data": confusion["tn"], "operation": "sum"},
        "hist_pos": {"data": histograms["positives"].tolist(), "operation": "sum"},
        "hist_neg": {"data": histograms["negatives"].tolist(), "operation": "sum"},
    }


@udf(beta_in=literal(), return_type=[transfer()])
def publish_beta(beta_in):
    """Materialize coefficients as a broadcastable transfer."""
    return {"beta": beta_in}


def auc_from_histograms(positives: np.ndarray, negatives: np.ndarray) -> float:
    """Trapezoidal AUC from binned score counts (bins ascending in score)."""
    total_positives = positives.sum()
    total_negatives = negatives.sum()
    if total_positives == 0 or total_negatives == 0:
        return float("nan")
    # Sweep thresholds from high to low: start at (0,0) in ROC space.
    tpr = np.concatenate([[0.0], np.cumsum(positives[::-1]) / total_positives])
    fpr = np.concatenate([[0.0], np.cumsum(negatives[::-1]) / total_negatives])
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(tpr, fpr))


def classification_metrics(tp: int, fp: int, fn: int, tn: int) -> dict[str, float]:
    """Accuracy, precision, recall and F1 from confusion counts."""
    total = tp + fp + fn + tn
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return {
        "accuracy": (tp + tn) / total if total else 0.0,
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }


class _NewtonDriver:
    """Shared Newton loop used by the plain and CV algorithms."""

    def __init__(self, algorithm: FederatedAlgorithm, metadata: dict[str, Any]) -> None:
        self.algorithm = algorithm
        self.metadata = metadata
        response = algorithm.y[0]
        info = metadata.get(response, {})
        if info.get("is_categorical"):
            levels = list(info.get("enumerations", []))
            if len(levels) != 2:
                raise AlgorithmError(
                    f"logistic regression needs a binary response; {response!r} has "
                    f"{len(levels)} observed levels"
                )
            self.positive_level = levels[1]
        else:
            self.positive_level = None
        self.response = response
        self.design_names = self._design_names()

    def _design_names(self) -> list[str]:
        names = ["intercept"]
        for variable in self.algorithm.x:
            info = self.metadata.get(variable, {})
            if info.get("is_categorical"):
                for level in list(info.get("enumerations", []))[1:]:
                    names.append(f"{variable}[{level}]")
            else:
                names.append(variable)
        return names

    def fit(
        self, view, max_iterations: int, tolerance: float
    ) -> dict[str, Any]:
        algorithm = self.algorithm
        p = len(self.design_names)
        beta = np.zeros(p)
        log_likelihood = -np.inf
        hessian = np.eye(p)
        n = 0
        n_positive = 0.0
        iterations = 0
        converged = False
        for iterations in range(1, max_iterations + 1):
            beta_transfer = algorithm.global_run(
                func=publish_beta,
                keyword_args={"beta_in": beta.tolist()},
                share_to_locals=[True],
            )
            handle = algorithm.local_run(
                func=logreg_step_local,
                keyword_args={
                    "data": view,
                    "covariates": list(algorithm.x),
                    "response": self.response,
                    "positive_level": self.positive_level,
                    "metadata": self.metadata,
                    "beta": beta_transfer,
                },
                share_to_global=[True],
            )
            aggregate = algorithm.ctx.get_transfer_data(handle)
            gradient = np.asarray(aggregate["gradient"], dtype=np.float64)
            hessian = np.asarray(aggregate["hessian"], dtype=np.float64)
            new_log_likelihood = float(aggregate["log_likelihood"])
            n = int(aggregate["n"])
            n_positive = float(aggregate["n_positive"])
            try:
                step = np.linalg.solve(hessian + 1e-10 * np.eye(p), gradient)
            except np.linalg.LinAlgError as exc:
                raise AlgorithmError(f"singular Hessian: {exc}") from exc
            beta = beta + step
            if abs(new_log_likelihood - log_likelihood) < tolerance:
                log_likelihood = new_log_likelihood
                converged = True
                break
            log_likelihood = new_log_likelihood
        return {
            "beta": beta,
            "hessian": hessian,
            "log_likelihood": log_likelihood,
            "n": n,
            "n_positive": n_positive,
            "iterations": iterations,
            "converged": converged,
        }


@register_algorithm
class LogisticRegression(FederatedAlgorithm):
    """Binary logistic regression with Wald inference."""

    name = "logistic_regression"
    label = "Logistic Regression"
    needs_y = "required"
    needs_x = "required"
    y_types = ("nominal", "numeric")
    x_types = ("numeric", "nominal")
    parameters = (
        ParameterSpec("max_iterations", "int", label="Maximum Newton iterations",
                      default=25, min_value=1, max_value=200),
        ParameterSpec("tolerance", "real", label="Log-likelihood tolerance",
                      default=1e-8, min_value=0.0),
        ParameterSpec("threshold", "real", label="Classification threshold",
                      default=0.5, min_value=0.0, max_value=1.0),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        variables = [self.y[0]] + list(self.x)
        metadata = resolve_observed_levels(self, variables)
        driver = _NewtonDriver(self, metadata)
        view = self.data_view(variables)
        fit = driver.fit(view, self.params["max_iterations"], self.params["tolerance"])
        beta = fit["beta"]
        if fit["converged"]:
            logger.info(
                "newton_converged",
                response=driver.response,
                iterations=fit["iterations"],
                log_likelihood=fit["log_likelihood"],
            )
        else:
            logger.warning(
                "newton_not_converged",
                response=driver.response,
                iterations=fit["iterations"],
                max_iterations=self.params["max_iterations"],
            )
        try:
            covariance = np.linalg.inv(fit["hessian"])
        except np.linalg.LinAlgError as exc:
            raise AlgorithmError(f"singular Hessian at convergence: {exc}") from exc
        standard_errors = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
        with np.errstate(divide="ignore", invalid="ignore"):
            z_values = np.where(standard_errors > 0, beta / standard_errors, np.inf)
        p_values = 2.0 * scipy.stats.norm.sf(np.abs(z_values))
        margin = 1.959963984540054 * standard_errors

        beta_transfer = self.global_run(
            func=publish_beta, keyword_args={"beta_in": beta.tolist()}, share_to_locals=[True]
        )
        confusion_handle = self.local_run(
            func=logreg_confusion_local,
            keyword_args={
                "data": view,
                "covariates": list(self.x),
                "response": driver.response,
                "positive_level": driver.positive_level,
                "metadata": metadata,
                "beta": beta_transfer,
                "threshold": self.params["threshold"],
            },
            share_to_global=[True],
        )
        confusion = self.ctx.get_transfer_data(confusion_handle)
        tp, fp = int(confusion["tp"]), int(confusion["fp"])
        fn, tn = int(confusion["fn"]), int(confusion["tn"])
        metrics = classification_metrics(tp, fp, fn, tn)
        auc = auc_from_histograms(
            np.asarray(confusion["hist_pos"]), np.asarray(confusion["hist_neg"])
        )
        n = fit["n"]
        p = len(beta)
        null_ll = _null_log_likelihood(n, fit["n_positive"])
        return {
            "variable_names": driver.design_names,
            "response": driver.response,
            "positive_level": driver.positive_level,
            "coefficients": beta.tolist(),
            "std_err": standard_errors.tolist(),
            "z_values": [float(z) for z in z_values],
            "p_values": [float(v) for v in p_values],
            "ci_lower": (beta - margin).tolist(),
            "ci_upper": (beta + margin).tolist(),
            "odds_ratios": np.exp(beta).tolist(),
            "log_likelihood": fit["log_likelihood"],
            "null_log_likelihood": null_ll,
            "mcfadden_r_squared": 1.0 - fit["log_likelihood"] / null_ll if null_ll else 0.0,
            "aic": 2 * p - 2 * fit["log_likelihood"],
            "bic": p * np.log(n) - 2 * fit["log_likelihood"],
            "n_observations": n,
            "iterations": fit["iterations"],
            "converged": fit["converged"],
            "confusion_matrix": {"tp": tp, "fp": fp, "fn": fn, "tn": tn},
            "auc": auc,
            **metrics,
        }


def _null_log_likelihood(n: int, n_positive: float) -> float:
    if n == 0 or n_positive in (0, n):
        return 0.0
    rate = n_positive / n
    return float(n_positive * np.log(rate) + (n - n_positive) * np.log(1 - rate))


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    beta_per_fold=transfer(),
    n_folds=literal(),
    seed=literal(),
    return_type=[secure_transfer()],
)
def logreg_cv_step_local(
    data, covariates, response, positive_level, metadata, beta_per_fold, n_folds, seed
):
    """Newton statistics for every training split, in one local pass."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    folds = _h.fold_assignments(len(y), n_folds, seed)
    payload = {}
    betas = np.asarray(beta_per_fold["betas"], dtype=np.float64)
    for held_out in range(n_folds):
        mask = folds != held_out
        stats = _h.logistic_gradient_hessian(design[mask], y[mask], betas[held_out])
        payload[f"gradient_{held_out}"] = {
            "data": stats["gradient"].tolist(), "operation": "sum",
        }
        payload[f"hessian_{held_out}"] = {
            "data": stats["hessian"].tolist(), "operation": "sum",
        }
        payload[f"ll_{held_out}"] = {"data": stats["log_likelihood"], "operation": "sum"}
    return payload


@udf(
    data=relation(),
    covariates=literal(),
    response=literal(),
    positive_level=literal(),
    metadata=literal(),
    beta_per_fold=transfer(),
    n_folds=literal(),
    seed=literal(),
    threshold=literal(),
    return_type=[secure_transfer()],
)
def logreg_cv_eval_local(
    data, covariates, response, positive_level, metadata, beta_per_fold, n_folds, seed, threshold
):
    """Held-out confusion counts for every fold's final model."""
    design, names = _h.build_design_matrix(data, covariates, metadata)
    raw = data[response]
    if positive_level is None:
        y = np.asarray(raw, dtype=np.float64)
    else:
        y = (raw == positive_level).astype(np.float64)
    folds = _h.fold_assignments(len(y), n_folds, seed)
    payload = {}
    betas = np.asarray(beta_per_fold["betas"], dtype=np.float64)
    for held_out in range(n_folds):
        mask = folds == held_out
        scores = _h.sigmoid(design[mask] @ betas[held_out])
        confusion = _h.confusion_counts(y[mask].astype(bool), scores, threshold)
        for key, value in confusion.items():
            payload[f"{key}_{held_out}"] = {"data": value, "operation": "sum"}
    return payload


@register_algorithm
class LogisticRegressionCV(FederatedAlgorithm):
    """k-fold cross-validated logistic regression."""

    name = "logistic_regression_cv"
    label = "Logistic Regression Cross-validation"
    needs_y = "required"
    needs_x = "required"
    y_types = ("nominal", "numeric")
    x_types = ("numeric", "nominal")
    parameters = (
        ParameterSpec("n_splits", "int", label="Number of folds", default=5,
                      min_value=2, max_value=20),
        ParameterSpec("max_iterations", "int", label="Maximum Newton iterations",
                      default=15, min_value=1, max_value=100),
        ParameterSpec("threshold", "real", label="Classification threshold",
                      default=0.5, min_value=0.0, max_value=1.0),
        ParameterSpec("seed", "int", label="Fold-split seed", default=0),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        variables = [self.y[0]] + list(self.x)
        metadata = resolve_observed_levels(self, variables)
        driver = _NewtonDriver(self, metadata)
        view = self.data_view(variables)
        n_folds = self.params["n_splits"]
        seed = self.params["seed"]
        p = len(driver.design_names)
        betas = np.zeros((n_folds, p))
        common = {
            "data": view,
            "covariates": list(self.x),
            "response": driver.response,
            "positive_level": driver.positive_level,
            "metadata": metadata,
            "n_folds": n_folds,
            "seed": seed,
        }
        for _ in range(self.params["max_iterations"]):
            beta_transfer = self.global_run(
                func=_publish_betas,
                keyword_args={"betas_in": betas.tolist()},
                share_to_locals=[True],
            )
            handle = self.local_run(
                func=logreg_cv_step_local,
                keyword_args={**common, "beta_per_fold": beta_transfer},
                share_to_global=[True],
            )
            aggregate = self.ctx.get_transfer_data(handle)
            for fold in range(n_folds):
                gradient = np.asarray(aggregate[f"gradient_{fold}"], dtype=np.float64)
                hessian = np.asarray(aggregate[f"hessian_{fold}"], dtype=np.float64)
                betas[fold] += np.linalg.solve(hessian + 1e-10 * np.eye(p), gradient)
        beta_transfer = self.global_run(
            func=_publish_betas,
            keyword_args={"betas_in": betas.tolist()},
            share_to_locals=[True],
        )
        eval_handle = self.local_run(
            func=logreg_cv_eval_local,
            keyword_args={
                **common,
                "beta_per_fold": beta_transfer,
                "threshold": self.params["threshold"],
            },
            share_to_global=[True],
        )
        confusion = self.ctx.get_transfer_data(eval_handle)
        fold_metrics = []
        for fold in range(n_folds):
            tp = int(confusion[f"tp_{fold}"])
            fp = int(confusion[f"fp_{fold}"])
            fn = int(confusion[f"fn_{fold}"])
            tn = int(confusion[f"tn_{fold}"])
            metrics = classification_metrics(tp, fp, fn, tn)
            fold_metrics.append({"fold": fold, "n_test": tp + fp + fn + tn, **metrics})
        return {
            "variable_names": driver.design_names,
            "response": driver.response,
            "n_splits": n_folds,
            "folds": fold_metrics,
            "mean_accuracy": float(np.mean([m["accuracy"] for m in fold_metrics])),
            "mean_f1": float(np.mean([m["f1"] for m in fold_metrics])),
            "fold_coefficients": betas.tolist(),
        }


@udf(betas_in=literal(), return_type=[transfer()])
def _publish_betas(betas_in):
    """Materialize per-fold coefficients as a broadcastable transfer."""
    return {"betas": betas_in}
