"""The MIP algorithm library (15+ federated algorithms, paper §2).

Importing this package registers every algorithm in the global
:data:`repro.core.registry.algorithm_registry`.
"""

from repro.algorithms import (  # noqa: F401  (imported for registration)
    anova,
    calibration_belt,
    cart,
    descriptive,
    histograms,
    id3,
    kaplan_meier,
    kmeans,
    linear_regression,
    logistic_regression,
    naive_bayes,
    pca,
    pearson,
    ttest,
)
from repro.core.registry import algorithm_registry

__all__ = ["algorithm_registry"]
