"""Federated Calibration Belt (GiViTI-style).

Assesses the calibration of an external risk model: regress the observed
binary outcome on a polynomial of the logit of the predicted probability via
federated logistic Newton steps, select the polynomial degree by forward
likelihood-ratio tests, and draw confidence belts around the fitted
calibration curve.  A well-calibrated model keeps the identity line inside
the belt; the calibration test compares the fitted curve's likelihood
against the identity model.

Degree selection and the belt's pointwise intervals follow the GiViTI
construction with a normal-approximation band (the original's inversion of
the LRT region is replaced by the delta method; the belt's shape and the
test's behaviour are preserved).
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)
from repro.algorithms.logistic_regression import publish_beta

#: Logit clipping to keep extreme predictions finite.
_EPS = 1e-6


@udf(
    data=relation(),
    outcome=literal(),
    predictor=literal(),
    degree=literal(),
    beta=transfer(),
    return_type=[secure_transfer()],
)
def calibration_step_local(data, outcome, predictor, degree, beta):
    """Newton statistics for the degree-m polynomial calibration model."""
    y = np.asarray(data[outcome], dtype=np.float64)
    p_hat = np.clip(np.asarray(data[predictor], dtype=np.float64), 1e-6, 1 - 1e-6)
    g = np.log(p_hat / (1.0 - p_hat))
    design = np.column_stack([g**j for j in range(degree + 1)])
    coefficients = np.asarray(beta["beta"], dtype=np.float64)
    stats = _h.logistic_gradient_hessian(design, y, coefficients)
    # Log-likelihood under the identity calibration (eta = g).
    identity_probability = np.clip(_h.sigmoid(g), 1e-12, 1 - 1e-12)
    identity_ll = float(
        np.sum(y * np.log(identity_probability) + (1 - y) * np.log(1 - identity_probability))
    )
    return {
        "gradient": {"data": stats["gradient"].tolist(), "operation": "sum"},
        "hessian": {"data": stats["hessian"].tolist(), "operation": "sum"},
        "log_likelihood": {"data": stats["log_likelihood"], "operation": "sum"},
        "identity_ll": {"data": identity_ll, "operation": "sum"},
        "n": {"data": stats["n"], "operation": "sum"},
        "g_min": {"data": float(g.min()), "operation": "min"},
        "g_max": {"data": float(g.max()), "operation": "max"},
    }


@register_algorithm
class CalibrationBelt(FederatedAlgorithm):
    """GiViTI-style calibration belt of a predicted probability."""

    name = "calibration_belt"
    label = "Calibration Belt"
    needs_y = "required"
    needs_x = "required"
    y_types = ("numeric",)  # binary 0/1 outcome column
    x_types = ("numeric",)  # predicted probability column
    parameters = (
        ParameterSpec("max_degree", "int", label="Maximum polynomial degree",
                      default=4, min_value=1, max_value=6),
        ParameterSpec("selection_significance", "real",
                      label="Forward-selection significance", default=0.95,
                      min_value=0.5, max_value=0.999),
        ParameterSpec("max_iterations", "int", label="Newton iterations per fit",
                      default=25, min_value=1, max_value=200),
        ParameterSpec("n_grid", "int", label="Belt grid resolution", default=100,
                      min_value=10, max_value=1000),
    )

    def run(self) -> dict[str, Any]:
        outcome = self.y[0]
        predictor = self.x[0]
        view = self.data_view([outcome, predictor])

        fits: dict[int, dict[str, Any]] = {}
        degree = 1
        fits[1] = self._fit_degree(view, outcome, predictor, 1)
        threshold = self.params["selection_significance"]
        while degree < self.params["max_degree"]:
            candidate = self._fit_degree(view, outcome, predictor, degree + 1)
            lrt = 2.0 * (candidate["log_likelihood"] - fits[degree]["log_likelihood"])
            p_value = float(scipy.stats.chi2.sf(max(lrt, 0.0), 1))
            if p_value < (1.0 - threshold):
                degree += 1
                fits[degree] = candidate
            else:
                break
        fit = fits[degree]
        beta = fit["beta"]
        try:
            covariance = np.linalg.inv(fit["hessian"])
        except np.linalg.LinAlgError as exc:
            raise AlgorithmError(f"singular Hessian in calibration fit: {exc}") from exc

        g_grid = np.linspace(fit["g_min"], fit["g_max"], self.params["n_grid"])
        basis = np.column_stack([g_grid**j for j in range(degree + 1)])
        eta = basis @ beta
        standard_errors = np.sqrt(
            np.clip(np.einsum("ij,jk,ik->i", basis, covariance, basis), 0.0, None)
        )
        p_grid = 1.0 / (1.0 + np.exp(-g_grid))

        def band(confidence: float) -> dict[str, list[float]]:
            z = scipy.stats.norm.ppf(0.5 + confidence / 2.0)
            return {
                "lower": (1.0 / (1.0 + np.exp(-(eta - z * standard_errors)))).tolist(),
                "upper": (1.0 / (1.0 + np.exp(-(eta + z * standard_errors)))).tolist(),
            }

        # Calibration test: fitted polynomial vs the identity curve.
        t_statistic = 2.0 * (fit["log_likelihood"] - fit["identity_ll"])
        test_df = degree + 1
        p_value = float(scipy.stats.chi2.sf(max(t_statistic, 0.0), test_df))
        observed = 1.0 / (1.0 + np.exp(-eta))
        return {
            "outcome": outcome,
            "predictor": predictor,
            "degree": degree,
            "coefficients": beta.tolist(),
            "n_observations": fit["n"],
            "probability_grid": p_grid.tolist(),
            "calibration_curve": observed.tolist(),
            "belt_80": band(0.80),
            "belt_95": band(0.95),
            "test_statistic": float(t_statistic),
            "test_df": test_df,
            "test_p_value": p_value,
            "well_calibrated": p_value > 0.05,
        }

    def _fit_degree(self, view, outcome, predictor, degree: int) -> dict[str, Any]:
        p = degree + 1
        beta = np.zeros(p)
        beta[1] = 1.0  # start at the identity calibration
        log_likelihood = -np.inf
        result: dict[str, Any] = {}
        for _ in range(self.params["max_iterations"]):
            beta_transfer = self.global_run(
                func=publish_beta, keyword_args={"beta_in": beta.tolist()}, share_to_locals=[True]
            )
            handle = self.local_run(
                func=calibration_step_local,
                keyword_args={
                    "data": view,
                    "outcome": outcome,
                    "predictor": predictor,
                    "degree": degree,
                    "beta": beta_transfer,
                },
                share_to_global=[True],
            )
            aggregate = self.ctx.get_transfer_data(handle)
            gradient = np.asarray(aggregate["gradient"], dtype=np.float64)
            hessian = np.asarray(aggregate["hessian"], dtype=np.float64)
            new_ll = float(aggregate["log_likelihood"])
            result = {
                "beta": beta.copy(),
                "hessian": hessian,
                "log_likelihood": new_ll,
                "identity_ll": float(aggregate["identity_ll"]),
                "n": int(aggregate["n"]),
                "g_min": float(aggregate["g_min"]),
                "g_max": float(aggregate["g_max"]),
            }
            step = np.linalg.solve(hessian + 1e-10 * np.eye(p), gradient)
            beta = beta + step
            if abs(new_ll - log_likelihood) < 1e-10:
                break
            log_likelihood = new_ll
        result["beta"] = beta
        return result
