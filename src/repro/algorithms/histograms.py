"""Federated histograms — the dashboard's multi-facets exploration view.

One numeric or nominal variable, optionally stratified by a nominal factor:
numeric variables aggregate per-bin counts over a shared grid (bounds from
the CDE catalogue or secure min/max); nominal variables aggregate level
counts.  All counts travel as secure sums.  Bins smaller than the privacy
threshold are suppressed before release, matching the dashboard's behaviour
for low-count cells.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)

#: Cells with fewer observations than this are reported as 0 (suppressed).
SUPPRESSION_THRESHOLD = 5


@udf(data=relation(), variable=literal(), return_type=[secure_transfer()])
def histogram_bounds_local(data, variable):
    """Secure range discovery when the CDE declares no bounds."""
    values = np.asarray(data[variable], dtype=np.float64)
    return {
        "min": {"data": float(values.min()), "operation": "min"},
        "max": {"data": float(values.max()), "operation": "max"},
    }


@udf(
    data=relation(),
    variable=literal(),
    edges=literal(),
    levels=literal(),
    group_variable=literal(),
    group_levels=literal(),
    return_type=[secure_transfer()],
)
def histogram_counts_local(data, variable, edges, levels, group_variable, group_levels):
    """Per-(group, bin) counts; ``levels`` non-empty means a nominal variable."""
    if group_variable is None:
        group_masks = [("all", np.ones(len(data), dtype=bool))]
    else:
        group_values = data[group_variable]
        group_masks = [(g, group_values == g) for g in group_levels]
    payload = {}
    for index, (group, mask) in enumerate(group_masks):
        if levels:
            values = data[variable][mask]
            counts = _h.category_counts(values, levels)
        else:
            values = np.asarray(data[variable], dtype=np.float64)[mask]
            counts = _h.histogram_counts(values, np.asarray(edges))
        payload[f"counts_{index}"] = {"data": counts.tolist(), "operation": "sum"}
    return payload


@register_algorithm
class Histogram(FederatedAlgorithm):
    """Histogram of one variable, optionally stratified by a nominal factor."""

    name = "histogram"
    label = "Multiple Histograms"
    needs_y = "required"
    needs_x = "optional"
    y_types = ("numeric", "nominal")
    x_types = ("nominal",)
    parameters = (
        ParameterSpec("n_bins", "int", label="Bins for numeric variables",
                      default=20, min_value=2, max_value=200),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        variable = self.y[0]
        group_variable = self.x[0] if self.x else None
        variables = [variable] + ([group_variable] if group_variable else [])
        metadata = resolve_observed_levels(self, variables)
        info = metadata.get(variable, {})
        is_nominal = bool(info.get("is_categorical"))
        levels = list(info.get("enumerations", [])) if is_nominal else []
        group_levels = (
            list(metadata.get(group_variable, {}).get("enumerations", []))
            if group_variable
            else ["all"]
        )
        if group_variable and not group_levels:
            raise AlgorithmError(f"no observed levels for {group_variable!r}")

        view = self.data_view(variables)
        edges: list[float] = []
        if not is_nominal:
            low, high = info.get("min"), info.get("max")
            if low is None or high is None:
                bounds = self.ctx.get_transfer_data(self.local_run(
                    histogram_bounds_local,
                    {"data": view, "variable": variable},
                    share_to_global=[True],
                ))
                low, high = float(bounds["min"]), float(bounds["max"])
            if high <= low:
                high = low + 1.0
            edges = np.linspace(float(low), float(high), self.params["n_bins"] + 1).tolist()

        counts = self.ctx.get_transfer_data(self.local_run(
            histogram_counts_local,
            {
                "data": view,
                "variable": variable,
                "edges": edges,
                "levels": levels,
                "group_variable": group_variable,
                "group_levels": group_levels if group_variable else [],
            },
            share_to_global=[True],
        ))
        histograms: dict[str, Any] = {}
        suppressed = 0
        for index, group in enumerate(group_levels):
            raw = np.asarray(counts[f"counts_{index}"], dtype=np.int64)
            small = (raw > 0) & (raw < SUPPRESSION_THRESHOLD)
            suppressed += int(small.sum())
            released = np.where(small, 0, raw)
            histograms[group] = {
                "counts": released.tolist(),
                "total": int(raw.sum()),
            }
        result: dict[str, Any] = {
            "variable": variable,
            "kind": "nominal" if is_nominal else "numeric",
            "groups": group_levels,
            "histograms": histograms,
            "suppressed_cells": suppressed,
        }
        if is_nominal:
            result["levels"] = levels
        else:
            result["edges"] = edges
        if group_variable:
            result["group_variable"] = group_variable
        return result
