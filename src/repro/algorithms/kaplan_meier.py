"""Federated Kaplan-Meier estimator with Greenwood intervals and log-rank.

Exact Kaplan-Meier needs individual event times, which never leave a worker.
The federated estimator discretizes time on a shared grid (bounds via secure
min/max, resolution a parameter): workers return per-bin event and censoring
counts, secure sums combine them, and the master computes the product-limit
curve per group plus the log-rank test across groups.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(data=relation(), time_variable=literal(), return_type=[secure_transfer()])
def km_bounds_local(data, time_variable):
    """Global time range for the shared grid."""
    times = np.asarray(data[time_variable], dtype=np.float64)
    return {
        "min": {"data": float(times.min()), "operation": "min"},
        "max": {"data": float(times.max()), "operation": "max"},
        "n": {"data": int(len(times)), "operation": "sum"},
    }


@udf(
    data=relation(),
    time_variable=literal(),
    event_variable=literal(),
    group_variable=literal(),
    groups=literal(),
    edges=literal(),
    return_type=[secure_transfer()],
)
def km_counts_local(data, time_variable, event_variable, group_variable, groups, edges):
    """Per-group, per-bin event and censoring counts."""
    times = np.asarray(data[time_variable], dtype=np.float64)
    events = np.asarray(data[event_variable], dtype=np.float64) > 0.5
    grid = np.asarray(edges, dtype=np.float64)
    payload = {}
    if group_variable is None:
        group_masks = {"all": np.ones(len(times), dtype=bool)}
    else:
        values = data[group_variable]
        group_masks = {g: values == g for g in groups}
    for index, (group, mask) in enumerate(group_masks.items()):
        event_hist = _h.histogram_counts(times[mask & events], grid)
        censor_hist = _h.histogram_counts(times[mask & ~events], grid)
        payload[f"events_{index}"] = {"data": event_hist.tolist(), "operation": "sum"}
        payload[f"censored_{index}"] = {"data": censor_hist.tolist(), "operation": "sum"}
        payload[f"n_{index}"] = {"data": int(mask.sum()), "operation": "sum"}
    return payload


def km_curve(events: np.ndarray, censored: np.ndarray, n_start: int) -> dict[str, Any]:
    """Product-limit estimate with Greenwood standard errors over a grid.

    Censored subjects in a bin are treated as at risk for that bin's events
    (the usual convention when ties are grouped).
    """
    n_bins = len(events)
    at_risk = np.zeros(n_bins, dtype=np.float64)
    survival = np.zeros(n_bins, dtype=np.float64)
    variance_terms = 0.0
    current = float(n_start)
    s = 1.0
    greenwood = []
    for j in range(n_bins):
        at_risk[j] = current
        d = float(events[j])
        if current > 0 and d > 0:
            s *= 1.0 - d / current
            if current > d:
                variance_terms += d / (current * (current - d))
        survival[j] = s
        greenwood.append(s * np.sqrt(variance_terms) if s > 0 else 0.0)
        current -= d + float(censored[j])
        current = max(current, 0.0)
    se = np.asarray(greenwood)
    return {
        "survival": survival.tolist(),
        "at_risk": at_risk.tolist(),
        "std_err": se.tolist(),
        "ci_lower": np.clip(survival - 1.96 * se, 0.0, 1.0).tolist(),
        "ci_upper": np.clip(survival + 1.96 * se, 0.0, 1.0).tolist(),
    }


def _median_survival(survival: list[float], grid_times: np.ndarray) -> float | None:
    """First grid time at which survival drops to 0.5 or below (None if the
    curve never reaches it within follow-up)."""
    for time, probability in zip(grid_times, survival):
        if probability <= 0.5:
            return float(time)
    return None


def log_rank_test(
    group_events: list[np.ndarray], group_at_risk: list[np.ndarray]
) -> dict[str, float]:
    """Log-rank chi-square across groups from binned counts."""
    k = len(group_events)
    observed = np.array([events.sum() for events in group_events], dtype=np.float64)
    expected = np.zeros(k)
    n_bins = len(group_events[0])
    for j in range(n_bins):
        at_risk = np.array([risk[j] for risk in group_at_risk])
        total_at_risk = at_risk.sum()
        total_events = sum(events[j] for events in group_events)
        if total_at_risk > 0:
            expected += total_events * at_risk / total_at_risk
    with np.errstate(divide="ignore", invalid="ignore"):
        chi_square = float(np.nansum((observed - expected) ** 2 / np.where(expected > 0, expected, np.nan)))
    df = k - 1
    return {
        "chi_square": chi_square,
        "degrees_of_freedom": df,
        "p_value": float(scipy.stats.chi2.sf(chi_square, df)),
        "observed": observed.tolist(),
        "expected": expected.tolist(),
    }


@register_algorithm
class KaplanMeier(FederatedAlgorithm):
    """Kaplan-Meier survival curves, optionally stratified by one factor."""

    name = "kaplan_meier"
    label = "Kaplan-Meier Estimator"
    needs_y = "required"
    needs_x = "optional"
    y_types = ("numeric",)
    x_types = ("nominal",)
    parameters = (
        ParameterSpec("n_bins", "int", label="Time-grid resolution", default=50,
                      min_value=5, max_value=500),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        if len(self.y) != 2:
            raise AlgorithmError(
                "Kaplan-Meier needs two y variables: time-to-event and event indicator"
            )
        time_variable, event_variable = self.y
        group_variable = self.x[0] if self.x else None
        variables = [time_variable, event_variable] + ([group_variable] if group_variable else [])

        if group_variable:
            metadata = resolve_observed_levels(self, variables)
            groups = list(metadata.get(group_variable, {}).get("enumerations", []))
            if len(groups) < 1:
                raise AlgorithmError(f"no observed levels for {group_variable!r}")
        else:
            groups = ["all"]

        bounds_handle = self.local_run(
            func=km_bounds_local,
            keyword_args={
                "data": self.data_view(variables),
                "time_variable": time_variable,
            },
            share_to_global=[True],
        )
        bounds = self.ctx.get_transfer_data(bounds_handle)
        t_min, t_max = float(bounds["min"]), float(bounds["max"])
        if t_max <= t_min:
            t_max = t_min + 1.0
        n_bins = self.params["n_bins"]
        edges = np.linspace(t_min, t_max, n_bins + 1)

        counts_handle = self.local_run(
            func=km_counts_local,
            keyword_args={
                "data": self.data_view(variables),
                "time_variable": time_variable,
                "event_variable": event_variable,
                "group_variable": group_variable,
                "groups": groups,
                "edges": edges.tolist(),
            },
            share_to_global=[True],
        )
        counts = self.ctx.get_transfer_data(counts_handle)
        curves: dict[str, Any] = {}
        group_events = []
        group_at_risk = []
        grid_times = edges[1:]
        for index, group in enumerate(groups):
            events = np.asarray(counts[f"events_{index}"], dtype=np.int64)
            censored = np.asarray(counts[f"censored_{index}"], dtype=np.int64)
            n_group = int(counts[f"n_{index}"])
            curve = km_curve(events, censored, n_group)
            curve["n_subjects"] = n_group
            curve["n_events"] = int(events.sum())
            curve["median_survival"] = _median_survival(curve["survival"], grid_times)
            curves[group] = curve
            group_events.append(events.astype(np.float64))
            group_at_risk.append(np.asarray(curve["at_risk"]))
        result: dict[str, Any] = {
            "time_grid": edges[1:].tolist(),
            "groups": groups,
            "curves": curves,
            "n_observations": int(bounds["n"]),
        }
        if len(groups) > 1:
            result["log_rank"] = log_rank_test(group_events, group_at_risk)
        return result
