"""Shared preprocessing steps for federated algorithms.

Dummy coding a nominal covariate needs the set of levels that actually occur
across the federation; levels listed in the CDE catalogue but absent from
every selected dataset would create all-zero design columns (singular
X^T X).  The observed-level discovery is a textbook use of the SMPC
*disjoint union* operation: each worker contributes the characteristic
vector of its local levels over the catalogued enumeration, and only the
union — never which worker holds which level — is revealed.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(data=relation(), variables=literal(), metadata=literal(), return_type=[secure_transfer()])
def observed_levels_local(data, variables, metadata):
    """Characteristic vectors of locally observed levels, per nominal variable."""
    payload = {}
    for variable in variables:
        info = metadata.get(variable, {})
        levels = list(info.get("enumerations", []))
        values = data[variable]
        present = [int((values == level).any()) for level in levels]
        payload[variable] = {"data": present, "operation": "union"}
    return payload


def resolve_observed_levels(
    algorithm: FederatedAlgorithm, variables: list[str]
) -> dict[str, dict[str, Any]]:
    """Return metadata whose enumerations keep only levels observed anywhere.

    Numeric variables pass through unchanged; nominal variables not in
    ``variables`` keep their catalogued enumerations.
    """
    nominal = [
        v for v in variables if algorithm.metadata.get(v, {}).get("is_categorical")
    ]
    metadata = {k: dict(v) for k, v in algorithm.metadata.items()}
    if not nominal:
        return metadata
    view = algorithm.data_view(variables)
    handle = algorithm.local_run(
        func=observed_levels_local,
        keyword_args={
            "data": view,
            "variables": nominal,
            "metadata": algorithm.metadata,
        },
        share_to_global=[True],
    )
    union = algorithm.ctx.get_transfer_data(handle)
    for variable in nominal:
        catalogued = list(metadata[variable].get("enumerations", []))
        mask = union[variable]
        observed = [level for level, present in zip(catalogued, mask) if present]
        metadata[variable]["enumerations"] = observed
    return metadata
