"""Federated Pearson correlation matrix with per-pair inference."""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(data=relation(), variables=literal(), return_type=[secure_transfer()])
def pearson_local(data, variables):
    """Cross-moment sums over complete rows of the selected variables."""
    matrix = np.column_stack(
        [np.asarray(data[v], dtype=np.float64) for v in variables]
    )
    return {
        "n": {"data": int(matrix.shape[0]), "operation": "sum"},
        "sums": {"data": matrix.sum(axis=0).tolist(), "operation": "sum"},
        "cross": {"data": (matrix.T @ matrix).tolist(), "operation": "sum"},
    }


@udf(data=relation(), variables=literal(), return_type=[secure_transfer()])
def pearson_pairwise_local(data, variables):
    """Per-pair moment sums over the rows complete for *that pair*.

    Sparse clinical data loses many rows to complete-case deletion when the
    variable set grows; pairwise-complete correlation keeps every pair's
    usable rows (at the cost of a non-PSD matrix in the worst case).
    """
    columns = [np.asarray(data[v], dtype=np.float64) for v in variables]
    payload = {}
    k = len(variables)
    for i in range(k):
        for j in range(i, k):
            both = ~np.isnan(columns[i]) & ~np.isnan(columns[j])
            x = columns[i][both]
            y = columns[j][both]
            key = f"p{i}_{j}"
            payload[f"{key}_n"] = {"data": int(both.sum()), "operation": "sum"}
            payload[f"{key}_sx"] = {"data": float(x.sum()), "operation": "sum"}
            payload[f"{key}_sy"] = {"data": float(y.sum()), "operation": "sum"}
            payload[f"{key}_sxx"] = {"data": float((x**2).sum()), "operation": "sum"}
            payload[f"{key}_syy"] = {"data": float((y**2).sum()), "operation": "sum"}
            payload[f"{key}_sxy"] = {"data": float((x * y).sum()), "operation": "sum"}
    return payload


def correlation_from_moments(
    n: int, sums: np.ndarray, cross: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Correlation matrix and two-sided p-values from aggregated moments."""
    if n < 3:
        raise AlgorithmError(f"not enough observations for correlation (n={n})")
    means = sums / n
    covariance = (cross - n * np.outer(means, means)) / (n - 1)
    stds = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
    denominator = np.outer(stds, stds)
    with np.errstate(divide="ignore", invalid="ignore"):
        correlations = np.where(denominator > 0, covariance / denominator, 0.0)
    correlations = np.clip(correlations, -1.0, 1.0)
    np.fill_diagonal(correlations, 1.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = correlations * np.sqrt((n - 2) / np.clip(1 - correlations**2, 1e-12, None))
    p_values = 2.0 * scipy.stats.t.sf(np.abs(t_values), n - 2)
    np.fill_diagonal(p_values, 0.0)
    return correlations, p_values


@register_algorithm
class PearsonCorrelation(FederatedAlgorithm):
    """Pairwise Pearson correlations among numeric variables.

    ``complete_cases=True`` (default) drops rows with any NA among the
    selected variables; ``False`` uses pairwise-complete observations, so
    each pair keeps all its usable rows.
    """

    name = "pearson_correlation"
    label = "Pearson Correlation"
    needs_y = "required"
    needs_x = "optional"
    y_types = ("numeric",)
    x_types = ("numeric",)
    parameters = (
        ParameterSpec("complete_cases", "bool",
                      label="Complete-case (vs pairwise-complete) deletion",
                      default=True),
    )

    def run(self) -> dict[str, Any]:
        variables = list(dict.fromkeys(list(self.y) + list(self.x)))
        if len(variables) < 2:
            raise AlgorithmError("Pearson correlation needs at least two variables")
        if self.params["complete_cases"]:
            return self._complete_case(variables)
        return self._pairwise(variables)

    def _complete_case(self, variables: list[str]) -> dict[str, Any]:
        handle = self.local_run(
            func=pearson_local,
            keyword_args={"data": self.data_view(variables), "variables": variables},
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        n = int(sums["n"])
        correlations, p_values = correlation_from_moments(
            n, np.asarray(sums["sums"]), np.asarray(sums["cross"])
        )
        # Fisher z confidence intervals.
        with np.errstate(divide="ignore"):
            z = np.arctanh(np.clip(correlations, -0.999999, 0.999999))
        margin = 1.959963984540054 / np.sqrt(n - 3) if n > 3 else np.inf
        ci_lower = np.tanh(z - margin)
        ci_upper = np.tanh(z + margin)
        return {
            "variables": variables,
            "n_observations": n,
            "correlations": correlations.tolist(),
            "p_values": p_values.tolist(),
            "ci_lower": ci_lower.tolist(),
            "ci_upper": ci_upper.tolist(),
            "complete_cases": True,
        }

    def _pairwise(self, variables: list[str]) -> dict[str, Any]:
        handle = self.local_run(
            func=pearson_pairwise_local,
            keyword_args={
                "data": self.data_view(variables, dropna=False),
                "variables": variables,
            },
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        k = len(variables)
        correlations = np.eye(k)
        p_values = np.zeros((k, k))
        pair_counts = np.zeros((k, k), dtype=np.int64)
        for i in range(k):
            for j in range(i, k):
                key = f"p{i}_{j}"
                n = int(sums[f"{key}_n"])
                pair_counts[i, j] = pair_counts[j, i] = n
                if i == j:
                    continue
                if n < 3:
                    raise AlgorithmError(
                        f"pair ({variables[i]}, {variables[j]}) has only {n} "
                        "complete observations"
                    )
                sx, sy = float(sums[f"{key}_sx"]), float(sums[f"{key}_sy"])
                sxx, syy = float(sums[f"{key}_sxx"]), float(sums[f"{key}_syy"])
                sxy = float(sums[f"{key}_sxy"])
                cov = sxy - sx * sy / n
                var_x = sxx - sx**2 / n
                var_y = syy - sy**2 / n
                denominator = np.sqrt(max(var_x, 0.0) * max(var_y, 0.0))
                r = float(np.clip(cov / denominator, -1.0, 1.0)) if denominator > 0 else 0.0
                correlations[i, j] = correlations[j, i] = r
                t = r * np.sqrt((n - 2) / max(1 - r**2, 1e-12))
                p = 2.0 * scipy.stats.t.sf(abs(t), n - 2)
                p_values[i, j] = p_values[j, i] = float(p)
        return {
            "variables": variables,
            "pair_counts": pair_counts.tolist(),
            "correlations": correlations.tolist(),
            "p_values": p_values.tolist(),
            "complete_cases": False,
        }
