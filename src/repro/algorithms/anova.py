"""Federated ANOVA: one-way (group moments) and two-way (nested models).

One-way works from per-group moment sums.  Two-way fits the sequential
(Type I) decomposition ``y ~ A``, ``y ~ A + B``, ``y ~ A + B + A:B`` from a
single aggregated X^T X of the full-interaction design, so it handles
unbalanced data correctly.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(
    data=relation(),
    response=literal(),
    factor=literal(),
    levels=literal(),
    return_type=[secure_transfer()],
)
def anova_oneway_local(data, response, factor, levels):
    """Per-level moment sums."""
    values = np.asarray(data[response], dtype=np.float64)
    groups = data[factor]
    payload = {}
    for index, level in enumerate(levels):
        selected = values[groups == level]
        payload[f"n_{index}"] = {"data": int(len(selected)), "operation": "sum"}
        payload[f"sum_{index}"] = {"data": float(selected.sum()), "operation": "sum"}
        payload[f"sumsq_{index}"] = {"data": float((selected**2).sum()), "operation": "sum"}
    return payload


@udf(
    data=relation(),
    response=literal(),
    factor_a=literal(),
    factor_b=literal(),
    levels_a=literal(),
    levels_b=literal(),
    return_type=[secure_transfer()],
)
def anova_twoway_local(data, response, factor_a, factor_b, levels_a, levels_b):
    """Sufficient statistics of the full-interaction design."""
    y = np.asarray(data[response], dtype=np.float64)
    a_values = data[factor_a]
    b_values = data[factor_b]
    n = len(y)
    columns = [np.ones(n)]
    a_dummies = [(a_values == level).astype(np.float64) for level in levels_a[1:]]
    b_dummies = [(b_values == level).astype(np.float64) for level in levels_b[1:]]
    columns.extend(a_dummies)
    columns.extend(b_dummies)
    for da in a_dummies:
        for db in b_dummies:
            columns.append(da * db)
    design = np.column_stack(columns)
    stats = _h.regression_sufficient_stats(design, y)
    return {
        "xtx": {"data": stats["xtx"].tolist(), "operation": "sum"},
        "xty": {"data": stats["xty"].tolist(), "operation": "sum"},
        "yty": {"data": stats["yty"], "operation": "sum"},
        "sum_y": {"data": stats["sum_y"], "operation": "sum"},
        "n": {"data": stats["n"], "operation": "sum"},
    }


def _sse_for_columns(
    xtx: np.ndarray, xty: np.ndarray, yty: float, columns: list[int]
) -> float:
    """Residual sum of squares of the sub-model using the given columns."""
    sub_xtx = xtx[np.ix_(columns, columns)]
    sub_xty = xty[columns]
    coefficients, *_ = np.linalg.lstsq(sub_xtx, sub_xty, rcond=None)
    return float(yty - coefficients @ sub_xty)


def tukey_hsd(
    levels: list[str],
    counts: np.ndarray,
    means: np.ndarray,
    ms_within: float,
    df_within: int,
) -> list[dict[str, Any]]:
    """Tukey's HSD pairwise comparisons from aggregated group statistics.

    Uses the Tukey-Kramer adjustment for unbalanced groups and the
    studentized-range distribution for the adjusted p-values — computable
    entirely from the same secure sums the omnibus F-test needs.
    """
    k = len(levels)
    comparisons = []
    for i in range(k):
        for j in range(i + 1, k):
            difference = float(means[i] - means[j])
            standard_error = float(
                np.sqrt(ms_within / 2.0 * (1.0 / counts[i] + 1.0 / counts[j]))
            )
            q_statistic = abs(difference) / standard_error if standard_error > 0 else np.inf
            p_value = float(scipy.stats.studentized_range.sf(q_statistic, k, df_within))
            q_critical = float(scipy.stats.studentized_range.ppf(0.95, k, df_within))
            margin = q_critical * standard_error
            comparisons.append(
                {
                    "groups": [levels[i], levels[j]],
                    "mean_difference": difference,
                    "q_statistic": float(q_statistic),
                    "p_adjusted": min(p_value, 1.0),
                    "ci_lower": difference - margin,
                    "ci_upper": difference + margin,
                    "significant": p_value < 0.05,
                }
            )
    return comparisons


@register_algorithm
class AnovaOneWay(FederatedAlgorithm):
    """One-way ANOVA of a numeric response across the levels of one factor,
    with optional Tukey HSD post-hoc pairwise comparisons."""

    name = "anova_oneway"
    label = "ANOVA One-way"
    needs_y = "required"
    needs_x = "required"
    y_types = ("numeric",)
    x_types = ("nominal",)
    parameters = (
        ParameterSpec("pairwise", "bool", label="Tukey HSD pairwise comparisons",
                      default=True),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        response = self.y[0]
        factor = self.x[0]
        metadata = resolve_observed_levels(self, [response, factor])
        levels = list(metadata.get(factor, {}).get("enumerations", []))
        if len(levels) < 2:
            raise AlgorithmError(f"ANOVA needs at least 2 observed groups, found {levels}")
        handle = self.local_run(
            func=anova_oneway_local,
            keyword_args={
                "data": self.data_view([response, factor]),
                "response": response,
                "factor": factor,
                "levels": levels,
            },
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        counts = np.array([int(sums[f"n_{i}"]) for i in range(len(levels))])
        totals = np.array([float(sums[f"sum_{i}"]) for i in range(len(levels))])
        squares = np.array([float(sums[f"sumsq_{i}"]) for i in range(len(levels))])
        if (counts < 2).any():
            small = [levels[i] for i in np.flatnonzero(counts < 2)]
            raise AlgorithmError(f"groups with fewer than 2 observations: {small}")
        n = int(counts.sum())
        k = len(levels)
        means = totals / counts
        grand_mean = totals.sum() / n
        ss_between = float((counts * (means - grand_mean) ** 2).sum())
        ss_within = float((squares - counts * means**2).sum())
        df_between = k - 1
        df_within = n - k
        ms_between = ss_between / df_between
        ms_within = ss_within / df_within
        if ms_within <= 0:
            raise AlgorithmError("zero within-group variance; F undefined")
        f_statistic = ms_between / ms_within
        p_value = float(scipy.stats.f.sf(f_statistic, df_between, df_within))
        group_stds = np.sqrt(
            np.clip((squares - counts * means**2) / np.maximum(counts - 1, 1), 0.0, None)
        )
        result = {
            "factor": factor,
            "response": response,
            "groups": levels,
            "group_counts": counts.tolist(),
            "group_means": means.tolist(),
            "group_stds": group_stds.tolist(),
            "ss_between": ss_between,
            "ss_within": ss_within,
            "df_between": df_between,
            "df_within": df_within,
            "f_statistic": float(f_statistic),
            "p_value": p_value,
            "eta_squared": ss_between / (ss_between + ss_within),
        }
        if self.params["pairwise"]:
            result["pairwise_comparisons"] = tukey_hsd(
                levels, counts, means, ms_within, df_within
            )
        return result


@register_algorithm
class AnovaTwoWay(FederatedAlgorithm):
    """Two-way ANOVA with interaction (sequential Type I sums of squares)."""

    name = "anova_twoway"
    label = "ANOVA Two-way"
    needs_y = "required"
    needs_x = "required"
    y_types = ("numeric",)
    x_types = ("nominal",)

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        if len(self.x) != 2:
            raise AlgorithmError("two-way ANOVA needs exactly two nominal factors")
        response = self.y[0]
        factor_a, factor_b = self.x
        metadata = resolve_observed_levels(self, [response, factor_a, factor_b])
        levels_a = list(metadata.get(factor_a, {}).get("enumerations", []))
        levels_b = list(metadata.get(factor_b, {}).get("enumerations", []))
        if len(levels_a) < 2 or len(levels_b) < 2:
            raise AlgorithmError("each factor needs at least 2 observed levels")
        handle = self.local_run(
            func=anova_twoway_local,
            keyword_args={
                "data": self.data_view([response, factor_a, factor_b]),
                "response": response,
                "factor_a": factor_a,
                "factor_b": factor_b,
                "levels_a": levels_a,
                "levels_b": levels_b,
            },
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        xtx = np.asarray(sums["xtx"], dtype=np.float64)
        xty = np.asarray(sums["xty"], dtype=np.float64)
        yty = float(sums["yty"])
        n = int(sums["n"])
        p_a = len(levels_a) - 1
        p_b = len(levels_b) - 1
        p_ab = p_a * p_b
        index_intercept = [0]
        index_a = list(range(1, 1 + p_a))
        index_b = list(range(1 + p_a, 1 + p_a + p_b))
        index_ab = list(range(1 + p_a + p_b, 1 + p_a + p_b + p_ab))
        sse_0 = _sse_for_columns(xtx, xty, yty, index_intercept)
        sse_a = _sse_for_columns(xtx, xty, yty, index_intercept + index_a)
        sse_ab = _sse_for_columns(xtx, xty, yty, index_intercept + index_a + index_b)
        sse_full = _sse_for_columns(
            xtx, xty, yty, index_intercept + index_a + index_b + index_ab
        )
        df_residual = n - (1 + p_a + p_b + p_ab)
        if df_residual <= 0:
            raise AlgorithmError("not enough observations for the interaction model")
        ms_residual = sse_full / df_residual

        def f_test(ss: float, df: int) -> tuple[float, float]:
            if df <= 0 or ms_residual <= 0:
                return 0.0, 1.0
            f_value = (ss / df) / ms_residual
            return float(f_value), float(scipy.stats.f.sf(f_value, df, df_residual))

        ss_a = max(sse_0 - sse_a, 0.0)
        ss_b = max(sse_a - sse_ab, 0.0)
        ss_ab = max(sse_ab - sse_full, 0.0)
        f_a, p_a_value = f_test(ss_a, p_a)
        f_b, p_b_value = f_test(ss_b, p_b)
        f_ab, p_ab_value = f_test(ss_ab, p_ab)
        return {
            "response": response,
            "factors": [factor_a, factor_b],
            "levels": {factor_a: levels_a, factor_b: levels_b},
            "n_observations": n,
            "terms": {
                factor_a: {"ss": ss_a, "df": p_a, "f": f_a, "p_value": p_a_value},
                factor_b: {"ss": ss_b, "df": p_b, "f": f_b, "p_value": p_b_value},
                f"{factor_a}:{factor_b}": {
                    "ss": ss_ab, "df": p_ab, "f": f_ab, "p_value": p_ab_value,
                },
                "residual": {"ss": sse_full, "df": df_residual},
            },
        }
