"""Federated Naive Bayes (Gaussian for numeric, categorical for nominal
features) with a cross-validated variant.

Training aggregates, per class: counts, per-numeric-feature moment sums, and
per-nominal-feature level counts — all secure sums.  The CV variant computes
per-fold statistics in one pass and scores held-out rows with the broadcast
per-fold models.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.observability.log import get_logger
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)

logger = get_logger("algorithms.naive_bayes")

#: Variance floor for Gaussian likelihoods (relative to feature scale).
VAR_SMOOTHING = 1e-9


@udf(
    data=relation(),
    target=literal(),
    classes=literal(),
    features=literal(),
    metadata=literal(),
    return_type=[secure_transfer()],
)
def naive_bayes_fit_local(data, target, classes, features, metadata):
    """Per-class sufficient statistics for all features."""
    labels = data[target]
    payload = {}
    for class_index, class_level in enumerate(classes):
        mask = labels == class_level
        payload[f"n_{class_index}"] = {"data": int(mask.sum()), "operation": "sum"}
        for feature_index, feature in enumerate(features):
            info = metadata.get(feature, {})
            values = data[feature][mask]
            key = f"f{feature_index}_c{class_index}"
            if info.get("is_categorical"):
                levels = list(info.get("enumerations", []))
                counts = _h.category_counts(values, levels)
                payload[f"{key}_counts"] = {"data": counts.tolist(), "operation": "sum"}
            else:
                numeric = np.asarray(values, dtype=np.float64)
                payload[f"{key}_sum"] = {"data": float(numeric.sum()), "operation": "sum"}
                payload[f"{key}_sumsq"] = {
                    "data": float((numeric**2).sum()), "operation": "sum",
                }
    return payload


@udf(
    data=relation(),
    target=literal(),
    features=literal(),
    metadata=literal(),
    model=transfer(),
    n_folds=literal(),
    seed=literal(),
    return_type=[secure_transfer()],
)
def naive_bayes_eval_local(data, target, features, metadata, model, n_folds, seed):
    """Held-out multiclass confusion counts per fold.

    ``model`` carries one Naive Bayes model per fold (trained on the other
    folds); each worker scores only its rows of the held-out fold.
    """
    labels = data[target]
    classes = model["classes"]
    folds = _h.fold_assignments(len(labels), n_folds, seed)
    payload = {}
    for held_out in range(n_folds):
        fold_model = model["models"][held_out]
        mask = folds == held_out
        confusion = np.zeros((len(classes), len(classes)), dtype=np.int64)
        indices = np.flatnonzero(mask)
        if len(indices):
            log_scores = np.tile(
                np.log(np.asarray(fold_model["priors"], dtype=np.float64)),
                (len(indices), 1),
            )
            for feature_index, feature in enumerate(features):
                info = metadata.get(feature, {})
                values = data[feature][mask]
                for class_index in range(len(classes)):
                    params = fold_model["features"][feature_index][class_index]
                    if info.get("is_categorical"):
                        levels = list(info.get("enumerations", []))
                        probabilities = np.asarray(params["level_probs"], dtype=np.float64)
                        level_index = {level: i for i, level in enumerate(levels)}
                        idx = np.array([level_index[v] for v in values])
                        log_scores[:, class_index] += np.log(probabilities[idx])
                    else:
                        mean = params["mean"]
                        variance = params["var"]
                        numeric = np.asarray(values, dtype=np.float64)
                        log_scores[:, class_index] += (
                            -0.5 * np.log(2 * np.pi * variance)
                            - (numeric - mean) ** 2 / (2 * variance)
                        )
            predicted = log_scores.argmax(axis=1)
            actual_levels = labels[mask]
            class_index_of = {level: i for i, level in enumerate(classes)}
            for predicted_index, actual in zip(predicted, actual_levels):
                confusion[class_index_of[actual], predicted_index] += 1
        payload[f"confusion_{held_out}"] = {
            "data": confusion.tolist(), "operation": "sum",
        }
    return payload


@udf(model_in=literal(), return_type=[transfer()])
def _publish_model(model_in):
    """Materialize a model description as a broadcastable transfer."""
    return model_in


def build_model(
    classes: list[str],
    features: list[str],
    metadata: dict[str, Any],
    aggregates: dict[str, Any],
    alpha: float,
) -> dict[str, Any]:
    """Assemble the Naive Bayes parameters from aggregated statistics."""
    class_counts = np.array(
        [float(aggregates[f"n_{i}"]) for i in range(len(classes))]
    )
    total = class_counts.sum()
    if total == 0:
        raise AlgorithmError("no training observations")
    priors = (class_counts + alpha) / (total + alpha * len(classes))
    feature_params: list[list[dict[str, Any]]] = []
    for feature_index, feature in enumerate(features):
        info = metadata.get(feature, {})
        per_class: list[dict[str, Any]] = []
        for class_index in range(len(classes)):
            key = f"f{feature_index}_c{class_index}"
            n_class = class_counts[class_index]
            if info.get("is_categorical"):
                counts = np.asarray(aggregates[f"{key}_counts"], dtype=np.float64)
                probabilities = (counts + alpha) / (n_class + alpha * len(counts))
                per_class.append({"level_probs": probabilities.tolist()})
            else:
                total_sum = float(aggregates[f"{key}_sum"])
                total_squares = float(aggregates[f"{key}_sumsq"])
                mean = total_sum / n_class if n_class else 0.0
                variance = (
                    max(total_squares / n_class - mean**2, 0.0) if n_class else 1.0
                )
                per_class.append({"mean": mean, "var": variance + VAR_SMOOTHING + 1e-12})
        feature_params.append(per_class)
    return {
        "classes": classes,
        "priors": priors.tolist(),
        "class_counts": class_counts.tolist(),
        "features": feature_params,
        "feature_names": features,
    }


class _NaiveBayesBase(FederatedAlgorithm):
    needs_y = "required"
    needs_x = "required"
    y_types = ("nominal",)
    x_types = ("numeric", "nominal")

    def _prepare(self):
        from repro.algorithms.preprocessing import resolve_observed_levels

        target = self.y[0]
        variables = [target] + list(self.x)
        metadata = resolve_observed_levels(self, variables)
        classes = list(metadata.get(target, {}).get("enumerations", []))
        if len(classes) < 2:
            raise AlgorithmError(f"target {target!r} has fewer than 2 observed classes")
        return target, metadata, classes

    def _fit(self, target, metadata, classes, view, alpha):
        handle = self.local_run(
            func=naive_bayes_fit_local,
            keyword_args={
                "data": view,
                "target": target,
                "classes": classes,
                "features": list(self.x),
                "metadata": metadata,
            },
            share_to_global=[True],
        )
        aggregates = self.ctx.get_transfer_data(handle)
        return build_model(classes, list(self.x), metadata, aggregates, alpha)


@register_algorithm
class NaiveBayesTraining(_NaiveBayesBase):
    """Train a Naive Bayes classifier (no held-out evaluation)."""

    name = "naive_bayes"
    label = "Naive Bayes Training"
    parameters = (
        ParameterSpec("alpha", "real", label="Additive smoothing", default=1.0,
                      min_value=0.0),
    )

    def run(self) -> dict[str, Any]:
        target, metadata, classes = self._prepare()
        view = self.data_view([target] + list(self.x))
        model = self._fit(target, metadata, classes, view, self.params["alpha"])
        n_observations = int(sum(model["class_counts"]))
        logger.info(
            "naive_bayes_trained",
            target=target,
            classes=len(classes),
            features=list(self.x),
            n=n_observations,
        )
        return {"model": model, "target": target, "n_observations": n_observations}


@register_algorithm
class NaiveBayesCV(_NaiveBayesBase):
    """Naive Bayes with k-fold cross-validated classification metrics."""

    name = "naive_bayes_cv"
    label = "Naive Bayes with Cross Validation"
    parameters = (
        ParameterSpec("alpha", "real", label="Additive smoothing", default=1.0,
                      min_value=0.0),
        ParameterSpec("n_splits", "int", label="Number of folds", default=5,
                      min_value=2, max_value=20),
        ParameterSpec("seed", "int", label="Fold-split seed", default=0),
    )

    def run(self) -> dict[str, Any]:
        target, metadata, classes = self._prepare()
        view = self.data_view([target] + list(self.x))
        n_folds = self.params["n_splits"]
        seed = self.params["seed"]
        alpha = self.params["alpha"]

        fold_handle = self.local_run(
            func=naive_bayes_cv_fit_local,
            keyword_args={
                "data": view,
                "target": target,
                "classes": classes,
                "features": list(self.x),
                "metadata": metadata,
                "n_folds": n_folds,
                "seed": seed,
            },
            share_to_global=[True],
        )
        aggregates = self.ctx.get_transfer_data(fold_handle)
        models = []
        for held_out in range(n_folds):
            train_aggregate: dict[str, Any] = {}
            for class_index in range(len(classes)):
                train_aggregate[f"n_{class_index}"] = sum(
                    float(aggregates[f"fold{fold}_n_{class_index}"])
                    for fold in range(n_folds)
                    if fold != held_out
                )
                for feature_index, feature in enumerate(self.x):
                    key = f"f{feature_index}_c{class_index}"
                    info = metadata.get(feature, {})
                    if info.get("is_categorical"):
                        stacked = [
                            np.asarray(aggregates[f"fold{fold}_{key}_counts"], dtype=np.float64)
                            for fold in range(n_folds)
                            if fold != held_out
                        ]
                        train_aggregate[f"{key}_counts"] = np.sum(stacked, axis=0).tolist()
                    else:
                        train_aggregate[f"{key}_sum"] = sum(
                            float(aggregates[f"fold{fold}_{key}_sum"])
                            for fold in range(n_folds)
                            if fold != held_out
                        )
                        train_aggregate[f"{key}_sumsq"] = sum(
                            float(aggregates[f"fold{fold}_{key}_sumsq"])
                            for fold in range(n_folds)
                            if fold != held_out
                        )
            models.append(build_model(classes, list(self.x), metadata, train_aggregate, alpha))

        model_transfer = self.global_run(
            func=_publish_model,
            keyword_args={"model_in": {"classes": classes, "models": models}},
            share_to_locals=[True],
        )
        eval_handle = self.local_run(
            func=naive_bayes_eval_local,
            keyword_args={
                "data": view,
                "target": target,
                "features": list(self.x),
                "metadata": metadata,
                "model": model_transfer,
                "n_folds": n_folds,
                "seed": seed,
            },
            share_to_global=[True],
        )
        confusions = self.ctx.get_transfer_data(eval_handle)
        fold_metrics = []
        total_confusion = np.zeros((len(classes), len(classes)), dtype=np.int64)
        for held_out in range(n_folds):
            confusion = np.asarray(confusions[f"confusion_{held_out}"], dtype=np.int64)
            total_confusion += confusion
            correct = int(np.trace(confusion))
            total = int(confusion.sum())
            fold_metrics.append(
                {
                    "fold": held_out,
                    "n_test": total,
                    "accuracy": correct / total if total else 0.0,
                }
            )
        return {
            "classes": classes,
            "target": target,
            "n_splits": n_folds,
            "folds": fold_metrics,
            "mean_accuracy": float(np.mean([m["accuracy"] for m in fold_metrics])),
            "confusion_matrix": total_confusion.tolist(),
        }


@udf(
    data=relation(),
    target=literal(),
    classes=literal(),
    features=literal(),
    metadata=literal(),
    n_folds=literal(),
    seed=literal(),
    return_type=[secure_transfer()],
)
def naive_bayes_cv_fit_local(data, target, classes, features, metadata, n_folds, seed):
    """Per-fold, per-class sufficient statistics in one pass."""
    labels = data[target]
    folds = _h.fold_assignments(len(labels), n_folds, seed)
    payload = {}
    for fold in range(n_folds):
        fold_mask = folds == fold
        for class_index, class_level in enumerate(classes):
            mask = fold_mask & (labels == class_level)
            payload[f"fold{fold}_n_{class_index}"] = {
                "data": int(mask.sum()), "operation": "sum",
            }
            for feature_index, feature in enumerate(features):
                info = metadata.get(feature, {})
                values = data[feature][mask]
                key = f"fold{fold}_f{feature_index}_c{class_index}"
                if info.get("is_categorical"):
                    levels = list(info.get("enumerations", []))
                    counts = _h.category_counts(values, levels)
                    payload[f"{key}_counts"] = {"data": counts.tolist(), "operation": "sum"}
                else:
                    numeric = np.asarray(values, dtype=np.float64)
                    payload[f"{key}_sum"] = {
                        "data": float(numeric.sum()), "operation": "sum",
                    }
                    payload[f"{key}_sumsq"] = {
                        "data": float((numeric**2).sum()), "operation": "sum",
                    }
    return payload
