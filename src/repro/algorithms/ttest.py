"""Federated t-tests: independent two-sample, one-sample, paired.

All three reduce to secure sums of (n, sum, sum of squares) over the
relevant values or differences; the master derives the statistic, p-value,
confidence interval and effect size.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(
    data=relation(),
    response=literal(),
    group_variable=literal(),
    levels=literal(),
    return_type=[secure_transfer()],
)
def ttest_independent_local(data, response, group_variable, levels):
    """Per-group moment sums for the two-sample test."""
    values = np.asarray(data[response], dtype=np.float64)
    groups = data[group_variable]
    payload = {}
    for index, level in enumerate(levels):
        mask = groups == level
        selected = values[mask]
        payload[f"n_{index}"] = {"data": int(len(selected)), "operation": "sum"}
        payload[f"sum_{index}"] = {"data": float(selected.sum()), "operation": "sum"}
        payload[f"sumsq_{index}"] = {
            "data": float((selected**2).sum()),
            "operation": "sum",
        }
    return payload


@udf(data=relation(), response=literal(), return_type=[secure_transfer()])
def ttest_moments_local(data, response):
    """Moment sums of one numeric column (one-sample test)."""
    values = np.asarray(data[response], dtype=np.float64)
    return {
        "n": {"data": int(len(values)), "operation": "sum"},
        "sum": {"data": float(values.sum()), "operation": "sum"},
        "sumsq": {"data": float((values**2).sum()), "operation": "sum"},
    }


@udf(data=relation(), first=literal(), second=literal(), return_type=[secure_transfer()])
def ttest_paired_local(data, first, second):
    """Moment sums of per-subject differences (paired test)."""
    differences = np.asarray(data[first], dtype=np.float64) - np.asarray(
        data[second], dtype=np.float64
    )
    return {
        "n": {"data": int(len(differences)), "operation": "sum"},
        "sum": {"data": float(differences.sum()), "operation": "sum"},
        "sumsq": {"data": float((differences**2).sum()), "operation": "sum"},
    }


def _moments(n: int, total: float, total_squares: float) -> tuple[float, float]:
    """Mean and sample variance from moment sums."""
    if n < 2:
        raise AlgorithmError(f"not enough observations for a t-test (n={n})")
    mean = total / n
    variance = max((total_squares - n * mean**2) / (n - 1), 0.0)
    return mean, variance


def _one_sample_result(n: int, total: float, total_squares: float, mu: float) -> dict[str, Any]:
    mean, variance = _moments(n, total, total_squares)
    standard_error = float(np.sqrt(variance / n))
    if standard_error == 0:
        raise AlgorithmError("zero variance; t statistic undefined")
    t_statistic = (mean - mu) / standard_error
    degrees = n - 1
    p_value = 2.0 * scipy.stats.t.sf(abs(t_statistic), degrees)
    t_critical = scipy.stats.t.ppf(0.975, degrees)
    return {
        "n_observations": n,
        "mean": mean,
        "std": float(np.sqrt(variance)),
        "t_statistic": float(t_statistic),
        "degrees_of_freedom": degrees,
        "p_value": float(p_value),
        "ci_lower": float(mean - t_critical * standard_error),
        "ci_upper": float(mean + t_critical * standard_error),
        "cohens_d": float((mean - mu) / np.sqrt(variance)),
        "mu": mu,
    }


@register_algorithm
class TTestIndependent(FederatedAlgorithm):
    """Two-sample t-test of a numeric variable between two groups."""

    name = "ttest_independent"
    label = "T-Test Independent"
    needs_y = "required"
    needs_x = "required"
    y_types = ("numeric",)
    x_types = ("nominal",)
    parameters = (
        ParameterSpec("equal_variances", "bool", label="Pooled (Student) vs Welch",
                      default=False),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        response = self.y[0]
        group_variable = self.x[0]
        metadata = resolve_observed_levels(self, [response, group_variable])
        levels = list(metadata.get(group_variable, {}).get("enumerations", []))
        if len(levels) != 2:
            raise AlgorithmError(
                f"t-test needs exactly 2 observed groups, found {len(levels)}: {levels}"
            )
        handle = self.local_run(
            func=ttest_independent_local,
            keyword_args={
                "data": self.data_view([response, group_variable]),
                "response": response,
                "group_variable": group_variable,
                "levels": levels,
            },
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        n1, n2 = int(sums["n_0"]), int(sums["n_1"])
        mean1, var1 = _moments(n1, float(sums["sum_0"]), float(sums["sumsq_0"]))
        mean2, var2 = _moments(n2, float(sums["sum_1"]), float(sums["sumsq_1"]))
        difference = mean1 - mean2
        if self.params["equal_variances"]:
            pooled = ((n1 - 1) * var1 + (n2 - 1) * var2) / (n1 + n2 - 2)
            standard_error = float(np.sqrt(pooled * (1 / n1 + 1 / n2)))
            degrees = float(n1 + n2 - 2)
        else:
            standard_error = float(np.sqrt(var1 / n1 + var2 / n2))
            numerator = (var1 / n1 + var2 / n2) ** 2
            denominator = (var1 / n1) ** 2 / (n1 - 1) + (var2 / n2) ** 2 / (n2 - 1)
            degrees = float(numerator / denominator) if denominator > 0 else float(n1 + n2 - 2)
        if standard_error == 0:
            raise AlgorithmError("zero variance; t statistic undefined")
        t_statistic = difference / standard_error
        p_value = 2.0 * scipy.stats.t.sf(abs(t_statistic), degrees)
        t_critical = scipy.stats.t.ppf(0.975, degrees)
        pooled_sd = float(np.sqrt(((n1 - 1) * var1 + (n2 - 1) * var2) / (n1 + n2 - 2)))
        return {
            "groups": levels,
            "n_observations": [n1, n2],
            "means": [mean1, mean2],
            "stds": [float(np.sqrt(var1)), float(np.sqrt(var2))],
            "mean_difference": float(difference),
            "t_statistic": float(t_statistic),
            "degrees_of_freedom": degrees,
            "p_value": float(p_value),
            "ci_lower": float(difference - t_critical * standard_error),
            "ci_upper": float(difference + t_critical * standard_error),
            "cohens_d": float(difference / pooled_sd) if pooled_sd > 0 else 0.0,
            "welch": not self.params["equal_variances"],
        }


@register_algorithm
class TTestOneSample(FederatedAlgorithm):
    """One-sample t-test of a numeric variable against a hypothesized mean."""

    name = "ttest_onesample"
    label = "T-Test One-Sample"
    needs_y = "required"
    needs_x = "none"
    y_types = ("numeric",)
    parameters = (
        ParameterSpec("mu", "real", label="Hypothesized mean", default=0.0),
    )

    def run(self) -> dict[str, Any]:
        response = self.y[0]
        handle = self.local_run(
            func=ttest_moments_local,
            keyword_args={"data": self.data_view([response]), "response": response},
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        result = _one_sample_result(
            int(sums["n"]), float(sums["sum"]), float(sums["sumsq"]), self.params["mu"]
        )
        result["variable"] = response
        return result


@register_algorithm
class TTestPaired(FederatedAlgorithm):
    """Paired t-test between two numeric variables of the same subjects."""

    name = "ttest_paired"
    label = "T-Test Paired"
    needs_y = "required"
    needs_x = "none"
    y_types = ("numeric",)

    def run(self) -> dict[str, Any]:
        if len(self.y) != 2:
            raise AlgorithmError("the paired t-test needs exactly two numeric variables")
        first, second = self.y
        handle = self.local_run(
            func=ttest_paired_local,
            keyword_args={
                "data": self.data_view([first, second]),
                "first": first,
                "second": second,
            },
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        result = _one_sample_result(
            int(sums["n"]), float(sums["sum"]), float(sums["sumsq"]), 0.0
        )
        result["variables"] = [first, second]
        result["mean_difference"] = result.pop("mean")
        return result
