"""Federated CART: greedy binary decision trees grown level by level.

Growing a tree federates as an iterative Master/Worker protocol:

1. candidate thresholds for numeric features come from securely aggregated
   histograms (quantile grid),
2. each round the master broadcasts the tree so far; workers route their
   rows to the open leaves and return, per (leaf, candidate split), the
   child statistics — class counts for classification, moment sums for
   regression — as secure sums,
3. the master scores candidates (Gini / variance reduction), splits leaves
   that clear the minimum-improvement and minimum-leaf-size bars, and
   repeats until the depth limit or no leaf can improve.

Nothing row-level ever leaves a worker; every exchanged quantity is an
aggregate over at least ``min_samples_leaf`` rows.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(
    data=relation(),
    features=literal(),
    metadata=literal(),
    n_bins=literal(),
    return_type=[secure_transfer()],
)
def cart_histograms_local(data, features, metadata, n_bins):
    """Histograms of numeric features for candidate-threshold selection."""
    payload = {}
    for index, feature in enumerate(features):
        info = metadata.get(feature, {})
        if info.get("is_categorical"):
            continue
        values = np.asarray(data[feature], dtype=np.float64)
        low = info.get("min")
        high = info.get("max")
        if low is None or high is None:
            low = float(values.min()) if len(values) else 0.0
            high = float(values.max()) if len(values) else 1.0
        edges = np.linspace(low, high, n_bins + 1)
        payload[f"hist_{index}"] = {
            "data": _h.histogram_counts(values, edges).tolist(),
            "operation": "sum",
        }
        payload[f"min_{index}"] = {"data": float(values.min()), "operation": "min"}
        payload[f"max_{index}"] = {"data": float(values.max()), "operation": "max"}
    return payload


@udf(
    data=relation(),
    target=literal(),
    classes=literal(),
    features=literal(),
    metadata=literal(),
    tree=transfer(),
    candidates=literal(),
    open_leaves=literal(),
    return_type=[secure_transfer()],
)
def cart_split_stats_local(data, target, classes, features, metadata, tree, candidates, open_leaves):
    """Per-(leaf, candidate) child statistics.

    Classification (``classes`` non-empty): left/right class counts.
    Regression (``classes`` empty): left/right (n, sum, sumsq).
    """
    assignment = _h.route_tree(data, tree)
    target_values = data[target]
    payload = {}
    for leaf in open_leaves:
        leaf_mask = assignment == str(leaf)
        if classes:
            totals = _h.category_counts(target_values[leaf_mask], classes)
            payload[f"leaf{leaf}_total"] = {"data": totals.tolist(), "operation": "sum"}
        else:
            y_leaf = np.asarray(target_values[leaf_mask], dtype=np.float64)
            payload[f"leaf{leaf}_total"] = {
                "data": [float(len(y_leaf)), float(y_leaf.sum()), float((y_leaf**2).sum())],
                "operation": "sum",
            }
        for cand_index, candidate in enumerate(candidates):
            feature = candidate["feature"]
            values = data[feature][leaf_mask]
            if "threshold" in candidate:
                left_mask = np.asarray(values, dtype=np.float64) <= candidate["threshold"]
            else:
                left_mask = values == candidate["level"]
            key = f"leaf{leaf}_cand{cand_index}"
            if classes:
                y_leaf = target_values[leaf_mask]
                left_counts = _h.category_counts(y_leaf[left_mask], classes)
                payload[f"{key}_left"] = {"data": left_counts.tolist(), "operation": "sum"}
            else:
                y_leaf = np.asarray(target_values[leaf_mask], dtype=np.float64)
                y_left = y_leaf[left_mask]
                payload[f"{key}_left"] = {
                    "data": [float(len(y_left)), float(y_left.sum()), float((y_left**2).sum())],
                    "operation": "sum",
                }
    return payload


@udf(tree_in=literal(), return_type=[transfer()])
def publish_tree(tree_in):
    """Materialize the tree-so-far as a broadcastable transfer."""
    return tree_in


def gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - (proportions**2).sum())


def _variance_impurity(moments: np.ndarray) -> float:
    """n * variance from (n, sum, sumsq) — the SSE of predicting the mean."""
    n, total, total_squares = moments
    if n == 0:
        return 0.0
    return float(total_squares - total**2 / n)


@register_algorithm
class CART(FederatedAlgorithm):
    """Classification and regression trees over the federation."""

    name = "cart"
    label = "CART"
    needs_y = "required"
    needs_x = "required"
    y_types = ("nominal", "numeric")
    x_types = ("numeric", "nominal")
    parameters = (
        ParameterSpec("max_depth", "int", label="Maximum tree depth", default=4,
                      min_value=1, max_value=12),
        ParameterSpec("min_samples_leaf", "int", label="Minimum rows per leaf",
                      default=10, min_value=1),
        ParameterSpec("min_improvement", "real", label="Minimum impurity decrease",
                      default=1e-7, min_value=0.0),
        ParameterSpec("n_thresholds", "int", label="Candidate thresholds per numeric feature",
                      default=8, min_value=1, max_value=64),
    )

    def run(self) -> dict[str, Any]:
        from repro.algorithms.preprocessing import resolve_observed_levels

        target = self.y[0]
        variables = [target] + list(self.x)
        metadata = resolve_observed_levels(self, variables)
        target_info = metadata.get(target, {})
        is_classification = bool(target_info.get("is_categorical"))
        classes = list(target_info.get("enumerations", [])) if is_classification else []
        view = self.data_view(variables)

        candidates = self._collect_candidates(view, metadata)
        if not candidates:
            raise AlgorithmError("no usable split candidates for the given covariates")

        tree: dict[str, Any] = {
            "root": 0,
            "nodes": {"0": {"type": "leaf", "depth": 0}},
        }
        open_leaves = [0]
        next_id = 1
        for _ in range(self.params["max_depth"]):
            if not open_leaves:
                break
            tree_transfer = self.global_run(
                func=publish_tree, keyword_args={"tree_in": tree}, share_to_locals=[True]
            )
            handle = self.local_run(
                func=cart_split_stats_local,
                keyword_args={
                    "data": view,
                    "target": target,
                    "classes": classes,
                    "features": list(self.x),
                    "metadata": metadata,
                    "tree": tree_transfer,
                    "candidates": candidates,
                    "open_leaves": open_leaves,
                },
                share_to_global=[True],
            )
            stats = self.ctx.get_transfer_data(handle)
            new_open: list[int] = []
            for leaf in open_leaves:
                total = np.asarray(stats[f"leaf{leaf}_total"], dtype=np.float64)
                node = tree["nodes"][str(leaf)]
                self._set_prediction(node, total, classes)
                best = self._best_split(leaf, total, candidates, stats, classes)
                if best is None:
                    continue
                cand, left_stats, right_stats = best
                left_id, right_id = next_id, next_id + 1
                next_id += 2
                node.update(type="split", feature=cand["feature"], left=left_id, right=right_id)
                if "threshold" in cand:
                    node["threshold"] = cand["threshold"]
                else:
                    node["level"] = cand["level"]
                depth = node["depth"] + 1
                for child_id, child_stats in ((left_id, left_stats), (right_id, right_stats)):
                    child: dict[str, Any] = {"type": "leaf", "depth": depth}
                    self._set_prediction(child, child_stats, classes)
                    tree["nodes"][str(child_id)] = child
                    if depth < self.params["max_depth"] and child["n"] >= 2 * self.params["min_samples_leaf"]:
                        if not (classes and child["impurity"] == 0.0):
                            new_open.append(child_id)
            open_leaves = new_open
        n_leaves = sum(1 for n in tree["nodes"].values() if n["type"] == "leaf")
        return {
            "tree": tree,
            "task": "classification" if is_classification else "regression",
            "classes": classes,
            "n_nodes": len(tree["nodes"]),
            "n_leaves": n_leaves,
            "max_depth": max(n["depth"] for n in tree["nodes"].values()),
            "target": target,
        }

    # ----------------------------------------------------------- internals

    def _collect_candidates(self, view, metadata) -> list[dict[str, Any]]:
        numeric_features = [
            f for f in self.x if not metadata.get(f, {}).get("is_categorical")
        ]
        candidates: list[dict[str, Any]] = []
        if numeric_features:
            handle = self.local_run(
                func=cart_histograms_local,
                keyword_args={
                    "data": view,
                    "features": list(self.x),
                    "metadata": metadata,
                    "n_bins": 128,
                },
                share_to_global=[True],
            )
            histograms = self.ctx.get_transfer_data(handle)
            n_thresholds = self.params["n_thresholds"]
            for index, feature in enumerate(self.x):
                if metadata.get(feature, {}).get("is_categorical"):
                    continue
                histogram = np.asarray(histograms[f"hist_{index}"], dtype=np.float64)
                info = metadata.get(feature, {})
                low = info.get("min")
                high = info.get("max")
                if low is None or high is None:
                    low = float(histograms[f"min_{index}"])
                    high = float(histograms[f"max_{index}"])
                edges = np.linspace(float(low), float(high), len(histogram) + 1)
                total = histogram.sum()
                if total == 0:
                    continue
                cumulative = np.cumsum(histogram) / total
                for quantile in np.linspace(0, 1, n_thresholds + 2)[1:-1]:
                    bin_index = int(np.searchsorted(cumulative, quantile))
                    bin_index = min(bin_index, len(histogram) - 1)
                    candidates.append(
                        {"feature": feature, "threshold": float(edges[bin_index + 1])}
                    )
        for feature in self.x:
            info = metadata.get(feature, {})
            if info.get("is_categorical"):
                for level in info.get("enumerations", []):
                    candidates.append({"feature": feature, "level": level})
        # De-duplicate identical thresholds.
        seen = set()
        unique = []
        for candidate in candidates:
            key = (candidate["feature"], candidate.get("threshold"), candidate.get("level"))
            if key not in seen:
                seen.add(key)
                unique.append(candidate)
        return unique

    def _set_prediction(self, node: dict[str, Any], stats: np.ndarray, classes: list[str]) -> None:
        if classes:
            counts = np.asarray(stats, dtype=np.float64)
            node["n"] = int(counts.sum())
            node["class_counts"] = counts.astype(int).tolist()
            node["prediction"] = classes[int(counts.argmax())] if counts.sum() else None
            node["impurity"] = gini(counts)
        else:
            n, total, _ = stats
            node["n"] = int(n)
            node["prediction"] = float(total / n) if n else 0.0
            node["impurity"] = _variance_impurity(stats) / n if n else 0.0

    def _best_split(self, leaf, total, candidates, stats, classes):
        min_leaf = self.params["min_samples_leaf"]
        if classes:
            parent_impurity = gini(np.asarray(total))
            parent_n = float(np.asarray(total).sum())
        else:
            parent_impurity = _variance_impurity(np.asarray(total))
            parent_n = float(total[0])
        if parent_n < 2 * min_leaf:
            return None
        best = None
        best_gain = self.params["min_improvement"]
        for cand_index, candidate in enumerate(candidates):
            left = np.asarray(stats[f"leaf{leaf}_cand{cand_index}_left"], dtype=np.float64)
            right = np.asarray(total, dtype=np.float64) - left
            if classes:
                n_left, n_right = left.sum(), right.sum()
                if n_left < min_leaf or n_right < min_leaf:
                    continue
                gain = parent_impurity - (
                    n_left / parent_n * gini(left) + n_right / parent_n * gini(right)
                )
            else:
                n_left, n_right = left[0], right[0]
                if n_left < min_leaf or n_right < min_leaf:
                    continue
                gain = (
                    parent_impurity
                    - _variance_impurity(left)
                    - _variance_impurity(right)
                ) / parent_n
            if gain > best_gain:
                best_gain = gain
                best = (candidate, left, right)
        return best
