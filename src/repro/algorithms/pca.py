"""Federated principal component analysis.

The covariance (or correlation) matrix is assembled from securely aggregated
first and second moments; the eigendecomposition happens on the master.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(data=relation(), variables=literal(), return_type=[secure_transfer()])
def pca_local(data, variables):
    """First/second moment sums of the selected numeric variables."""
    matrix = np.column_stack([np.asarray(data[v], dtype=np.float64) for v in variables])
    return {
        "n": {"data": int(matrix.shape[0]), "operation": "sum"},
        "sums": {"data": matrix.sum(axis=0).tolist(), "operation": "sum"},
        "cross": {"data": (matrix.T @ matrix).tolist(), "operation": "sum"},
    }


@register_algorithm
class PrincipalComponents(FederatedAlgorithm):
    """PCA of standardized (or raw-covariance) numeric variables."""

    name = "pca"
    label = "Principal Components Analysis"
    needs_y = "required"
    needs_x = "none"
    y_types = ("numeric",)
    parameters = (
        ParameterSpec("standardize", "bool", label="Use the correlation matrix",
                      default=True),
    )

    def run(self) -> dict[str, Any]:
        variables = list(self.y)
        if len(variables) < 2:
            raise AlgorithmError("PCA needs at least two variables")
        handle = self.local_run(
            func=pca_local,
            keyword_args={"data": self.data_view(variables), "variables": variables},
            share_to_global=[True],
        )
        sums = self.ctx.get_transfer_data(handle)
        n = int(sums["n"])
        if n < 3:
            raise AlgorithmError(f"not enough observations for PCA (n={n})")
        totals = np.asarray(sums["sums"], dtype=np.float64)
        cross = np.asarray(sums["cross"], dtype=np.float64)
        means = totals / n
        covariance = (cross - n * np.outer(means, means)) / (n - 1)
        stds = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
        if self.params["standardize"]:
            if (stds == 0).any():
                constant = [v for v, s in zip(variables, stds) if s == 0]
                raise AlgorithmError(f"constant variables cannot be standardized: {constant}")
            matrix = covariance / np.outer(stds, stds)
        else:
            matrix = covariance
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]
        # Deterministic sign: make each component's largest loading positive.
        for j in range(eigenvectors.shape[1]):
            pivot = np.argmax(np.abs(eigenvectors[:, j]))
            if eigenvectors[pivot, j] < 0:
                eigenvectors[:, j] = -eigenvectors[:, j]
        total_variance = eigenvalues.sum()
        explained = eigenvalues / total_variance if total_variance > 0 else eigenvalues
        return {
            "variables": variables,
            "n_observations": n,
            "means": means.tolist(),
            "stds": stds.tolist(),
            "eigenvalues": eigenvalues.tolist(),
            "eigenvectors": eigenvectors.T.tolist(),  # rows = components
            "explained_variance_ratio": explained.tolist(),
            "cumulative_explained_variance": np.cumsum(explained).tolist(),
            "standardized": bool(self.params["standardize"]),
        }
