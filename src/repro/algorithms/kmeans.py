"""Federated k-means clustering (the Alzheimer's use case's first algorithm).

Lloyd's algorithm federates naturally: the master broadcasts the current
centroids; each worker assigns its local points and returns per-cluster
partial sums and counts; the secure sum yields the new centroids.  The loop
is the paper's iterative Master/Worker cycle.

Initialisation is a deterministic quasi-random draw inside the securely
computed per-dimension min/max box, so every worker-count configuration
produces the same starting centroids for a given seed.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.errors import AlgorithmError
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)


@udf(data=relation(), variables=literal(), return_type=[secure_transfer()])
def kmeans_bounds_local(data, variables):
    """Per-dimension bounds and moments for initialisation."""
    matrix = np.column_stack([np.asarray(data[v], dtype=np.float64) for v in variables])
    return {
        "min": {"data": matrix.min(axis=0).tolist(), "operation": "min"},
        "max": {"data": matrix.max(axis=0).tolist(), "operation": "max"},
        "n": {"data": int(matrix.shape[0]), "operation": "sum"},
    }


@udf(
    data=relation(),
    variables=literal(),
    centroids=transfer(),
    return_type=[secure_transfer()],
)
def kmeans_assign_local(data, variables, centroids):
    """Assign local points to the nearest centroid; emit partial sums."""
    matrix = np.column_stack([np.asarray(data[v], dtype=np.float64) for v in variables])
    centers = np.asarray(centroids["centroids"], dtype=np.float64)
    distances = ((matrix[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    assignment = distances.argmin(axis=1)
    k = centers.shape[0]
    counts = np.array([(assignment == j).sum() for j in range(k)], dtype=np.int64)
    sums = np.zeros_like(centers)
    inertia = 0.0
    for j in range(k):
        members = matrix[assignment == j]
        if len(members):
            sums[j] = members.sum(axis=0)
            inertia += float(((members - centers[j]) ** 2).sum())
    return {
        "counts": {"data": counts.tolist(), "operation": "sum"},
        "sums": {"data": sums.tolist(), "operation": "sum"},
        "inertia": {"data": inertia, "operation": "sum"},
    }


@register_algorithm
class KMeansClustering(FederatedAlgorithm):
    """k-means over numeric variables across the federation."""

    name = "kmeans"
    label = "k-Means Clustering"
    needs_y = "required"
    needs_x = "none"
    y_types = ("numeric",)
    parameters = (
        ParameterSpec("k", "int", label="Number of centroids", required=True,
                      min_value=1, max_value=20),
        ParameterSpec("e", "real", label="Convergence tolerance", default=1e-4,
                      min_value=0.0),
        ParameterSpec("iterations_max_number", "int", label="Maximum iterations",
                      default=100, min_value=1, max_value=1000),
        ParameterSpec("seed", "int", label="Initialisation seed", default=0),
        ParameterSpec("standardize", "bool", label="Scale dimensions to the unit box",
                      default=False),
    )

    def run(self) -> dict[str, Any]:
        variables = list(self.y)
        k = self.params["k"]
        tolerance = self.params["e"]
        max_iterations = self.params["iterations_max_number"]
        view = self.data_view(variables)

        bounds_handle = self.local_run(
            func=kmeans_bounds_local,
            keyword_args={"data": view, "variables": variables},
            share_to_global=[True],
        )
        bounds = self.ctx.get_transfer_data(bounds_handle)
        lower = np.asarray(bounds["min"], dtype=np.float64)
        upper = np.asarray(bounds["max"], dtype=np.float64)
        n_total = int(bounds["n"])
        if n_total < k:
            raise AlgorithmError(f"cannot form {k} clusters from {n_total} points")

        rng = np.random.default_rng(self.params["seed"])
        centroids = lower + rng.random((k, len(variables))) * (upper - lower)

        history: list[float] = []
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            centroid_transfer = self.global_run(
                func=_publish_centroids,
                keyword_args={"centroids_in": centroids.tolist()},
                share_to_locals=[True],
            )
            step_handle = self.local_run(
                func=kmeans_assign_local,
                keyword_args={
                    "data": view,
                    "variables": variables,
                    "centroids": centroid_transfer,
                },
                share_to_global=[True],
            )
            aggregate = self.ctx.get_transfer_data(step_handle)
            counts = np.asarray(aggregate["counts"], dtype=np.float64)
            sums = np.asarray(aggregate["sums"], dtype=np.float64)
            history.append(float(aggregate["inertia"]))
            new_centroids = centroids.copy()
            non_empty = counts > 0
            new_centroids[non_empty] = sums[non_empty] / counts[non_empty, None]
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift <= tolerance:
                break
        return {
            "variables": variables,
            "k": k,
            "centroids": centroids.tolist(),
            "cluster_sizes": counts.astype(int).tolist(),
            "inertia": history[-1] if history else 0.0,
            "inertia_history": history,
            "iterations": iterations,
            "n_observations": n_total,
            "converged": iterations < max_iterations,
        }


@udf(centroids_in=literal(), return_type=[transfer()])
def _publish_centroids(centroids_in):
    """Global step materializing the centroids as a broadcastable transfer."""
    return {"centroids": centroids_in}
