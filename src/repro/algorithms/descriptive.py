"""Descriptive statistics — the MIP dashboard's first-contact analysis.

Reproduces the Figure 3 tables: per-dataset columns with datapoint counts,
NAs, SE, mean, min, quartiles and max for numeric variables (and level
counts for nominal ones), plus pooled statistics across all selected
datasets computed through the secure path (sums, secure min/max, histogram
quantile approximation).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.algorithm import FederatedAlgorithm
from repro.core.registry import register_algorithm
from repro.core.specs import ParameterSpec
from repro.udfgen import literal, relation, secure_transfer, transfer, udf
from repro.udfgen import udf_helpers as _h  # noqa: F401  (UDF bodies use _h)

#: Sentinels for secure min/max over empty worker slices; inside the
#: fixed-point comparison range and beyond any CDE's plausible values.
_MIN_SENTINEL = 1e6
_MAX_SENTINEL = -1e6


@udf(
    data=relation(),
    variables=literal(),
    metadata=literal(),
    suppression_threshold=literal(),
    return_type=[transfer()],
)
def descriptive_local(data, variables, metadata, suppression_threshold):
    """Per-dataset statistics (each dataset lives on exactly one worker).

    Datasets with fewer non-NA datapoints than the suppression threshold
    release only their counts — the dashboard's "NOT ENOUGH DATA" cells.
    """
    datasets = data["dataset"]
    result = {}
    for code in sorted(set(datasets.tolist())):
        mask = datasets == code
        stats = {}
        for variable in variables:
            info = metadata.get(variable, {})
            values = data[variable][mask]
            if info.get("is_categorical"):
                non_null = np.array([v for v in values if v is not None], dtype=object)
                levels = list(info.get("enumerations", []))
                entry = {
                    "kind": "nominal",
                    "count": int(len(values)),
                    "datapoints": int(len(non_null)),
                    "na": int(len(values) - len(non_null)),
                }
                if len(non_null) >= suppression_threshold:
                    entry["levels"] = {
                        level: int((non_null == level).sum()) for level in levels
                    }
                else:
                    entry["suppressed"] = True
                stats[variable] = entry
            else:
                numeric = np.asarray(values, dtype=np.float64)
                non_null = numeric[~np.isnan(numeric)]
                entry = {
                    "kind": "numeric",
                    "count": int(len(numeric)),
                    "datapoints": int(len(non_null)),
                    "na": int(len(numeric) - len(non_null)),
                }
                if len(non_null) >= suppression_threshold and len(non_null):
                    std = float(np.std(non_null, ddof=1)) if len(non_null) > 1 else 0.0
                    quartiles = np.percentile(non_null, [25, 50, 75])
                    entry.update(
                        mean=float(np.mean(non_null)),
                        std=std,
                        se=std / float(np.sqrt(len(non_null))),
                        min=float(np.min(non_null)),
                        q1=float(quartiles[0]),
                        q2=float(quartiles[1]),
                        q3=float(quartiles[2]),
                        max=float(np.max(non_null)),
                    )
                elif len(non_null) < suppression_threshold:
                    entry["suppressed"] = True
                stats[variable] = entry
        result[code] = stats
    return result


@udf(
    data=relation(),
    variables=literal(),
    metadata=literal(),
    n_bins=literal(),
    return_type=[secure_transfer()],
)
def descriptive_pooled_local(data, variables, metadata, n_bins):
    """Pooled statistics via secure aggregation: sums, min/max, histograms."""
    payload = {}
    for variable in variables:
        info = metadata.get(variable, {})
        values = data[variable]
        if info.get("is_categorical"):
            levels = list(info.get("enumerations", []))
            non_null = np.array([v for v in values if v is not None], dtype=object)
            counts = _h.category_counts(non_null, levels)
            payload[f"{variable}__levels"] = {"data": counts.tolist(), "operation": "sum"}
            payload[f"{variable}__count"] = {"data": int(len(values)), "operation": "sum"}
            payload[f"{variable}__na"] = {
                "data": int(len(values) - len(non_null)),
                "operation": "sum",
            }
            continue
        numeric = np.asarray(values, dtype=np.float64)
        non_null = numeric[~np.isnan(numeric)]
        low = info.get("min")
        high = info.get("max")
        if low is None or high is None:
            low = float(non_null.min()) if len(non_null) else 0.0
            high = float(non_null.max()) if len(non_null) else 1.0
        edges = np.linspace(low, high, n_bins + 1)
        histogram = _h.histogram_counts(non_null, edges) if len(non_null) else np.zeros(n_bins, dtype=np.int64)
        payload[f"{variable}__count"] = {"data": int(len(numeric)), "operation": "sum"}
        payload[f"{variable}__na"] = {
            "data": int(len(numeric) - len(non_null)),
            "operation": "sum",
        }
        payload[f"{variable}__sum"] = {
            "data": float(non_null.sum()) if len(non_null) else 0.0,
            "operation": "sum",
        }
        payload[f"{variable}__sumsq"] = {
            "data": float((non_null**2).sum()) if len(non_null) else 0.0,
            "operation": "sum",
        }
        payload[f"{variable}__min"] = {
            "data": float(non_null.min()) if len(non_null) else 1e6,
            "operation": "min",
        }
        payload[f"{variable}__max"] = {
            "data": float(non_null.max()) if len(non_null) else -1e6,
            "operation": "max",
        }
        payload[f"{variable}__hist"] = {"data": histogram.tolist(), "operation": "sum"}
    return payload


def _histogram_quantile(histogram: np.ndarray, edges: np.ndarray, q: float) -> float:
    """Approximate a quantile from binned counts by linear interpolation."""
    total = histogram.sum()
    if total == 0:
        return float("nan")
    target = q * total
    cumulative = np.cumsum(histogram)
    index = int(np.searchsorted(cumulative, target))
    index = min(index, len(histogram) - 1)
    previous = cumulative[index - 1] if index > 0 else 0
    in_bin = histogram[index]
    fraction = (target - previous) / in_bin if in_bin > 0 else 0.0
    return float(edges[index] + fraction * (edges[index + 1] - edges[index]))


@register_algorithm
class DescriptiveStatistics(FederatedAlgorithm):
    """Per-dataset and pooled descriptive statistics for chosen variables."""

    name = "descriptive_stats"
    label = "Descriptive Statistics"
    needs_y = "required"
    needs_x = "none"
    y_types = ("numeric", "nominal")
    parameters = (
        ParameterSpec("n_bins", "int", label="Histogram bins for pooled quantiles",
                      default=100, min_value=10, max_value=1000),
        ParameterSpec("suppression_threshold", "int",
                      label="Minimum datapoints to show per-dataset statistics",
                      default=10, min_value=0),
    )

    def run(self) -> dict[str, Any]:
        variables = list(self.y)
        n_bins = self.params["n_bins"]
        view = self.data_view(["dataset"] + variables, dropna=False)

        per_dataset_handle = self.local_run(
            func=descriptive_local,
            keyword_args={
                "data": view,
                "variables": variables,
                "metadata": self.metadata,
                "suppression_threshold": self.params["suppression_threshold"],
            },
            share_to_global=[True],
        )
        per_worker = self.ctx.get_transfer_data(per_dataset_handle)
        per_dataset: dict[str, Any] = {}
        for worker_stats in per_worker:
            per_dataset.update(worker_stats)

        pooled_handle = self.local_run(
            func=descriptive_pooled_local,
            keyword_args={
                "data": view,
                "variables": variables,
                "metadata": self.metadata,
                "n_bins": n_bins,
            },
            share_to_global=[True],
        )
        aggregates = self.ctx.get_transfer_data(pooled_handle)
        pooled = self._assemble_pooled(variables, aggregates, n_bins)
        return {"per_dataset": per_dataset, "pooled": pooled, "variables": variables}

    def _assemble_pooled(
        self, variables: list[str], aggregates: dict[str, Any], n_bins: int
    ) -> dict[str, Any]:
        pooled: dict[str, Any] = {}
        for variable in variables:
            info = self.metadata.get(variable, {})
            count = int(aggregates[f"{variable}__count"])
            na = int(aggregates[f"{variable}__na"])
            if info.get("is_categorical"):
                levels = list(info.get("enumerations", []))
                counts = aggregates[f"{variable}__levels"]
                pooled[variable] = {
                    "kind": "nominal",
                    "count": count,
                    "datapoints": count - na,
                    "na": na,
                    "levels": {level: int(c) for level, c in zip(levels, counts)},
                }
                continue
            datapoints = count - na
            total = float(aggregates[f"{variable}__sum"])
            total_squares = float(aggregates[f"{variable}__sumsq"])
            entry: dict[str, Any] = {
                "kind": "numeric",
                "count": count,
                "datapoints": datapoints,
                "na": na,
            }
            if datapoints > 0:
                mean = total / datapoints
                variance = max(
                    (total_squares - datapoints * mean**2) / max(datapoints - 1, 1), 0.0
                )
                std = float(np.sqrt(variance))
                low = info.get("min")
                high = info.get("max")
                histogram = np.asarray(aggregates[f"{variable}__hist"], dtype=np.int64)
                if low is None or high is None:
                    low = float(aggregates[f"{variable}__min"])
                    high = float(aggregates[f"{variable}__max"])
                edges = np.linspace(float(low), float(high), n_bins + 1)
                entry.update(
                    mean=mean,
                    std=std,
                    se=std / float(np.sqrt(datapoints)),
                    min=float(aggregates[f"{variable}__min"]),
                    max=float(aggregates[f"{variable}__max"]),
                    q1=_histogram_quantile(histogram, edges, 0.25),
                    q2=_histogram_quantile(histogram, edges, 0.50),
                    q3=_histogram_quantile(histogram, edges, 0.75),
                )
            pooled[variable] = entry
        return pooled
