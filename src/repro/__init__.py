"""Reproduction of *MIP: Advanced Data Processing and Analytics for Science
and Medicine* (EDBT 2024).

A privacy-preserving federated analytics platform: hospitals keep their data
inside a local analytics engine; algorithms ship to the data as generated
SQL UDFs; only aggregates leave a node — through non-secure remote/merge
tables or a secure multi-party computation cluster.

Quickstart::

    from repro import CohortSpec, FederationConfig, MIPService
    from repro import create_federation, generate_cohort

    federation = create_federation({
        "hospital_a": {"dementia": generate_cohort(CohortSpec("edsd", 500, seed=1))},
        "hospital_b": {"dementia": generate_cohort(CohortSpec("adni", 400, seed=2))},
    })
    mip = MIPService(federation)
    result = mip.run_experiment(
        algorithm="linear_regression",
        data_model="dementia",
        datasets=["edsd", "adni"],
        y=["lefthippocampus"],
        x=["agevalue", "alzheimerbroadcategory"],
    )
    print(result.result["coefficients"])
"""

from repro.api.service import MIPService
from repro.api.workflow import Workflow, WorkflowStep
from repro.core.experiment import ExperimentRequest, ExperimentResult
from repro.core.registry import algorithm_registry
from repro.data.cohorts import (
    CohortSpec,
    alzheimers_use_case_cohorts,
    generate_cohort,
    generate_synthetic_hospital,
)
from repro.federation.controller import Federation, FederationConfig, create_federation
from repro.federation.policy import FailurePolicy, RetryPolicy
from repro.learning.trainer import FederatedTrainer, TrainingConfig
from repro.smpc.cluster import NoiseSpec, SMPCCluster

__version__ = "1.0.0"

__all__ = [
    "CohortSpec",
    "ExperimentRequest",
    "ExperimentResult",
    "FailurePolicy",
    "Federation",
    "FederationConfig",
    "FederatedTrainer",
    "RetryPolicy",
    "MIPService",
    "NoiseSpec",
    "SMPCCluster",
    "TrainingConfig",
    "Workflow",
    "WorkflowStep",
    "algorithm_registry",
    "alzheimers_use_case_cohorts",
    "create_federation",
    "generate_cohort",
    "generate_synthetic_hospital",
    "__version__",
]
