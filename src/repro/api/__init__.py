"""The platform service: the programmatic equivalent of the MIP web UI."""

from repro.api.service import MIPService
from repro.api.workflow import Workflow, WorkflowResult, WorkflowStep

__all__ = ["MIPService", "Workflow", "WorkflowResult", "WorkflowStep"]
