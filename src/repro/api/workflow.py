"""Workflows: ordered chains of experiments with cross-step references.

The MIP dashboard exposes a *Workflow* tab (paper Figure 3): analyses built
from several algorithm runs — e.g. descriptive exploration feeding variable
selection feeding a model.  This module provides the programmatic
equivalent: a :class:`Workflow` of named steps executed in order, where any
request field of a later step may be a callable receiving the results of the
earlier steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.api.service import MIPService
from repro.core.experiment import ExperimentResult
from repro.errors import SpecificationError

#: A dynamic field: receives {step_name: result_dict} of all finished steps.
Dynamic = Callable[[dict[str, dict[str, Any]]], Any]


@dataclass(frozen=True)
class WorkflowStep:
    """One experiment in a workflow.

    Every field except ``name`` and ``algorithm`` may be either a concrete
    value or a callable of the earlier steps' results.
    """

    name: str
    algorithm: str
    datasets: Sequence[str] | Dynamic = ()
    y: Sequence[str] | Dynamic = ()
    x: Sequence[str] | Dynamic = ()
    parameters: Mapping[str, Any] | Dynamic = field(default_factory=dict)
    filter_sql: str | Dynamic | None = None


@dataclass
class WorkflowResult:
    """Results of a workflow run, in execution order."""

    steps: dict[str, ExperimentResult] = field(default_factory=dict)
    failed_step: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.failed_step is None

    def result_of(self, step_name: str) -> dict[str, Any]:
        experiment = self.steps[step_name]
        return experiment.result


class Workflow:
    """An ordered, named chain of experiments."""

    def __init__(self, steps: Sequence[WorkflowStep], data_model: str = "dementia") -> None:
        if not steps:
            raise SpecificationError("a workflow needs at least one step")
        names = [step.name for step in steps]
        if len(set(names)) != len(names):
            duplicated = sorted({n for n in names if names.count(n) > 1})
            raise SpecificationError(f"duplicate step names: {duplicated}")
        self.steps = list(steps)
        self.data_model = data_model

    def run(self, service: MIPService, stop_on_error: bool = True) -> WorkflowResult:
        """Execute the steps in order against a service.

        Dynamic fields are resolved against the results of the already
        finished steps; a failed step stops the workflow (unless
        ``stop_on_error=False``, which skips to the next step).
        """
        outcome = WorkflowResult()
        finished: dict[str, dict[str, Any]] = {}
        for step in self.steps:
            request = {
                "datasets": _resolve(step.datasets, finished),
                "y": _resolve(step.y, finished),
                "x": _resolve(step.x, finished),
                "parameters": _resolve(step.parameters, finished),
                "filter_sql": _resolve(step.filter_sql, finished),
            }
            datasets = list(request["datasets"]) or sorted(
                service.datasets(self.data_model)
            )
            result = service.run_experiment(
                algorithm=step.algorithm,
                data_model=self.data_model,
                datasets=datasets,
                y=list(request["y"]),
                x=list(request["x"]),
                parameters=dict(request["parameters"] or {}),
                filter_sql=request["filter_sql"],
                name=step.name,
            )
            outcome.steps[step.name] = result
            if result.status.value == "success":
                finished[step.name] = result.result
            else:
                if outcome.failed_step is None:
                    outcome.failed_step = step.name
                if stop_on_error:
                    break
        return outcome


def _resolve(value: Any, finished: dict[str, dict[str, Any]]) -> Any:
    if callable(value):
        return value(finished)
    return value
