"""MIPService: the user-facing surface of the platform.

Exposes what the MIP dashboard (paper Figure 3) exposes: the data catalogue
(data models, variables, datasets and who holds them), the algorithm list
with parameter specifications, experiment submission, and the experiment
history.  In deployment this sits behind a Quart REST API; here it is a
plain facade so examples, tests and benchmarks drive it directly.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.experiment import ExperimentEngine, ExperimentRequest, ExperimentResult
from repro.core.registry import algorithm_registry
from repro.data.cdes import cde_registry
from repro.errors import CatalogError
from repro.federation.controller import Federation
from repro.smpc.cluster import NoiseSpec

# Algorithms register themselves on import.
import repro.algorithms  # noqa: F401


class MIPService:
    """One user session against a running federation."""

    def __init__(
        self,
        federation: Federation,
        aggregation: str = "smpc",
        noise: NoiseSpec | None = None,
        pool_size: int = 1,
        max_queued: int = 128,
        flow_mode: str | None = None,
        plan_cache=None,
        state_dir: str | None = None,
        fsync_every: int = 8,
    ) -> None:
        self.federation = federation
        #: Durable execution: with ``state_dir`` set, every job lifecycle
        #: transition is journaled and every federation read is
        #: checkpointed, so a crashed service restarted on the same
        #: directory replays the journal, restores finished results, and
        #: resumes interrupted experiments from their last checkpoint.
        self.durability = None
        self.recovery: dict[str, Any] | None = None
        if state_dir is not None:
            from repro.durability.recovery import DurabilityManager

            self.durability = DurabilityManager(state_dir, fsync_every=fsync_every)
        self.engine = ExperimentEngine(
            federation,
            aggregation=aggregation,
            noise=noise,
            max_concurrent=pool_size,
            max_queued=max_queued,
            flow_mode=flow_mode,
            plan_cache=plan_cache,
            durability=self.durability,
        )
        if self.durability is not None:
            self.recovery = self._recover()

    def _recover(self) -> dict[str, Any]:
        """Replay the journal: restore history, re-enqueue interrupted jobs."""
        report = self.durability.recover()
        master_audit = self.federation.master.audit
        for job_id, result in report.completed.items():
            self.engine.queue.history.put(job_id, result)
        for job_id, request, priority in report.pending:
            reads = self.durability.prepare_resume(job_id, request)
            master_audit.record(
                "experiment_resumed",
                job_id=job_id,
                checkpoint_reads=reads,
                algorithm=request.algorithm,
            )
            self.engine.submit(request, priority=priority, experiment_id=job_id)
        return report.to_dict()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the engine and flush/close the journal (if any)."""
        self.engine.shutdown(wait=wait)
        if self.durability is not None:
            self.durability.close()

    # --------------------------------------------------------- data catalogue

    def data_models(self) -> list[str]:
        """Data models that are both catalogued and present on some worker."""
        available = self.federation.master.availability
        return sorted(model for model in available if model in cde_registry)

    def datasets(self, data_model: str) -> dict[str, list[str]]:
        """Dataset codes of a data model and the workers holding each."""
        availability = self.federation.master.availability
        if data_model not in availability:
            raise CatalogError(f"no worker holds data model {data_model!r}")
        return {code: list(workers) for code, workers in availability[data_model].items()}

    def variables(self, data_model: str) -> list[dict[str, Any]]:
        """The variable catalogue of a data model (the UI's variable picker)."""
        model = cde_registry.get(data_model)
        entries = []
        for code in model.variables():
            cde = model.cde(code)
            entries.append(
                {
                    "code": code,
                    "label": cde.label,
                    "kind": cde.kind,
                    "enumerations": list(cde.enumerations),
                    "min": cde.min_value,
                    "max": cde.max_value,
                    "unit": cde.unit,
                }
            )
        return entries

    # ------------------------------------------------------------- algorithms

    def algorithms(self) -> list[dict[str, Any]]:
        """The "Available Algorithms" panel: names, labels, parameters."""
        listing = []
        for entry in algorithm_registry.listing():
            cls = algorithm_registry.get(entry["name"])
            listing.append(
                {
                    **entry,
                    "needs_y": cls.needs_y,
                    "needs_x": cls.needs_x,
                    "y_types": list(cls.y_types),
                    "x_types": list(cls.x_types),
                    "parameters": [
                        {
                            "name": spec.name,
                            "type": spec.param_type,
                            "label": spec.label,
                            "required": spec.required,
                            "default": spec.default,
                            "min": spec.min_value,
                            "max": spec.max_value,
                            "enums": list(spec.enums) if spec.enums else None,
                        }
                        for spec in cls.parameters
                    ],
                }
            )
        return listing

    # ------------------------------------------------------------ experiments

    def run_experiment(
        self,
        algorithm: str,
        data_model: str,
        datasets: Sequence[str],
        y: Sequence[str] = (),
        x: Sequence[str] = (),
        parameters: Mapping[str, Any] | None = None,
        filter_sql: str | None = None,
        name: str = "",
    ) -> ExperimentResult:
        """Create and run an experiment (the UI's "Run Experiment" button).

        A convenience shim over the asynchronous surface: submit + wait.
        """
        return self.engine.wait(
            self.submit_experiment(
                algorithm,
                data_model,
                datasets,
                y=y,
                x=x,
                parameters=parameters,
                filter_sql=filter_sql,
                name=name,
            )
        )

    def submit_experiment(
        self,
        algorithm: str,
        data_model: str,
        datasets: Sequence[str],
        y: Sequence[str] = (),
        x: Sequence[str] = (),
        parameters: Mapping[str, Any] | None = None,
        filter_sql: str | None = None,
        name: str = "",
        priority: int = 0,
    ) -> str:
        """Enqueue an experiment; returns its id immediately (paper §2's
        asynchronous poll-by-identifier workflow)."""
        request = ExperimentRequest(
            algorithm=algorithm,
            data_model=data_model,
            datasets=tuple(datasets),
            y=tuple(y),
            x=tuple(x),
            parameters=dict(parameters or {}),
            filter_sql=filter_sql,
            name=name,
        )
        return self.engine.submit(request, priority=priority)

    def wait_experiment(
        self, experiment_id: str, timeout: float | None = None
    ) -> ExperimentResult:
        """Block until a submitted experiment finishes."""
        return self.engine.wait(experiment_id, timeout=timeout)

    def cancel_experiment(self, experiment_id: str) -> bool:
        """Cancel a queued (guaranteed) or running (cooperative) experiment."""
        return self.engine.cancel(experiment_id)

    def experiment(self, experiment_id: str) -> ExperimentResult:
        """Poll one experiment ("My Experiments")."""
        return self.engine.get(experiment_id)

    def experiments(self) -> list[ExperimentResult]:
        return self.engine.history()

    def jobs(self) -> list[dict[str, Any]]:
        """Every submitted job's state, in submission order."""
        return [snapshot.to_dict() for snapshot in self.engine.jobs()]

    # ---------------------------------------------------------- observability

    def metrics_registry(self):
        """The federation-wide unified metrics registry (lazily evaluated),
        extended with this service's experiment-queue health."""
        registry = self.federation.metrics_registry()
        queue = self.engine.queue

        def queue_samples():
            stats = queue.stats()
            yield ("repro_queue_depth", {}, float(stats["depth"]))
            yield ("repro_queue_running", {}, float(stats["running"]))
            yield ("repro_queue_pool_size", {}, float(stats["pool_size"]))
            yield ("repro_queue_submitted_total", {}, float(stats["submitted_total"]))
            yield ("repro_queue_succeeded_total", {}, float(stats["succeeded_total"]))
            yield ("repro_queue_failed_total", {}, float(stats["failed_total"]))
            yield ("repro_queue_cancelled_total", {}, float(stats["cancelled_total"]))
            yield ("repro_queue_wait_seconds_total", {}, stats["wait_seconds_total"])
            for name, labels, value in queue.latency.samples():
                yield (name, labels, value)
            for key, q in (("p50", 0.5), ("p95", 0.95)):
                estimate = queue.latency.quantile(q)
                if estimate is not None:
                    yield (f"repro_experiment_duration_{key}_seconds", {}, estimate)

        registry.register_collector(queue_samples)
        if self.durability is not None:
            registry.register_collector(self.durability.metrics_samples)
        return registry

    def metrics_snapshot(self) -> dict[str, Any]:
        """Every current metric value as one JSON-ready mapping."""
        return self.metrics_registry().snapshot()

    def render_metrics(self) -> str:
        """The Prometheus text exposition of the unified registry."""
        return self.metrics_registry().render_prometheus()

    def critical_path(
        self, experiment_id: str | None = None, clock: str = "wall"
    ) -> dict[str, Any] | None:
        """Where one experiment's time went (the blocking chain).

        With ``experiment_id`` the finished result's stored analysis is
        returned (falling back to re-analyzing the live trace buffer);
        without it the heaviest ``experiment`` root currently in the buffer
        is analyzed.  ``None`` means no trace exists — the tracer was off.
        """
        from repro.observability.critical_path import analyze, analyze_experiment

        if experiment_id is not None:
            result = self.engine.get(experiment_id)
            if result.critical_path is not None:
                return result.critical_path
            report = analyze_experiment(experiment_id, clock=clock)
            return report.to_dict() if report is not None else None
        report = analyze(clock=clock, root_name="experiment")
        return report.to_dict() if report.segments else None

    def latency_quantiles(self) -> dict[str, float | None]:
        """p50/p95/p99 experiment wall time off the queue's histogram."""
        from repro.observability.slo import quantiles_from_histogram

        return quantiles_from_histogram(self.engine.queue.latency)

    def attach_profiler(self, profiler) -> bool:
        """Attach (and start) a sampling profiler for per-job profiles.

        Returns False when the profiler refused to start (an active
        simulation owns all scheduling); the queue then stays unprofiled.
        """
        if not profiler.start():
            return False
        self.engine.queue.profiler = profiler
        return True

    def audit_events(
        self, experiment_id: str | None = None, event: str | None = None
    ) -> list[dict[str, Any]]:
        """The privacy audit trail, merged across master and workers.

        Without ``experiment_id`` every recorded event is returned; with it,
        events of that experiment (step job ids are prefixed by the
        experiment id, so per-step events match too).
        """
        from repro.observability.audit import merged_events

        return merged_events(
            self.federation.audit_logs(), job_id=experiment_id, event=event
        )

    # ----------------------------------------------------------------- status

    def status(self) -> dict[str, Any]:
        """Platform health: node liveness, caseload, traffic, SMPC usage."""
        master = self.federation.master
        alive = master.alive_workers()
        availability = master.refresh_catalog()
        datasets = {
            model: sorted(codes) for model, codes in availability.items()
        }
        caseload = {}
        for model in availability:
            total = 0
            for worker_id in alive:
                worker = self.federation.workers[worker_id]
                # A worker can advertise a model whose table is not (yet)
                # materialized — e.g. registered datasets with deferred
                # loading — so guard on the table too, not just the catalog.
                if model in worker.datasets() and worker.database.has_table(
                    f"data_{model}"
                ):
                    total += worker.database.get_table(f"data_{model}").num_rows
            caseload[model] = total
        transport = self.federation.transport.stats
        payload: dict[str, Any] = {
            "workers": {
                worker: ("up" if worker in alive else "down")
                for worker in self.federation.workers
            },
            "data_models": datasets,
            "caseload_rows": caseload,
            "aggregation": self.engine.aggregation,
            "transport": {
                "messages": transport.messages,
                "bytes_sent": transport.bytes_sent,
                "simulated_seconds": round(transport.simulated_seconds, 6),
            },
            "experiments": {
                "total": len(self.engine.history()),
                "succeeded": sum(
                    1 for r in self.engine.history() if r.status.value == "success"
                ),
            },
            "queue": self.engine.queue.stats(),
        }
        if self.durability is not None:
            payload["durability"] = self.durability.stats()
        cluster = self.federation.smpc_cluster
        if cluster is not None:
            payload["smpc"] = {
                "scheme": cluster.scheme,
                "nodes": cluster.n_nodes,
                "rounds": cluster.communication.rounds,
                "elements": cluster.communication.elements,
                "offline_triples": cluster.offline_usage.triples,
                "offline_random_bits": cluster.offline_usage.random_bits,
            }
        return payload
