"""Built-in scalar and aggregate functions, all vectorized over numpy."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.column import Column
from repro.engine.types import SQLType, common_type, is_numeric
from repro.errors import ExecutionError, TypeMismatchError


def _numeric_unary(name: str, func: Callable[[np.ndarray], np.ndarray],
                   result_type: SQLType | None = None) -> Callable[[list[Column]], Column]:
    def apply(args: list[Column]) -> Column:
        (col,) = _expect_args(name, args, 1)
        if not is_numeric(col.sql_type):
            raise TypeMismatchError(f"{name} requires a numeric argument")
        out_type = result_type or SQLType.REAL
        with np.errstate(all="ignore"):
            values = func(col.values.astype(np.float64))
        nulls = col.nulls | ~np.isfinite(values)
        safe = np.where(np.isfinite(values), values, 0.0)
        if out_type == SQLType.INT:
            return Column(SQLType.INT, safe.astype(np.int64), nulls)
        return Column(SQLType.REAL, safe, nulls)

    return apply


def _expect_args(name: str, args: list[Column], count: int) -> list[Column]:
    if len(args) != count:
        raise ExecutionError(f"{name} takes {count} argument(s), got {len(args)}")
    return args


def _abs(args: list[Column]) -> Column:
    (col,) = _expect_args("ABS", args, 1)
    if not is_numeric(col.sql_type):
        raise TypeMismatchError("ABS requires a numeric argument")
    return Column(col.sql_type, np.abs(col.values), col.nulls.copy())


def _power(args: list[Column]) -> Column:
    base, exponent = _expect_args("POWER", args, 2)
    if not (is_numeric(base.sql_type) and is_numeric(exponent.sql_type)):
        raise TypeMismatchError("POWER requires numeric arguments")
    with np.errstate(all="ignore"):
        values = np.power(base.values.astype(np.float64), exponent.values.astype(np.float64))
    nulls = base.nulls | exponent.nulls | ~np.isfinite(values)
    return Column(SQLType.REAL, np.where(np.isfinite(values), values, 0.0), nulls)


def _coalesce(args: list[Column]) -> Column:
    if not args:
        raise ExecutionError("COALESCE requires at least one argument")
    out_type = args[0].sql_type
    for col in args[1:]:
        out_type = common_type(out_type, col.sql_type)
    result = args[0].cast(out_type)
    values = result.values.copy()
    nulls = result.nulls.copy()
    for col in args[1:]:
        cast = col.cast(out_type)
        fill = nulls & ~cast.nulls
        values[fill] = cast.values[fill]
        nulls = nulls & cast.nulls
    return Column(out_type, values, nulls)


def _string_unary(name: str, func: Callable[[str], str]) -> Callable[[list[Column]], Column]:
    def apply(args: list[Column]) -> Column:
        (col,) = _expect_args(name, args, 1)
        if col.sql_type != SQLType.VARCHAR:
            raise TypeMismatchError(f"{name} requires a VARCHAR argument")
        values = np.array(
            [func(v) if not n else "" for v, n in zip(col.values, col.nulls)], dtype=object
        )
        return Column(SQLType.VARCHAR, values, col.nulls.copy())

    return apply


def _length(args: list[Column]) -> Column:
    (col,) = _expect_args("LENGTH", args, 1)
    if col.sql_type != SQLType.VARCHAR:
        raise TypeMismatchError("LENGTH requires a VARCHAR argument")
    values = np.array([len(v) if not n else 0 for v, n in zip(col.values, col.nulls)],
                      dtype=np.int64)
    return Column(SQLType.INT, values, col.nulls.copy())


SCALAR_FUNCTIONS: dict[str, Callable[[list[Column]], Column]] = {
    "ABS": _abs,
    "SQRT": _numeric_unary("SQRT", np.sqrt),
    "LN": _numeric_unary("LN", np.log),
    "LOG": _numeric_unary("LOG", np.log),
    "LOG10": _numeric_unary("LOG10", np.log10),
    "EXP": _numeric_unary("EXP", np.exp),
    "FLOOR": _numeric_unary("FLOOR", np.floor, SQLType.INT),
    "CEIL": _numeric_unary("CEIL", np.ceil, SQLType.INT),
    "CEILING": _numeric_unary("CEILING", np.ceil, SQLType.INT),
    "ROUND": _numeric_unary("ROUND", np.round),
    "SIGN": _numeric_unary("SIGN", np.sign),
    "POWER": _power,
    "POW": _power,
    "COALESCE": _coalesce,
    "LOWER": _string_unary("LOWER", str.lower),
    "UPPER": _string_unary("UPPER", str.upper),
    "TRIM": _string_unary("TRIM", str.strip),
    "LENGTH": _length,
}


# ------------------------------------------------------------------ aggregates


def aggregate(name: str, column: Column | None, row_count: int, distinct: bool = False):
    """Compute one aggregate over a column (or COUNT(*) when column is None).

    NULLs are ignored, matching SQL semantics; aggregates over zero non-NULL
    rows yield NULL (except COUNT, which yields 0).
    """
    if name == "COUNT":
        if column is None:
            return row_count
        if distinct:
            return len({v for v, n in zip(column.values, column.nulls) if not n})
        return int((~column.nulls).sum())
    if column is None:
        raise ExecutionError(f"{name} requires an argument")
    values = column.non_null()
    if distinct:
        values = np.unique(values)
    if len(values) == 0:
        return None
    if name == "SUM":
        total = values.sum()
        return int(total) if column.sql_type == SQLType.INT else float(total)
    if name == "AVG":
        return float(np.mean(values.astype(np.float64)))
    if name == "MIN":
        result = values.min()
        return _narrow(result, column.sql_type)
    if name == "MAX":
        result = values.max()
        return _narrow(result, column.sql_type)
    if name == "STDDEV_SAMP":
        if len(values) < 2:
            return None
        return float(np.std(values.astype(np.float64), ddof=1))
    if name == "VAR_SAMP":
        if len(values) < 2:
            return None
        return float(np.var(values.astype(np.float64), ddof=1))
    raise ExecutionError(f"unknown aggregate: {name}")


def aggregate_result_type(name: str, argument_type: SQLType | None) -> SQLType:
    """The SQL result type of an aggregate call."""
    if name == "COUNT":
        return SQLType.INT
    if argument_type is None:
        raise ExecutionError(f"{name} requires an argument")
    if name in ("MIN", "MAX", "SUM"):
        return argument_type
    return SQLType.REAL


def _narrow(value, sql_type: SQLType):
    if sql_type == SQLType.INT:
        return int(value)
    if sql_type == SQLType.REAL:
        return float(value)
    if sql_type == SQLType.BOOL:
        return bool(value)
    return value
