"""SQL type system for the columnar engine.

Types map onto numpy dtypes.  NULLs are tracked in a separate boolean mask on
each column rather than with sentinel values, which keeps arithmetic honest
for integer columns.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import TypeMismatchError


class SQLType(enum.Enum):
    """The SQL column types supported by the engine."""

    INT = "INT"
    REAL = "REAL"
    VARCHAR = "VARCHAR"
    BOOL = "BOOL"

    @property
    def numpy_dtype(self) -> np.dtype:
        return _NUMPY_DTYPES[self]

    @classmethod
    def from_name(cls, name: str) -> "SQLType":
        """Resolve a SQL type name (including common aliases) to a SQLType."""
        key = name.strip().upper()
        if key in _TYPE_ALIASES:
            return _TYPE_ALIASES[key]
        raise TypeMismatchError(f"unknown SQL type: {name!r}")

    @classmethod
    def of_value(cls, value: Any) -> "SQLType":
        """Infer the SQL type of a Python scalar."""
        if isinstance(value, bool) or isinstance(value, np.bool_):
            return cls.BOOL
        if isinstance(value, (int, np.integer)):
            return cls.INT
        if isinstance(value, (float, np.floating)):
            return cls.REAL
        if isinstance(value, str):
            return cls.VARCHAR
        raise TypeMismatchError(f"cannot infer SQL type of {value!r}")


_NUMPY_DTYPES = {
    SQLType.INT: np.dtype(np.int64),
    SQLType.REAL: np.dtype(np.float64),
    SQLType.VARCHAR: np.dtype(object),
    SQLType.BOOL: np.dtype(np.bool_),
}

_TYPE_ALIASES = {
    "INT": SQLType.INT,
    "INTEGER": SQLType.INT,
    "BIGINT": SQLType.INT,
    "SMALLINT": SQLType.INT,
    "REAL": SQLType.REAL,
    "FLOAT": SQLType.REAL,
    "DOUBLE": SQLType.REAL,
    "DOUBLE PRECISION": SQLType.REAL,
    "VARCHAR": SQLType.VARCHAR,
    "TEXT": SQLType.VARCHAR,
    "STRING": SQLType.VARCHAR,
    "CHAR": SQLType.VARCHAR,
    "BOOL": SQLType.BOOL,
    "BOOLEAN": SQLType.BOOL,
}

#: Implicit widening: INT -> REAL is the only numeric coercion the engine does.
_NUMERIC = (SQLType.INT, SQLType.REAL)


def is_numeric(sql_type: SQLType) -> bool:
    """Return True for types that participate in arithmetic."""
    return sql_type in _NUMERIC


def common_type(left: SQLType, right: SQLType) -> SQLType:
    """The result type of combining two operand types, widening INT to REAL."""
    if left == right:
        return left
    if is_numeric(left) and is_numeric(right):
        return SQLType.REAL
    raise TypeMismatchError(f"incompatible types: {left.value} vs {right.value}")


def coerce_scalar(value: Any, sql_type: SQLType) -> Any:
    """Coerce a Python scalar to the canonical Python value for a SQL type.

    ``None`` passes through (it is the SQL NULL).
    """
    if value is None:
        return None
    if sql_type == SQLType.INT:
        if isinstance(value, (bool, np.bool_)):
            return int(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)) and float(value).is_integer():
            return int(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to INT")
    if sql_type == SQLType.REAL:
        if isinstance(value, (bool, np.bool_)):
            return float(value)
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to REAL")
    if sql_type == SQLType.VARCHAR:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"cannot coerce {value!r} to VARCHAR")
    if sql_type == SQLType.BOOL:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise TypeMismatchError(f"cannot coerce {value!r} to BOOL")
    raise TypeMismatchError(f"unknown type {sql_type}")
