"""Vectorized evaluation of expressions and SELECT plans.

Expressions evaluate column-at-a-time over numpy arrays with SQL three-valued
logic carried in explicit NULL masks.  This is the engine property MIP's
Worker nodes rely on ("vectorization, zero-cost copy"): a filter or arithmetic
expression touches whole columns, not Python-level rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.engine import expressions as ast
from repro.engine.column import Column
from repro.engine.functions import SCALAR_FUNCTIONS, aggregate, aggregate_result_type
from repro.engine.table import ColumnSpec, Schema, Table
from repro.engine.types import SQLType, common_type, is_numeric
from repro.errors import ExecutionError, TypeMismatchError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


def evaluate(expression: ast.Expression, table: Table) -> Column:
    """Evaluate an expression against every row of a table, vectorized."""
    return _Evaluator(table).evaluate(expression)


def resolve_column(table: Table, name: str) -> Column:
    """Resolve a possibly qualified column reference against a schema.

    Exact names win; a bare name also matches a unique ``alias.name`` column
    (the layout join outputs use), and a qualified name matches its bare
    column when the source carried no alias.
    """
    if name in table.schema:
        return table.column(name)
    if "." not in name:
        suffix = "." + name
        matches = [s.name for s in table.schema if s.name.endswith(suffix)]
        if len(matches) == 1:
            return table.column(matches[0])
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference {name!r}: {matches}")
    else:
        bare = name.split(".", 1)[1]
        if bare in table.schema:
            return table.column(bare)
    raise ExecutionError(f"no such column: {name!r}")


class _Evaluator:
    def __init__(self, table: Table) -> None:
        self._table = table
        self._rows = table.num_rows

    def evaluate(self, expr: ast.Expression) -> Column:
        if isinstance(expr, ast.Literal):
            return self._literal(expr.value)
        if isinstance(expr, ast.ColumnRef):
            return resolve_column(self._table, expr.name)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.IsNull):
            operand = self.evaluate(expr.operand)
            mask = ~operand.nulls if expr.negated else operand.nulls.copy()
            return Column(SQLType.BOOL, mask, np.zeros(self._rows, dtype=bool))
        if isinstance(expr, ast.InList):
            return self._in_list(expr)
        if isinstance(expr, ast.Between):
            low = ast.BinaryOp(">=", expr.operand, expr.low)
            high = ast.BinaryOp("<=", expr.operand, expr.high)
            combined: ast.Expression = ast.BinaryOp("AND", low, high)
            if expr.negated:
                combined = ast.UnaryOp("NOT", combined)
            return self.evaluate(combined)
        if isinstance(expr, ast.Like):
            return self._like(expr)
        if isinstance(expr, ast.FunctionCall):
            func = SCALAR_FUNCTIONS.get(expr.name)
            if func is None:
                raise ExecutionError(f"unknown function: {expr.name}")
            args = [self.evaluate(arg) for arg in expr.args]
            return func(args)
        if isinstance(expr, ast.Cast):
            return self.evaluate(expr.operand).cast(expr.target)
        if isinstance(expr, ast.CaseWhen):
            return self._case(expr)
        if isinstance(expr, ast.Aggregate):
            raise ExecutionError("aggregate used outside of an aggregating SELECT")
        raise ExecutionError(f"cannot evaluate expression node {type(expr).__name__}")

    # -------------------------------------------------------------- operators

    def _literal(self, value: Any) -> Column:
        if value is None:
            # An untyped NULL: REAL by default, retyped by the consuming
            # operator (see _retype_if_all_null).
            return Column(
                SQLType.REAL,
                np.zeros(self._rows, dtype=np.float64),
                np.ones(self._rows, dtype=bool),
            )
        sql_type = SQLType.of_value(value)
        values = np.full(self._rows, value, dtype=sql_type.numpy_dtype)
        return Column(sql_type, values, np.zeros(self._rows, dtype=bool))

    def _unary(self, expr: ast.UnaryOp) -> Column:
        operand = self.evaluate(expr.operand)
        if expr.op == "-":
            if not is_numeric(operand.sql_type):
                raise TypeMismatchError("unary minus requires a numeric operand")
            return Column(operand.sql_type, -operand.values, operand.nulls.copy())
        if expr.op == "NOT":
            operand = _retype_if_all_null(operand, SQLType.BOOL)
            if operand.sql_type != SQLType.BOOL:
                raise TypeMismatchError("NOT requires a boolean operand")
            return Column(SQLType.BOOL, ~operand.values, operand.nulls.copy())
        raise ExecutionError(f"unknown unary operator {expr.op}")

    def _binary(self, expr: ast.BinaryOp) -> Column:
        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        op = expr.op
        if op in ("AND", "OR"):
            return _logical(op, left, right)
        if op in ("+", "-", "*", "/", "%"):
            return _arithmetic(op, left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison(op, left, right)
        raise ExecutionError(f"unknown binary operator {op}")

    def _like(self, expr: ast.Like) -> Column:
        import re as _re

        operand = self.evaluate(expr.operand)
        if operand.sql_type != SQLType.VARCHAR:
            raise TypeMismatchError("LIKE requires a VARCHAR operand")
        regex = _re.compile(
            "^" + _re.escape(expr.pattern).replace("%", ".*").replace("_", ".") + "$",
            _re.DOTALL,
        )
        matches = np.array(
            [bool(regex.match(v)) if not null else False
             for v, null in zip(operand.values, operand.nulls)],
            dtype=bool,
        )
        if expr.negated:
            matches = ~matches & ~operand.nulls
        return Column(SQLType.BOOL, matches, operand.nulls.copy())

    def _in_list(self, expr: ast.InList) -> Column:
        operand = self.evaluate(expr.operand)
        hit = np.zeros(self._rows, dtype=bool)
        any_null_item = np.zeros(self._rows, dtype=bool)
        for item in expr.items:
            eq = _comparison("=", operand, self.evaluate(item))
            hit |= eq.values & ~eq.nulls
            any_null_item |= eq.nulls
        # SQL: x IN (...) is NULL when no match and some comparison was NULL.
        nulls = ~hit & (any_null_item | operand.nulls)
        values = ~hit if expr.negated else hit
        return Column(SQLType.BOOL, values & ~nulls, nulls)

    def _case(self, expr: ast.CaseWhen) -> Column:
        branch_values = [(self.evaluate(cond), self.evaluate(val)) for cond, val in expr.branches]
        otherwise = self.evaluate(expr.otherwise) if expr.otherwise is not None else None
        out_type = branch_values[0][1].sql_type
        for _, val in branch_values[1:]:
            out_type = common_type(out_type, val.sql_type)
        if otherwise is not None:
            # An all-NULL literal ELSE adopts the branch type.
            if otherwise.nulls.all() and otherwise.sql_type != out_type:
                otherwise = Column(
                    out_type,
                    np.zeros(self._rows, dtype=out_type.numpy_dtype),
                    np.ones(self._rows, dtype=bool),
                )
            out_type = common_type(out_type, otherwise.sql_type)
        values = np.zeros(self._rows, dtype=out_type.numpy_dtype)
        nulls = np.ones(self._rows, dtype=bool)
        decided = np.zeros(self._rows, dtype=bool)
        for cond, val in branch_values:
            val = val.cast(out_type)
            fire = ~decided & cond.values & ~cond.nulls
            values[fire] = val.values[fire]
            nulls[fire] = val.nulls[fire]
            decided |= fire
        if otherwise is not None:
            otherwise = otherwise.cast(out_type)
            rest = ~decided
            values[rest] = otherwise.values[rest]
            nulls[rest] = otherwise.nulls[rest]
        return Column(out_type, values, nulls)


def _retype_if_all_null(column: Column, target: SQLType) -> Column:
    """Adapt an all-NULL (untyped-NULL-literal) column to the needed type."""
    if column.sql_type != target and len(column) == int(column.nulls.sum()):
        return Column(
            target,
            np.zeros(len(column), dtype=target.numpy_dtype),
            np.ones(len(column), dtype=bool),
        )
    return column


def _logical(op: str, left: Column, right: Column) -> Column:
    left = _retype_if_all_null(left, SQLType.BOOL)
    right = _retype_if_all_null(right, SQLType.BOOL)
    if left.sql_type != SQLType.BOOL or right.sql_type != SQLType.BOOL:
        raise TypeMismatchError(f"{op} requires boolean operands")
    lv, ln = left.values, left.nulls
    rv, rn = right.values, right.nulls
    if op == "AND":
        # Kleene logic: FALSE AND anything = FALSE even with NULLs.
        false_side = (lv == False) & ~ln | (rv == False) & ~rn  # noqa: E712
        values = lv & rv
        nulls = (ln | rn) & ~false_side
        return Column(SQLType.BOOL, values & ~nulls, nulls)
    true_side = (lv == True) & ~ln | (rv == True) & ~rn  # noqa: E712
    values = lv | rv
    nulls = (ln | rn) & ~true_side
    return Column(SQLType.BOOL, (values | true_side) & ~nulls, nulls)


def _arithmetic(op: str, left: Column, right: Column) -> Column:
    if not (is_numeric(left.sql_type) and is_numeric(right.sql_type)):
        raise TypeMismatchError(f"operator {op} requires numeric operands")
    out_type = common_type(left.sql_type, right.sql_type)
    if op == "/":
        out_type = SQLType.REAL
    lv = left.values.astype(np.float64)
    rv = right.values.astype(np.float64)
    nulls = left.nulls | right.nulls
    with np.errstate(all="ignore"):
        if op == "+":
            values = lv + rv
        elif op == "-":
            values = lv - rv
        elif op == "*":
            values = lv * rv
        elif op == "/":
            values = np.where(rv == 0, np.nan, lv / np.where(rv == 0, 1.0, rv))
        else:  # '%'
            values = np.where(rv == 0, np.nan, np.mod(lv, np.where(rv == 0, 1.0, rv)))
    bad = ~np.isfinite(values)
    nulls = nulls | bad
    values = np.where(bad, 0.0, values)
    if out_type == SQLType.INT:
        return Column(SQLType.INT, values.astype(np.int64), nulls)
    return Column(SQLType.REAL, values, nulls)


def _comparison(op: str, left: Column, right: Column) -> Column:
    if not is_numeric(left.sql_type):
        right = _retype_if_all_null(right, left.sql_type)
    if not is_numeric(right.sql_type):
        left = _retype_if_all_null(left, right.sql_type)
    nulls = left.nulls | right.nulls
    if is_numeric(left.sql_type) and is_numeric(right.sql_type):
        lv = left.values.astype(np.float64)
        rv = right.values.astype(np.float64)
    elif left.sql_type == right.sql_type:
        lv, rv = left.values, right.values
    else:
        raise TypeMismatchError(
            f"cannot compare {left.sql_type.value} with {right.sql_type.value}"
        )
    if left.sql_type == SQLType.VARCHAR and op not in ("=", "<>"):
        # Lexicographic comparison of object arrays needs an explicit loop.
        pairs = zip(lv, rv)
        results = [_compare_strings(op, a, b) for a, b in pairs]
        values = np.array(results, dtype=bool)
    else:
        if op == "=":
            values = lv == rv
        elif op == "<>":
            values = lv != rv
        elif op == "<":
            values = lv < rv
        elif op == "<=":
            values = lv <= rv
        elif op == ">":
            values = lv > rv
        else:
            values = lv >= rv
        values = np.asarray(values, dtype=bool)
    return Column(SQLType.BOOL, values & ~nulls, nulls)


def _compare_strings(op: str, a: str, b: str) -> bool:
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


# ------------------------------------------------------------------- SELECT


def execute_select(select: ast.Select, database: "Database") -> Table:
    """Execute a SELECT plan against a database."""
    if select.source is None:
        base = Table(Schema([]), [])
        base_one = Table.from_rows(Schema([("dummy", SQLType.INT)]), [(0,)])
        return _project_scalar(select, base_one)
    source = database.resolve_source(select.source)
    if select.where is not None:
        predicate = evaluate(select.where, source)
        mask = predicate.values & ~predicate.nulls
        source = source.filter(mask)
    if select.group_by or _has_aggregates(select):
        result = _execute_aggregation(select, source)
    else:
        result = _project(select, source)
    if select.distinct:
        result = _distinct(result)
    if select.order_by:
        aligned = not select.group_by and not _has_aggregates(select) and not select.distinct
        result = _order(result, select, source if aligned else None)
    if select.limit is not None:
        result = result.slice(0, select.limit)
    return result


def _distinct(result: Table) -> Table:
    """Keep the first occurrence of each row tuple (SELECT DISTINCT).

    Vectorized: rows are factorized into an integer code matrix and
    deduplicated with one ``np.unique(axis=0)`` pass instead of hashing a
    Python tuple per row.  First-occurrence order is preserved (the unique
    indices are re-sorted into row order).
    """
    if result.num_rows <= 1:
        return result
    codes = np.column_stack([_column_codes(column) for column in result.columns])
    _, first = np.unique(codes, axis=0, return_index=True)
    first.sort()
    return result.take(first.astype(np.int64))


def _column_codes(column: Column) -> np.ndarray:
    """Row-equality codes for one column: equal row values (by the Python
    tuple semantics ``_distinct`` historically used) get equal codes.

    NULLs all share code 0 (``None == None`` dedupes).  REAL NaNs each get a
    fresh code because ``float("nan") != float("nan")`` kept every NaN row
    distinct in the row-tuple reference.
    """
    values = column.values
    if column.sql_type == SQLType.VARCHAR:
        _, inverse = np.unique(values.astype(str), return_inverse=True)
        codes = inverse.astype(np.int64) + 1
    elif column.sql_type == SQLType.REAL:
        uniques, inverse = np.unique(values, return_inverse=True)
        codes = inverse.astype(np.int64) + 1
        nan_mask = np.isnan(values)
        if nan_mask.any():
            codes[nan_mask] = len(uniques) + 1 + np.arange(int(nan_mask.sum()))
    else:  # INT / BOOL
        _, inverse = np.unique(values, return_inverse=True)
        codes = inverse.astype(np.int64) + 1
    codes[column.nulls] = 0
    return codes


def _has_aggregates(select: ast.Select) -> bool:
    return any(_contains_aggregate(item.expression) for item in select.items) or (
        select.having is not None and _contains_aggregate(select.having)
    )


def _contains_aggregate(expr: ast.Expression) -> bool:
    if isinstance(expr, ast.Aggregate):
        return True
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.FunctionCall):
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, ast.Cast):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.CaseWhen):
        parts = [c for c, _ in expr.branches] + [v for _, v in expr.branches]
        if expr.otherwise is not None:
            parts.append(expr.otherwise)
        return any(_contains_aggregate(p) for p in parts)
    if isinstance(expr, (ast.IsNull, ast.Like)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.InList):
        return _contains_aggregate(expr.operand) or any(_contains_aggregate(i) for i in expr.items)
    if isinstance(expr, ast.Between):
        return any(_contains_aggregate(e) for e in (expr.operand, expr.low, expr.high))
    return False


def _project(select: ast.Select, source: Table) -> Table:
    if not select.items:  # SELECT *
        return source
    return _project_scalar(select, source)


def _project_scalar(select: ast.Select, source: Table) -> Table:
    columns: list[Column] = []
    specs: list[ColumnSpec] = []
    for position, item in enumerate(select.items):
        col = evaluate(item.expression, source)
        specs.append(ColumnSpec(item.output_name(position), col.sql_type))
        columns.append(col)
    return Table(Schema(specs), columns)


def _execute_aggregation(select: ast.Select, source: Table) -> Table:
    group_keys = select.group_by
    if group_keys:
        key_columns = [evaluate(key, source) for key in group_keys]
        groups = _group_indices(key_columns, source.num_rows)
    else:
        groups = [np.arange(source.num_rows)]
    out_rows: list[list[Any]] = []
    names: list[str] = []
    types: list[SQLType] = []
    first = True
    kept_groups: list[list[Any]] = []
    for indices in groups:
        subset = source.take(indices)
        if select.having is not None:
            keep = _evaluate_with_aggregates(select.having, subset)
            if keep is None or keep is False:
                continue
        row: list[Any] = []
        for position, item in enumerate(select.items):
            value = _evaluate_with_aggregates(item.expression, subset)
            row.append(value)
            if first:
                names.append(item.output_name(position))
                types.append(_aggregate_expr_type(item.expression, source.schema))
        first = False
        kept_groups.append(row)
    if first:
        # No groups survived (or source empty without GROUP BY keys): still
        # compute names/types; with no GROUP BY an empty input yields one row.
        for position, item in enumerate(select.items):
            names.append(item.output_name(position))
            types.append(_aggregate_expr_type(item.expression, source.schema))
        if not group_keys and select.having is None:
            subset = source.take(np.arange(0))
            row = [_evaluate_with_aggregates(item.expression, subset) for item in select.items]
            kept_groups.append(row)
    schema = Schema([ColumnSpec(n, t) for n, t in zip(names, types)])
    return Table.from_rows(schema, kept_groups)


def _group_indices(key_columns: list[Column], row_count: int) -> list[np.ndarray]:
    keys: dict[tuple, list[int]] = {}
    for i in range(row_count):
        key = tuple(col[i] for col in key_columns)
        keys.setdefault(key, []).append(i)
    return [np.array(indices, dtype=np.int64) for indices in keys.values()]


def _evaluate_with_aggregates(expr: ast.Expression, subset: Table) -> Any:
    """Evaluate an expression that may mix aggregates and group-key columns."""
    if isinstance(expr, ast.Aggregate):
        argument = evaluate(expr.argument, subset) if expr.argument is not None else None
        return aggregate(expr.name, argument, subset.num_rows, expr.distinct)
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        col = resolve_column(subset, expr.name)
        if len(col) == 0:
            return None
        return col[0]
    if isinstance(expr, ast.UnaryOp):
        value = _evaluate_with_aggregates(expr.operand, subset)
        if value is None:
            return None
        return (not value) if expr.op == "NOT" else -value
    if isinstance(expr, ast.BinaryOp):
        left = _evaluate_with_aggregates(expr.left, subset)
        right = _evaluate_with_aggregates(expr.right, subset)
        return _scalar_binary(expr.op, left, right)
    if isinstance(expr, ast.Cast):
        inner = _evaluate_with_aggregates(expr.operand, subset)
        if inner is None:
            return None
        single = Column.from_values(SQLType.of_value(inner), [inner]).cast(expr.target)
        return single[0]
    if isinstance(expr, ast.FunctionCall):
        args = [_evaluate_with_aggregates(a, subset) for a in expr.args]
        from repro.engine.functions import SCALAR_FUNCTIONS as fns
        func = fns.get(expr.name)
        if func is None:
            raise ExecutionError(f"unknown function: {expr.name}")
        arg_cols = []
        for value in args:
            if value is None:
                arg_cols.append(Column.from_values(SQLType.REAL, [None]))
            else:
                arg_cols.append(Column.from_values(SQLType.of_value(value), [value]))
        return func(arg_cols)[0]
    if isinstance(expr, ast.CaseWhen):
        for cond, value in expr.branches:
            test = _evaluate_with_aggregates(cond, subset)
            if test:
                return _evaluate_with_aggregates(value, subset)
        if expr.otherwise is not None:
            return _evaluate_with_aggregates(expr.otherwise, subset)
        return None
    if isinstance(expr, ast.IsNull):
        inner = _evaluate_with_aggregates(expr.operand, subset)
        return (inner is not None) if expr.negated else (inner is None)
    raise ExecutionError(f"unsupported expression in aggregation: {type(expr).__name__}")


def _scalar_binary(op: str, left: Any, right: Any) -> Any:
    if op == "AND":
        if left is False or right is False:
            return False
        if left is None or right is None:
            return None
        return bool(left and right)
    if op == "OR":
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return bool(left or right)
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        return left / right
    if op == "%":
        if right == 0:
            return None
        return left % right
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown operator {op}")


def _aggregate_expr_type(expr: ast.Expression, schema: Schema) -> SQLType:
    if isinstance(expr, ast.Aggregate):
        argument_type = None
        if expr.argument is not None:
            argument_type = _aggregate_expr_type(expr.argument, schema)
        return aggregate_result_type(expr.name, argument_type)
    if isinstance(expr, ast.ColumnRef):
        return _resolve_column_type(schema, expr.name)
    if isinstance(expr, ast.Literal):
        if expr.value is None:
            return SQLType.REAL
        return SQLType.of_value(expr.value)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return SQLType.BOOL
        return _aggregate_expr_type(expr.operand, schema)
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
            return SQLType.BOOL
        if expr.op == "/":
            return SQLType.REAL
        left = _aggregate_expr_type(expr.left, schema)
        right = _aggregate_expr_type(expr.right, schema)
        return common_type(left, right)
    if isinstance(expr, ast.Cast):
        return expr.target
    if isinstance(expr, ast.FunctionCall):
        if expr.name in ("LOWER", "UPPER", "TRIM"):
            return SQLType.VARCHAR
        if expr.name in ("FLOOR", "CEIL", "CEILING", "LENGTH"):
            return SQLType.INT
        if expr.name == "COALESCE" and expr.args:
            return _aggregate_expr_type(expr.args[0], schema)
        if expr.name == "ABS" and expr.args:
            return _aggregate_expr_type(expr.args[0], schema)
        return SQLType.REAL
    if isinstance(expr, (ast.IsNull, ast.InList, ast.Between, ast.Like)):
        return SQLType.BOOL
    if isinstance(expr, ast.CaseWhen):
        return _aggregate_expr_type(expr.branches[0][1], schema)
    raise ExecutionError(f"cannot type expression {type(expr).__name__}")


def _resolve_column_type(schema: Schema, name: str) -> SQLType:
    if name in schema:
        return schema.type_of(name)
    if "." not in name:
        suffix = "." + name
        matches = [s.name for s in schema if s.name.endswith(suffix)]
        if len(matches) == 1:
            return schema.type_of(matches[0])
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column reference {name!r}: {matches}")
    else:
        bare = name.split(".", 1)[1]
        if bare in schema:
            return schema.type_of(bare)
    raise ExecutionError(f"no such column: {name!r}")


# --------------------------------------------------------------------- joins


def execute_join(
    left: Table, right: Table, condition: ast.Expression, kind: str
) -> Table:
    """INNER or LEFT join, hash-based for equi-conditions.

    The inputs' schemas are expected to already carry qualified (or at least
    distinct) column names; duplicated names are a catalog error.
    """
    specs = list(left.schema.columns) + list(right.schema.columns)
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        duplicated = sorted({n for n in names if names.count(n) > 1})
        raise ExecutionError(
            f"join would produce duplicate columns {duplicated}; alias the sources"
        )
    combined_schema = Schema(specs)
    equi_keys, residual = _split_join_condition(condition, left, right)
    if equi_keys:
        left_idx, right_idx = _hash_join_indices(left, right, equi_keys)
    else:
        if left.num_rows * right.num_rows > 1_000_000:
            raise ExecutionError(
                "non-equi join too large "
                f"({left.num_rows} x {right.num_rows} rows); add an equality condition"
            )
        left_idx = np.repeat(np.arange(left.num_rows), right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows), left.num_rows)
    joined = Table(
        combined_schema,
        [c.take(left_idx) for c in left.columns] + [c.take(right_idx) for c in right.columns],
    )
    predicate = residual if equi_keys else condition
    if predicate is not None:
        mask_col = evaluate(predicate, joined)
        mask = mask_col.values & ~mask_col.nulls
        joined = joined.filter(mask)
        left_idx = left_idx[mask]
    if kind == "LEFT":
        matched = np.zeros(left.num_rows, dtype=bool)
        matched[left_idx] = True
        missing = np.flatnonzero(~matched)
        if len(missing):
            null_right = [
                Column.from_values(s.sql_type, [None] * len(missing))
                for s in right.schema
            ]
            padding = Table(
                combined_schema,
                [c.take(missing) for c in left.columns] + null_right,
            )
            joined = joined.concat(padding)
    return joined


def _split_join_condition(
    condition: ast.Expression, left: Table, right: Table
) -> tuple[list[tuple[str, str]], Optional[ast.Expression]]:
    """Extract (left_col, right_col) equality keys from an AND-conjunction."""
    conjuncts = _flatten_and(condition)
    keys: list[tuple[str, str]] = []
    residual: list[ast.Expression] = []
    for conjunct in conjuncts:
        pair = _equi_pair(conjunct, left, right)
        if pair is not None:
            keys.append(pair)
        else:
            residual.append(conjunct)
    residual_expr: Optional[ast.Expression] = None
    for item in residual:
        residual_expr = item if residual_expr is None else ast.BinaryOp("AND", residual_expr, item)
    return keys, residual_expr


def _flatten_and(expression: ast.Expression) -> list[ast.Expression]:
    if isinstance(expression, ast.BinaryOp) and expression.op == "AND":
        return _flatten_and(expression.left) + _flatten_and(expression.right)
    return [expression]


def _equi_pair(expression: ast.Expression, left: Table, right: Table):
    if not (isinstance(expression, ast.BinaryOp) and expression.op == "="):
        return None
    if not (isinstance(expression.left, ast.ColumnRef)
            and isinstance(expression.right, ast.ColumnRef)):
        return None

    def side_of(name: str) -> Optional[str]:
        try:
            resolve_column(left, name)
            return "left"
        except ExecutionError:
            pass
        try:
            resolve_column(right, name)
            return "right"
        except ExecutionError:
            return None

    first = side_of(expression.left.name)
    second = side_of(expression.right.name)
    if first == "left" and second == "right":
        return (expression.left.name, expression.right.name)
    if first == "right" and second == "left":
        return (expression.right.name, expression.left.name)
    return None


#: Above this magnitude an int64 does not round-trip through float64, so the
#: joint int/real key factorization could conflate distinct keys.
_EXACT_FLOAT_INT = 1 << 53

_EMPTY_INDICES = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def _hash_join_indices(left: Table, right: Table, keys: list[tuple[str, str]]):
    """Matching (left_idx, right_idx) pairs for an equi-join.

    Vectorized: both sides' key rows are factorized into one shared integer
    code space, the right side is stably sorted by code, and each left row
    gathers its match range with two ``searchsorted`` calls.  Output order
    matches the historical nested-loop build: left row-major, right rows
    ascending within each left row.  NULL (and NaN) keys never match.
    """
    left_columns = [resolve_column(left, l) for l, _ in keys]
    right_columns = [resolve_column(right, r) for _, r in keys]
    left_valid = np.ones(left.num_rows, dtype=bool)
    right_valid = np.ones(right.num_rows, dtype=bool)
    merged_codes = []
    for lcol, rcol in zip(left_columns, right_columns):
        merged = _merged_key_values(lcol, rcol)
        if merged is None:  # incomparable types: no key can ever match
            return _EMPTY_INDICES
        if merged is _PYTHON_FALLBACK:
            return _hash_join_indices_python(left, right, left_columns, right_columns)
        left_valid &= ~lcol.nulls
        right_valid &= ~rcol.nulls
        if merged.dtype == np.float64:
            nan_mask = np.isnan(merged)
            left_valid &= ~nan_mask[: left.num_rows]
            right_valid &= ~nan_mask[left.num_rows :]
        _, inverse = np.unique(merged, return_inverse=True)
        merged_codes.append(inverse.astype(np.int64))
    if not np.any(left_valid) or not np.any(right_valid):
        return _EMPTY_INDICES
    _, row_codes = np.unique(
        np.column_stack(merged_codes), axis=0, return_inverse=True
    )
    row_codes = row_codes.astype(np.int64)
    left_rows = np.flatnonzero(left_valid)
    right_rows = np.flatnonzero(right_valid)
    left_codes = row_codes[: left.num_rows][left_rows]
    right_codes = row_codes[left.num_rows :][right_rows]
    # Stable sort groups equal right keys while keeping row order within a
    # group — the bucket-append order the nested-loop build produced.
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_INDICES
    left_idx = np.repeat(left_rows, counts)
    # Positions within sorted_codes: each left row's [start, end) range,
    # laid out contiguously.
    span_offsets = np.cumsum(counts) - counts
    positions = np.arange(total) - np.repeat(span_offsets, counts) + np.repeat(starts, counts)
    right_idx = right_rows[order][positions]
    return left_idx, right_idx


class _PythonFallback:
    pass


_PYTHON_FALLBACK = _PythonFallback()


def _merged_key_values(lcol: Column, rcol: Column):
    """Concatenated (left then right) key values in one comparable dtype.

    Returns ``None`` when the types can never compare equal (string vs
    numeric), and ``_PYTHON_FALLBACK`` when exactness would be lost (int/real
    keys with values past 2**53, where Python's exact ``int == float`` and a
    float64 cast disagree).
    """
    l_str = lcol.sql_type == SQLType.VARCHAR
    r_str = rcol.sql_type == SQLType.VARCHAR
    if l_str != r_str:
        return None
    if l_str:
        return np.concatenate([lcol.values.astype(str), rcol.values.astype(str)])
    if lcol.sql_type == rcol.sql_type or SQLType.REAL not in (
        lcol.sql_type,
        rcol.sql_type,
    ):
        # Same type, or int/bool mix: concatenation promotes exactly.
        return np.concatenate([lcol.values, rcol.values])
    for col in (lcol, rcol):
        if col.sql_type == SQLType.INT and np.any(
            np.abs(col.values[~col.nulls]) > _EXACT_FLOAT_INT
        ):
            return _PYTHON_FALLBACK
    return np.concatenate(
        [lcol.values.astype(np.float64), rcol.values.astype(np.float64)]
    )


def _hash_join_indices_python(
    left: Table,
    right: Table,
    left_columns: list[Column],
    right_columns: list[Column],
):
    """Row-at-a-time reference build (exact mixed int/real key equality)."""
    buckets: dict[tuple, list[int]] = {}
    for row in range(right.num_rows):
        key = tuple(col[row] for col in right_columns)
        if any(part is None for part in key):  # SQL: NULL keys never match
            continue
        buckets.setdefault(key, []).append(row)
    left_idx: list[int] = []
    right_idx: list[int] = []
    for row in range(left.num_rows):
        key = tuple(col[row] for col in left_columns)
        if any(part is None for part in key):
            continue
        for match in buckets.get(key, ()):
            left_idx.append(row)
            right_idx.append(match)
    return np.array(left_idx, dtype=np.int64), np.array(right_idx, dtype=np.int64)


def _order(result: Table, select: ast.Select, row_source: Optional[Table]) -> Table:
    # Order keys resolve against the result schema, or — when the result rows
    # still align 1:1 with the filtered source — against the source (SQL
    # allows ordering by columns that were not projected).
    keys = []
    for key in select.order_by:
        try:
            col = evaluate(key.expression, result)
        except ExecutionError:
            if row_source is None or row_source.num_rows != result.num_rows:
                raise
            col = evaluate(key.expression, row_source)
        keys.append((col, key.ascending))
    order = np.arange(result.num_rows)
    # Stable sort from the last key to the first.
    for col, ascending in reversed(keys):
        sortable = col.to_numpy()
        if col.sql_type == SQLType.VARCHAR:
            sortable = np.array([v if v is not None else "" for v in sortable], dtype=object)
            ranks = np.argsort(sortable[order], kind="stable")
        else:
            arr = np.asarray(sortable, dtype=np.float64)[order]
            arr = np.where(np.isnan(arr), np.inf, arr)  # NULLs last
            ranks = np.argsort(arr, kind="stable")
        if not ascending:
            ranks = ranks[::-1]
        order = order[ranks]
    return result.take(order)
