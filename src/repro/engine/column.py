"""Columnar storage: a typed numpy array plus an explicit NULL mask."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.engine.types import SQLType, coerce_scalar
from repro.errors import TypeMismatchError


class Column:
    """A single column of a table: values plus a NULL mask.

    ``values`` always has the canonical numpy dtype of ``sql_type``; positions
    where ``nulls`` is True hold an arbitrary placeholder and must never be
    read by consumers.
    """

    __slots__ = ("sql_type", "values", "nulls")

    def __init__(self, sql_type: SQLType, values: np.ndarray, nulls: np.ndarray) -> None:
        if values.ndim != 1 or nulls.ndim != 1 or len(values) != len(nulls):
            raise TypeMismatchError("column values and null mask must be 1-D and equal length")
        self.sql_type = sql_type
        self.values = values
        self.nulls = nulls

    # ------------------------------------------------------------------ build

    @classmethod
    def from_values(cls, sql_type: SQLType, raw: Iterable[Any]) -> "Column":
        """Build a column from Python scalars, treating None/NaN as NULL."""
        items = list(raw)
        nulls = np.zeros(len(items), dtype=bool)
        coerced: list[Any] = []
        placeholder = _placeholder(sql_type)
        for i, item in enumerate(items):
            if item is None or _is_nan(item):
                nulls[i] = True
                coerced.append(placeholder)
            else:
                coerced.append(coerce_scalar(item, sql_type))
        values = np.array(coerced, dtype=sql_type.numpy_dtype)
        return cls(sql_type, values, nulls)

    @classmethod
    def from_numpy(cls, sql_type: SQLType, array: np.ndarray, nulls: np.ndarray | None = None) -> "Column":
        """Wrap a numpy array, casting to the canonical dtype.

        For REAL columns, NaNs in ``array`` are absorbed into the NULL mask.
        """
        values = np.asarray(array)
        if values.dtype != sql_type.numpy_dtype:
            values = values.astype(sql_type.numpy_dtype)
        else:
            values = values.copy()
        if nulls is None:
            nulls = np.zeros(len(values), dtype=bool)
        else:
            nulls = np.asarray(nulls, dtype=bool).copy()
        if sql_type == SQLType.REAL:
            nan_mask = np.isnan(values)
            if nan_mask.any():
                nulls = nulls | nan_mask
                values = np.where(nan_mask, 0.0, values)
        return cls(sql_type, values, nulls)

    @classmethod
    def empty(cls, sql_type: SQLType) -> "Column":
        return cls(sql_type, np.empty(0, dtype=sql_type.numpy_dtype), np.empty(0, dtype=bool))

    # -------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> Any:
        if self.nulls[index]:
            return None
        value = self.values[index]
        if self.sql_type == SQLType.INT:
            return int(value)
        if self.sql_type == SQLType.REAL:
            return float(value)
        if self.sql_type == SQLType.BOOL:
            return bool(value)
        return value

    def to_list(self) -> list[Any]:
        """Materialize as a list of Python scalars with None for NULLs."""
        return list(self)

    def to_numpy(self) -> np.ndarray:
        """Return values with NULLs rendered as NaN (REAL) or None (VARCHAR).

        INT/BOOL columns with NULLs are widened to float so NULL can be NaN.
        """
        if not self.nulls.any():
            return self.values.copy()
        if self.sql_type == SQLType.VARCHAR:
            out = self.values.copy()
            out[self.nulls] = None
            return out
        out = self.values.astype(np.float64)
        out[self.nulls] = np.nan
        return out

    def non_null(self) -> np.ndarray:
        """Return only the non-NULL values."""
        return self.values[~self.nulls]

    @property
    def null_count(self) -> int:
        return int(self.nulls.sum())

    # ------------------------------------------------------------ combinators

    def take(self, indices: np.ndarray) -> "Column":
        return Column(self.sql_type, self.values[indices], self.nulls[indices])

    def filter(self, mask: np.ndarray) -> "Column":
        return Column(self.sql_type, self.values[mask], self.nulls[mask])

    def slice(self, start: int, stop: int) -> "Column":
        return Column(self.sql_type, self.values[start:stop], self.nulls[start:stop])

    def concat(self, other: "Column") -> "Column":
        if other.sql_type != self.sql_type:
            raise TypeMismatchError(
                f"cannot concatenate {self.sql_type.value} with {other.sql_type.value}"
            )
        return Column(
            self.sql_type,
            np.concatenate([self.values, other.values]),
            np.concatenate([self.nulls, other.nulls]),
        )

    def cast(self, target: SQLType) -> "Column":
        """Cast to another SQL type; NULLs propagate."""
        if target == self.sql_type:
            return Column(self.sql_type, self.values.copy(), self.nulls.copy())
        return Column.from_values(target, [None if n else _cast_scalar(v, self.sql_type, target)
                                           for v, n in zip(self.values, self.nulls)])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Column({self.sql_type.value}, n={len(self)}, nulls={self.null_count})"


def _is_nan(value: Any) -> bool:
    return isinstance(value, (float, np.floating)) and np.isnan(value)


def _placeholder(sql_type: SQLType) -> Any:
    if sql_type == SQLType.INT:
        return 0
    if sql_type == SQLType.REAL:
        return 0.0
    if sql_type == SQLType.BOOL:
        return False
    return ""


def _cast_scalar(value: Any, source: SQLType, target: SQLType) -> Any:
    if target == SQLType.VARCHAR:
        if source == SQLType.BOOL:
            return "true" if value else "false"
        return str(value)
    if target == SQLType.REAL:
        return float(value)
    if target == SQLType.INT:
        if source == SQLType.VARCHAR:
            return int(str(value))
        return int(value)
    if target == SQLType.BOOL:
        if source == SQLType.VARCHAR:
            lowered = str(value).strip().lower()
            if lowered in ("true", "t", "1"):
                return True
            if lowered in ("false", "f", "0"):
                return False
            raise TypeMismatchError(f"cannot cast {value!r} to BOOL")
        return bool(value)
    raise TypeMismatchError(f"unsupported cast {source.value} -> {target.value}")
