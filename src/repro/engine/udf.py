"""Python table UDFs executed inside the engine.

MonetDB embeds Python UDFs that receive columns as numpy arrays and return
columns; it also offers *loopback queries* so a UDF body can issue SQL against
the hosting session.  Both capabilities are reproduced here because the
UDFGenerator (``repro.udfgen``) relies on them: a generated UDF reads its
relational inputs through loopback queries and emits its outputs as columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from repro.engine.column import Column
from repro.engine.table import ColumnSpec, Schema, Table
from repro.engine.types import SQLType
from repro.errors import UDFError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.database import Database


@dataclass(frozen=True)
class UDFDefinition:
    """A compiled Python table UDF stored in the catalog."""

    name: str
    parameters: tuple[tuple[str, SQLType], ...]
    returns: tuple[tuple[str, SQLType], ...]
    body: str

    @property
    def return_schema(self) -> Schema:
        return Schema([ColumnSpec(n, t) for n, t in self.returns])


class LoopbackConnection:
    """The ``_conn`` object visible inside a UDF body.

    Mirrors MonetDB's embedded-Python loopback API: ``execute`` returns a dict
    of numpy arrays for SELECTs and None for DDL/DML.
    """

    def __init__(self, database: "Database") -> None:
        self._database = database

    def execute(self, sql: str) -> dict[str, np.ndarray] | None:
        result = self._database.execute(sql)
        if result is None:
            return None
        return {spec.name: result.column(spec.name).to_numpy() for spec in result.schema}

    def execute_table(self, sql: str) -> Table | None:
        """Extension over MonetDB: fetch the full Table (keeps NULL masks)."""
        return self._database.execute(sql)


def run_udf(
    definition: UDFDefinition,
    database: "Database",
    table_args: Sequence[Table],
    literal_args: Sequence[Any],
) -> Table:
    """Execute a UDF body and validate its declared output schema.

    Scalar parameters bind in declaration order to ``literal_args``; the
    relational inputs arrive positionally as ``__table_0``, ``__table_1``,...
    with each input's columns also exposed under their own names (numpy
    arrays), MonetDB style.
    """
    namespace: dict[str, Any] = {
        "np": np,
        "numpy": np,
        "_conn": LoopbackConnection(database),
        "_cache": database.session_cache,
        "__udf_result": None,
    }
    column_names_seen: set[str] = set()
    for index, table in enumerate(table_args):
        namespace[f"__table_{index}"] = table
        for spec in table.schema:
            if spec.name in column_names_seen:
                continue
            column_names_seen.add(spec.name)
            namespace[spec.name] = table.column(spec.name).to_numpy()
    scalar_params = [p for p in definition.parameters if p[0] not in column_names_seen]
    if len(literal_args) > len(scalar_params):
        raise UDFError(
            f"UDF {definition.name}: {len(literal_args)} literal arguments for "
            f"{len(scalar_params)} scalar parameters"
        )
    for (pname, _), value in zip(scalar_params, literal_args):
        namespace[pname] = value

    code = _compiled_body(definition.name, definition.body)
    try:
        exec(code, namespace)
        raw = namespace["__udf"]()
    except UDFError:
        raise
    except Exception as exc:  # noqa: BLE001 - UDF bodies are user code
        raise UDFError(f"UDF {definition.name} raised {type(exc).__name__}: {exc}") from exc
    return _coerce_result(definition, raw)


@lru_cache(maxsize=512)
def _compiled_body(name: str, body: str):
    """Compile a UDF body once per (name, body); iterative flows re-run the
    same definition hundreds of times and the parse/compile cost dominates."""
    return compile(_wrap_body(body), f"<udf:{name}>", "exec")


def _wrap_body(body: str) -> str:
    """Wrap the raw body in a function so ``return`` works, preserving indent."""
    lines = body.splitlines()
    # Normalize leading blank lines away.
    while lines and not lines[0].strip():
        lines.pop(0)
    if not lines:
        raise UDFError("empty UDF body")
    indent = len(lines[0]) - len(lines[0].lstrip())
    normalized = []
    for line in lines:
        if line.strip():
            normalized.append("    " + line[indent:] if len(line) >= indent else "    " + line.lstrip())
        else:
            normalized.append("")
    return "def __udf():\n" + "\n".join(normalized) + "\n"


def _coerce_result(definition: UDFDefinition, raw: Any) -> Table:
    """Coerce a UDF return value (mapping / array / scalar / Table) to a Table."""
    schema = definition.return_schema
    if isinstance(raw, Table):
        if len(raw.schema) != len(schema):
            raise UDFError(
                f"UDF {definition.name} returned {len(raw.schema)} columns, "
                f"declared {len(schema)}"
            )
        return raw.rename(schema.names)
    if isinstance(raw, Mapping):
        columns = []
        length = None
        for spec in schema:
            if spec.name not in raw:
                raise UDFError(f"UDF {definition.name} result missing column {spec.name!r}")
            col = _to_column(raw[spec.name], spec.sql_type)
            if length is None:
                length = len(col)
            elif len(col) != length:
                raise UDFError(f"UDF {definition.name} returned ragged columns")
            columns.append(col)
        return Table(schema, columns)
    if len(schema) == 1:
        return Table(schema, [_to_column(raw, schema.columns[0].sql_type)])
    raise UDFError(
        f"UDF {definition.name} must return a mapping of columns "
        f"(declared {len(schema)} output columns)"
    )


def _to_column(value: Any, sql_type: SQLType) -> Column:
    if isinstance(value, Column):
        if value.sql_type != sql_type:
            return value.cast(sql_type)
        return value
    if isinstance(value, np.ndarray):
        return Column.from_numpy(sql_type, np.atleast_1d(value))
    if isinstance(value, (list, tuple)):
        return Column.from_values(sql_type, value)
    # scalar
    return Column.from_values(sql_type, [value])


UDFExecutor = Callable[[UDFDefinition, "Database", Sequence[Table], Sequence[Any]], Table]
