"""In-memory columnar SQL engine (the MonetDB substitute).

The paper runs every local computation step inside MonetDB to benefit from
vectorized, in-database analytics.  This package provides an engine with the
same interface surface used by MIP:

- columnar storage over numpy arrays with explicit NULL masks,
- a SQL subset (``CREATE TABLE``, ``INSERT``, ``SELECT`` with ``WHERE``,
  ``GROUP BY``, ``ORDER BY``, ``LIMIT``, aggregates),
- Python table UDFs (``CREATE FUNCTION ... LANGUAGE PYTHON``) executed
  vectorized over column arrays, with SQL *loopback* queries,
- remote tables and merge tables for the non-secure aggregation path.
"""

from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.table import Schema, Table
from repro.engine.types import SQLType

__all__ = ["Column", "Database", "Schema", "SQLType", "Table"]
