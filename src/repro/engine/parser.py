"""Tokenizer and recursive-descent parser for the SQL subset.

The dialect follows MonetDB where MIP depends on it: Python table UDFs
(``CREATE FUNCTION ... LANGUAGE PYTHON {...}``), table-function calls in FROM,
remote tables (``CREATE REMOTE TABLE ... ON '...'``) and merge tables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Optional

from repro.engine import expressions as ast
from repro.engine.types import SQLType
from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9$]*)
  | (?P<op><>|!=|>=|<=|=|<|>|\+|-|\*|/|%|\(|\)|,|\.|\{|\})
    """,
    re.VERBOSE,
)

AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "STDDEV_SAMP", "VAR_SAMP"}

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC",
    "LIMIT", "AS", "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "IS", "IN",
    "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "CREATE", "OR",
    "REPLACE", "TABLE", "DROP", "IF", "EXISTS", "INSERT", "INTO", "VALUES",
    "DELETE", "FUNCTION", "RETURNS", "LANGUAGE", "PYTHON", "REMOTE", "MERGE",
    "ALTER", "ADD", "ON", "DISTINCT", "JOIN", "INNER", "LEFT", "OUTER", "LIKE",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'string' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Split a statement into tokens, capturing { ... } UDF bodies raw."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        if sql[pos] == "{":
            # A brace-delimited Python UDF body: capture it raw as one token.
            body, pos = _scan_brace_body(sql, pos)
            tokens.append(Token("body", body, pos))
            continue
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r} at position {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        text = match.group()
        if kind == "name" and text.upper() in _KEYWORDS:
            tokens.append(Token("keyword", text.upper(), match.start()))
        else:
            tokens.append(Token(kind or "op", text, match.start()))
    tokens.append(Token("eof", "", len(sql)))
    return tokens


def _scan_brace_body(sql: str, start: int) -> tuple[str, int]:
    """Scan ``{...}`` with depth counting, skipping Python string literals."""
    depth = 0
    pos = start
    while pos < len(sql):
        char = sql[pos]
        if char in ("'", '"'):
            quote = char
            pos += 1
            while pos < len(sql):
                if sql[pos] == "\\":
                    pos += 2
                    continue
                if sql[pos] == quote:
                    break
                pos += 1
            pos += 1
            continue
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth == 0:
                return sql[start + 1:pos], pos + 1
        pos += 1
    raise ParseError("unterminated { ... } body")


class Parser:
    """Recursive-descent parser producing :mod:`repro.engine.expressions` ASTs."""

    def __init__(self, sql: str) -> None:
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # ------------------------------------------------------------- utilities

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: str, text: str | None = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            expected = text or kind
            raise ParseError(
                f"expected {expected} at position {token.position}, got {token.text!r}"
            )
        return self._advance()

    def _expect_name(self) -> str:
        token = self._peek()
        if token.kind == "name":
            return self._advance().text
        # Allow non-reserved keywords as identifiers where unambiguous.
        if token.kind == "keyword" and token.text in ("VALUES", "ON", "ADD", "LANGUAGE"):
            return self._advance().text.lower()
        raise ParseError(f"expected identifier at position {token.position}, got {token.text!r}")

    # ------------------------------------------------------------ statements

    def parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.kind != "keyword":
            raise ParseError(f"expected statement keyword, got {token.text!r}")
        if token.text == "SELECT":
            stmt: ast.Statement = self._parse_select()
        elif token.text == "CREATE":
            stmt = self._parse_create()
        elif token.text == "DROP":
            stmt = self._parse_drop()
        elif token.text == "INSERT":
            stmt = self._parse_insert()
        elif token.text == "DELETE":
            stmt = self._parse_delete()
        elif token.text == "ALTER":
            stmt = self._parse_alter()
        else:
            raise ParseError(f"unsupported statement: {token.text}")
        self._match("op", ";")
        self._expect("eof")
        return stmt

    def _parse_create(self) -> ast.Statement:
        self._expect("keyword", "CREATE")
        or_replace = False
        if self._check("keyword", "OR"):
            self._advance()
            self._expect("keyword", "REPLACE")
            or_replace = True
        if self._match("keyword", "REMOTE"):
            return self._parse_create_remote()
        if self._match("keyword", "MERGE"):
            return self._parse_create_merge()
        if self._match("keyword", "FUNCTION"):
            return self._parse_create_function(or_replace)
        self._expect("keyword", "TABLE")
        if_not_exists = False
        if self._match("keyword", "IF"):
            self._expect("keyword", "NOT")
            self._expect("keyword", "EXISTS")
            if_not_exists = True
        name = self._expect_name()
        columns = self._parse_column_defs()
        return ast.CreateTable(name, columns, if_not_exists)

    def _parse_create_remote(self) -> ast.CreateRemoteTable:
        self._expect("keyword", "TABLE")
        name = self._expect_name()
        columns = self._parse_column_defs()
        self._expect("keyword", "ON")
        location_token = self._expect("string")
        return ast.CreateRemoteTable(name, columns, _unquote(location_token.text))

    def _parse_create_merge(self) -> ast.CreateMergeTable:
        self._expect("keyword", "TABLE")
        name = self._expect_name()
        columns = self._parse_column_defs()
        return ast.CreateMergeTable(name, columns)

    def _parse_create_function(self, or_replace: bool) -> ast.CreateFunction:
        name = self._expect_name()
        self._expect("op", "(")
        parameters: list[tuple[str, SQLType]] = []
        if not self._check("op", ")"):
            while True:
                pname = self._expect_name()
                ptype = self._parse_type()
                parameters.append((pname, ptype))
                if not self._match("op", ","):
                    break
        self._expect("op", ")")
        self._expect("keyword", "RETURNS")
        self._expect("keyword", "TABLE")
        returns = self._parse_column_defs()
        self._expect("keyword", "LANGUAGE")
        self._expect("keyword", "PYTHON")
        body = self._parse_brace_body()
        return ast.CreateFunction(name, tuple(parameters), returns, body, or_replace)

    def _parse_brace_body(self) -> str:
        """The tokenizer captured the raw body as a single 'body' token."""
        token = self._expect("body")
        return token.text

    def _parse_column_defs(self) -> tuple[tuple[str, SQLType], ...]:
        self._expect("op", "(")
        columns: list[tuple[str, SQLType]] = []
        while True:
            name = self._expect_name()
            sql_type = self._parse_type()
            columns.append((name, sql_type))
            if not self._match("op", ","):
                break
        self._expect("op", ")")
        return tuple(columns)

    def _parse_type(self) -> SQLType:
        token = self._peek()
        if token.kind not in ("name", "keyword"):
            raise ParseError(f"expected type name at position {token.position}")
        self._advance()
        name = token.text
        if name.upper() == "DOUBLE" and self._check("name"):
            nxt = self._peek()
            if nxt.text.upper() == "PRECISION":
                self._advance()
                name = "DOUBLE PRECISION"
        sql_type = SQLType.from_name(name)
        # Optional length, e.g. VARCHAR(255) — accepted and ignored.
        if self._match("op", "("):
            self._expect("number")
            self._expect("op", ")")
        return sql_type

    def _parse_drop(self) -> ast.Statement:
        self._expect("keyword", "DROP")
        is_function = bool(self._match("keyword", "FUNCTION"))
        if not is_function:
            self._expect("keyword", "TABLE")
        if_exists = False
        if self._match("keyword", "IF"):
            self._expect("keyword", "EXISTS")
            if_exists = True
        name = self._expect_name()
        if is_function:
            return ast.DropFunction(name, if_exists)
        return ast.DropTable(name, if_exists)

    def _parse_insert(self) -> ast.Statement:
        self._expect("keyword", "INSERT")
        self._expect("keyword", "INTO")
        table = self._expect_name()
        if self._check("keyword", "SELECT"):
            return ast.InsertSelect(table, self._parse_select())
        self._expect("keyword", "VALUES")
        rows: list[tuple[Any, ...]] = []
        while True:
            self._expect("op", "(")
            row: list[Any] = []
            while True:
                row.append(self._parse_literal_value())
                if not self._match("op", ","):
                    break
            self._expect("op", ")")
            rows.append(tuple(row))
            if not self._match("op", ","):
                break
        return ast.InsertValues(table, tuple(rows))

    def _parse_literal_value(self) -> Any:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return _parse_number(token.text)
        if token.kind == "string":
            self._advance()
            return _unquote(token.text)
        if token.kind == "keyword" and token.text == "NULL":
            self._advance()
            return None
        if token.kind == "keyword" and token.text in ("TRUE", "FALSE"):
            self._advance()
            return token.text == "TRUE"
        if token.kind == "op" and token.text == "-":
            self._advance()
            number = self._expect("number")
            return -_parse_number(number.text)
        raise ParseError(f"expected literal at position {token.position}, got {token.text!r}")

    def _parse_delete(self) -> ast.DeleteFrom:
        self._expect("keyword", "DELETE")
        self._expect("keyword", "FROM")
        table = self._expect_name()
        where = None
        if self._match("keyword", "WHERE"):
            where = self._parse_expression()
        return ast.DeleteFrom(table, where)

    def _parse_alter(self) -> ast.AlterMergeAdd:
        self._expect("keyword", "ALTER")
        self._expect("keyword", "TABLE")
        merge = self._expect_name()
        self._expect("keyword", "ADD")
        self._expect("keyword", "TABLE")
        part = self._expect_name()
        return ast.AlterMergeAdd(merge, part)

    # ---------------------------------------------------------------- SELECT

    def _parse_select(self) -> ast.Select:
        self._expect("keyword", "SELECT")
        distinct = bool(self._match("keyword", "DISTINCT"))
        items: list[ast.SelectItem] = []
        star = False
        if self._match("op", "*"):
            star = True
        else:
            while True:
                expression = self._parse_expression()
                alias = None
                if self._match("keyword", "AS"):
                    alias = self._expect_name()
                elif self._check("name"):
                    alias = self._advance().text
                items.append(ast.SelectItem(expression, alias))
                if not self._match("op", ","):
                    break
        source: Optional[ast.TableSource] = None
        if self._match("keyword", "FROM"):
            source = self._parse_table_source()
        where = None
        if self._match("keyword", "WHERE"):
            where = self._parse_expression()
        group_by: tuple[ast.Expression, ...] = ()
        if self._check("keyword", "GROUP"):
            self._advance()
            self._expect("keyword", "BY")
            keys = [self._parse_expression()]
            while self._match("op", ","):
                keys.append(self._parse_expression())
            group_by = tuple(keys)
        having = None
        if self._match("keyword", "HAVING"):
            having = self._parse_expression()
        order_by: tuple[ast.OrderKey, ...] = ()
        if self._check("keyword", "ORDER"):
            self._advance()
            self._expect("keyword", "BY")
            keys_list: list[ast.OrderKey] = []
            while True:
                expression = self._parse_expression()
                ascending = True
                if self._match("keyword", "ASC"):
                    ascending = True
                elif self._match("keyword", "DESC"):
                    ascending = False
                keys_list.append(ast.OrderKey(expression, ascending))
                if not self._match("op", ","):
                    break
            order_by = tuple(keys_list)
        limit = None
        if self._match("keyword", "LIMIT"):
            limit_token = self._expect("number")
            limit = int(limit_token.text)
        return ast.Select(
            items=() if star else tuple(items),
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_table_source(self) -> ast.TableSource:
        source = self._parse_single_source()
        while True:
            kind = None
            if self._check("keyword", "JOIN"):
                self._advance()
                kind = "INNER"
            elif self._check("keyword", "INNER"):
                self._advance()
                self._expect("keyword", "JOIN")
                kind = "INNER"
            elif self._check("keyword", "LEFT"):
                self._advance()
                self._match("keyword", "OUTER")
                self._expect("keyword", "JOIN")
                kind = "LEFT"
            else:
                return source
            right = self._parse_single_source()
            self._expect("keyword", "ON")
            condition = self._parse_expression()
            source = ast.JoinSource(source, right, condition, kind)

    def _parse_single_source(self) -> ast.TableSource:
        if self._match("op", "("):
            query = self._parse_select()
            self._expect("op", ")")
            return ast.SubquerySource(query, self._parse_source_alias())
        name = self._expect_name()
        if self._check("op", "("):
            return self._parse_udf_source(name)
        return ast.NamedTable(name, self._parse_source_alias())

    def _parse_source_alias(self) -> str | None:
        if self._match("keyword", "AS"):
            return self._expect_name()
        if self._check("name"):
            return self._advance().text
        return None

    def _parse_udf_source(self, name: str) -> ast.UDFCall:
        self._expect("op", "(")
        query_args: list[ast.Select] = []
        literal_args: list[Any] = []
        if not self._check("op", ")"):
            while True:
                if self._match("op", "("):
                    query_args.append(self._parse_select())
                    self._expect("op", ")")
                elif self._check("keyword", "SELECT"):
                    query_args.append(self._parse_select())
                else:
                    literal_args.append(self._parse_literal_value())
                if not self._match("op", ","):
                    break
        self._expect("op", ")")
        return ast.UDFCall(name, tuple(query_args), tuple(literal_args))

    # ----------------------------------------------------------- expressions

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._match("keyword", "OR"):
            left = ast.BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._match("keyword", "AND"):
            left = ast.BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._match("keyword", "NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return ast.BinaryOp(op, left, self._parse_additive())
        if token.kind == "keyword" and token.text == "IS":
            self._advance()
            negated = bool(self._match("keyword", "NOT"))
            self._expect("keyword", "NULL")
            return ast.IsNull(left, negated)
        negated = False
        if token.kind == "keyword" and token.text == "NOT":
            nxt = self._peek(1)
            if nxt.kind == "keyword" and nxt.text in ("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
                token = self._peek()
        if token.kind == "keyword" and token.text == "LIKE":
            self._advance()
            pattern_token = self._expect("string")
            return ast.Like(left, _unquote(pattern_token.text), negated)
        if token.kind == "keyword" and token.text == "IN":
            self._advance()
            self._expect("op", "(")
            values = [self._parse_expression()]
            while self._match("op", ","):
                values.append(self._parse_expression())
            self._expect("op", ")")
            return ast.InList(left, tuple(values), negated)
        if token.kind == "keyword" and token.text == "BETWEEN":
            self._advance()
            low = self._parse_additive()
            self._expect("keyword", "AND")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                left = ast.BinaryOp(token.text, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self._advance()
                left = ast.BinaryOp(token.text, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        if self._match("op", "-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._match("op", "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return ast.Literal(_parse_number(token.text))
        if token.kind == "string":
            self._advance()
            return ast.Literal(_unquote(token.text))
        if token.kind == "keyword":
            if token.text == "NULL":
                self._advance()
                return ast.Literal(None)
            if token.text in ("TRUE", "FALSE"):
                self._advance()
                return ast.Literal(token.text == "TRUE")
            if token.text == "CAST":
                self._advance()
                self._expect("op", "(")
                operand = self._parse_expression()
                self._expect("keyword", "AS")
                target = self._parse_type()
                self._expect("op", ")")
                return ast.Cast(operand, target)
            if token.text == "CASE":
                return self._parse_case()
        if token.kind == "op" and token.text == "(":
            self._advance()
            inner = self._parse_expression()
            self._expect("op", ")")
            return inner
        if token.kind == "name":
            name = self._advance().text
            if self._check("op", "("):
                return self._parse_call(name)
            if self._check("op", "."):
                self._advance()
                column = self._expect_name()
                return ast.ColumnRef(f"{name}.{column}")
            return ast.ColumnRef(name)
        raise ParseError(f"unexpected token {token.text!r} at position {token.position}")

    def _parse_case(self) -> ast.Expression:
        self._expect("keyword", "CASE")
        branches: list[tuple[ast.Expression, ast.Expression]] = []
        while self._match("keyword", "WHEN"):
            condition = self._parse_expression()
            self._expect("keyword", "THEN")
            value = self._parse_expression()
            branches.append((condition, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        otherwise = None
        if self._match("keyword", "ELSE"):
            otherwise = self._parse_expression()
        self._expect("keyword", "END")
        return ast.CaseWhen(tuple(branches), otherwise)

    def _parse_call(self, name: str) -> ast.Expression:
        self._expect("op", "(")
        upper = name.upper()
        if upper in AGGREGATE_NAMES:
            if upper == "COUNT" and self._match("op", "*"):
                self._expect("op", ")")
                return ast.Aggregate("COUNT", None)
            distinct = bool(self._match("keyword", "DISTINCT"))
            argument = self._parse_expression()
            self._expect("op", ")")
            canonical = "STDDEV_SAMP" if upper == "STDDEV" else upper
            return ast.Aggregate(canonical, argument, distinct)
        args: list[ast.Expression] = []
        if not self._check("op", ")"):
            while True:
                args.append(self._parse_expression())
                if not self._match("op", ","):
                    break
        self._expect("op", ")")
        return ast.FunctionCall(upper, tuple(args))


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(sql).parse_statement()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used for filters built from the UI)."""
    parser = Parser(text)
    expression = parser._parse_expression()
    parser._expect("eof")
    return expression


def _parse_number(text: str) -> int | float:
    if re.fullmatch(r"\d+", text):
        return int(text)
    return float(text)


def _unquote(text: str) -> str:
    return text[1:-1].replace("''", "'")
