"""Remote and merge tables — the non-secure aggregation path.

The paper: "A first, non-secure transfer, employs remote and merge tables (a
MonetDB's feature) to ship local results back to the Master node and perform
the aggregation there.  (Note that the remote and merge tables are not
materialized.)"

A :class:`RemoteTable` holds a location string (``node_id/table_name``) and a
resolver that fetches the remote table *lazily at query time*; a
:class:`MergeTable` is a virtual UNION ALL over its parts.  Neither stores
rows.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.engine.table import Schema, Table, concat_tables
from repro.errors import CatalogError, NodeUnavailableError

#: Resolves "node_id/table_name" to the current remote table contents.
RemoteResolver = Callable[[str], Table]


class VirtualTable(Protocol):
    """Catalog entries that produce a Table on demand."""

    schema: Schema

    def materialize(self) -> Table: ...


class RemoteTable:
    """A non-materialized pointer to a table on another node."""

    def __init__(self, name: str, schema: Schema, location: str, resolver: RemoteResolver) -> None:
        self.name = name
        self.schema = schema
        self.location = location
        self._resolver = resolver

    def materialize(self) -> Table:
        table = self._resolver(self.location)
        if [s.sql_type for s in table.schema] != [s.sql_type for s in self.schema]:
            raise CatalogError(
                f"remote table {self.name!r}: remote schema does not match declaration"
            )
        return table.rename(self.schema.names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RemoteTable({self.name!r} ON {self.location!r})"


class MergeTable:
    """A non-materialized UNION ALL over part tables (local or remote)."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self._parts: list[str] = []

    @property
    def parts(self) -> list[str]:
        return list(self._parts)

    def add_part(self, table_name: str) -> None:
        if table_name in self._parts:
            raise CatalogError(f"table {table_name!r} is already part of {self.name!r}")
        self._parts.append(table_name)

    def materialize_with(self, lookup: Callable[[str], Table]) -> Table:
        if not self._parts:
            return Table.empty(self.schema)
        tables = []
        for part in self._parts:
            part_table = lookup(part)
            tables.append(part_table.rename(self.schema.names))
        return concat_tables(tables)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MergeTable({self.name!r}, parts={self._parts})"


def unavailable_resolver(location: str) -> Table:
    """Default resolver: every remote access fails until one is installed."""
    raise NodeUnavailableError(f"no remote resolver installed; cannot reach {location!r}")
