"""Tables and schemas for the columnar engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.engine.column import Column
from repro.engine.types import SQLType
from repro.errors import CatalogError, TypeMismatchError


@dataclass(frozen=True)
class ColumnSpec:
    """Name and type of one column in a schema."""

    name: str
    sql_type: SQLType


class Schema:
    """An ordered set of named, typed columns."""

    def __init__(self, columns: Sequence[ColumnSpec] | Sequence[tuple[str, SQLType]]) -> None:
        specs: list[ColumnSpec] = []
        for item in columns:
            spec = item if isinstance(item, ColumnSpec) else ColumnSpec(item[0], item[1])
            specs.append(spec)
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema: {names}")
        self._specs = tuple(specs)
        self._index = {spec.name: i for i, spec in enumerate(specs)}

    @property
    def columns(self) -> tuple[ColumnSpec, ...]:
        return self._specs

    @property
    def names(self) -> list[str]:
        return [spec.name for spec in self._specs]

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def type_of(self, name: str) -> SQLType:
        try:
            return self._specs[self._index[name]].sql_type
        except KeyError:
            raise CatalogError(f"no such column: {name!r}") from None

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"no such column: {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{s.name} {s.sql_type.value}" for s in self._specs)
        return f"Schema({inner})"


class Table:
    """An immutable-by-convention columnar table.

    Mutation happens only through :class:`~repro.engine.database.Database`
    (INSERT appends); query operators always produce new tables.
    """

    def __init__(self, schema: Schema, columns: Sequence[Column]) -> None:
        if len(columns) != len(schema):
            raise CatalogError("column count does not match schema")
        lengths = {len(col) for col in columns}
        if len(lengths) > 1:
            raise CatalogError(f"ragged columns: lengths {sorted(lengths)}")
        for spec, col in zip(schema, columns):
            if col.sql_type != spec.sql_type:
                raise TypeMismatchError(
                    f"column {spec.name!r}: expected {spec.sql_type.value}, got {col.sql_type.value}"
                )
        self.schema = schema
        self._columns = list(columns)

    # ------------------------------------------------------------------ build

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        return cls(schema, [Column.empty(spec.sql_type) for spec in schema])

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Table":
        materialized = [list(row) for row in rows]
        for row in materialized:
            if len(row) != len(schema):
                raise TypeMismatchError(
                    f"row has {len(row)} values, schema has {len(schema)} columns"
                )
        columns = [
            Column.from_values(spec.sql_type, [row[i] for row in materialized])
            for i, spec in enumerate(schema)
        ]
        return cls(schema, columns)

    @classmethod
    def from_mapping(cls, data: Mapping[str, tuple[SQLType, Any]]) -> "Table":
        """Build from ``{name: (type, values)}``; values may be any iterable."""
        specs = [ColumnSpec(name, sql_type) for name, (sql_type, _) in data.items()]
        columns = []
        for name, (sql_type, values) in data.items():
            if isinstance(values, np.ndarray):
                columns.append(Column.from_numpy(sql_type, values))
            else:
                columns.append(Column.from_values(sql_type, values))
        return cls(Schema(specs), columns)

    # -------------------------------------------------------------- accessors

    @property
    def num_rows(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def column(self, name: str) -> Column:
        return self._columns[self.schema.index_of(name)]

    def column_at(self, index: int) -> Column:
        return self._columns[index]

    @property
    def columns(self) -> list[Column]:
        return list(self._columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self.num_rows):
            yield tuple(col[i] for col in self._columns)

    def to_rows(self) -> list[tuple[Any, ...]]:
        return list(self.rows())

    def to_dict(self) -> dict[str, list[Any]]:
        return {spec.name: col.to_list() for spec, col in zip(self.schema, self._columns)}

    # ------------------------------------------------------------ combinators

    def take(self, indices: np.ndarray) -> "Table":
        return Table(self.schema, [col.take(indices) for col in self._columns])

    def filter(self, mask: np.ndarray) -> "Table":
        return Table(self.schema, [col.filter(mask) for col in self._columns])

    def slice(self, start: int, stop: int) -> "Table":
        return Table(self.schema, [col.slice(start, stop) for col in self._columns])

    def select(self, names: Sequence[str]) -> "Table":
        specs = [ColumnSpec(name, self.schema.type_of(name)) for name in names]
        cols = [self.column(name) for name in names]
        return Table(Schema(specs), cols)

    def rename(self, names: Sequence[str]) -> "Table":
        if len(names) != len(self.schema):
            raise CatalogError("rename requires one name per column")
        specs = [ColumnSpec(name, spec.sql_type) for name, spec in zip(names, self.schema)]
        return Table(Schema(specs), self._columns)

    def concat(self, other: "Table") -> "Table":
        if [s.sql_type for s in self.schema] != [s.sql_type for s in other.schema]:
            raise TypeMismatchError("cannot concatenate tables with different column types")
        cols = [a.concat(b) for a, b in zip(self._columns, other._columns)]
        return Table(self.schema, cols)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.schema!r}, rows={self.num_rows})"


def concat_tables(tables: Sequence[Table]) -> Table:
    """Concatenate several union-compatible tables (used by merge tables)."""
    if not tables:
        raise CatalogError("cannot concatenate zero tables")
    result = tables[0]
    for table in tables[1:]:
        result = result.concat(table)
    return result
