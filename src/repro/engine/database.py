"""The Database: catalog plus statement execution.

One :class:`Database` instance plays the role MonetDB plays on each MIP node.
It owns base tables, Python UDF definitions, remote tables, and merge tables,
and executes parsed statements.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

import numpy as np

from repro.engine import expressions as ast
from repro.engine.column import Column
from repro.engine.executor import evaluate, execute_select
from repro.engine.parser import parse
from repro.engine.remote import MergeTable, RemoteResolver, RemoteTable, unavailable_resolver
from repro.engine.table import ColumnSpec, Schema, Table
from repro.engine.types import SQLType
from repro.engine.udf import UDFDefinition, run_udf
from repro.errors import CatalogError, ExecutionError

_CatalogEntry = Table | RemoteTable | MergeTable


class Database:
    """An in-memory analytics database with a SQL subset.

    Thread-safe at statement granularity: the federation runtime may touch a
    worker's database from the transport thread while a UDF loopback query is
    in flight, so the lock is reentrant.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, _CatalogEntry] = {}
        self._functions: dict[str, UDFDefinition] = {}
        self._remote_resolver: RemoteResolver = unavailable_resolver
        self._lock = threading.RLock()
        #: Session-level Python object cache for stateful UDF execution
        #: (paper §2 roadmap: "stateful Python UDF execution").  Generated
        #: UDF bodies see it as ``_cache``: a state object written by one
        #: step is handed to the next step without a pickle round trip.
        self.session_cache: dict[str, Any] = {}

    # ----------------------------------------------------------------- admin

    def set_remote_resolver(self, resolver: RemoteResolver) -> None:
        """Install the callable that fetches remote tables at query time."""
        self._remote_resolver = resolver

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(self._tables)

    def function_names(self) -> list[str]:
        with self._lock:
            return sorted(self._functions)

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    def has_function(self, name: str) -> bool:
        with self._lock:
            return name in self._functions

    # ------------------------------------------------------------ direct API

    def register_table(self, name: str, table: Table, replace: bool = False) -> None:
        """Register a prebuilt table (ETL fast path, bypassing INSERT)."""
        with self._lock:
            if name in self._tables and not replace:
                raise CatalogError(f"table {name!r} already exists")
            self._tables[name] = table

    def get_table(self, name: str) -> Table:
        """Fetch a table by name, materializing remote/merge entries."""
        with self._lock:
            entry = self._tables.get(name)
        if entry is None:
            raise CatalogError(f"no such table: {name!r}")
        return self._materialize(entry)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        with self._lock:
            if name not in self._tables:
                if if_exists:
                    return
                raise CatalogError(f"no such table: {name!r}")
            del self._tables[name]
            self.session_cache.pop(name, None)

    def register_function(self, definition: UDFDefinition, replace: bool = False) -> None:
        with self._lock:
            if definition.name in self._functions and not replace:
                raise CatalogError(f"function {definition.name!r} already exists")
            self._functions[definition.name] = definition

    def get_function(self, name: str) -> UDFDefinition:
        with self._lock:
            definition = self._functions.get(name)
        if definition is None:
            raise CatalogError(f"no such function: {name!r}")
        return definition

    # -------------------------------------------------------------- execution

    def execute(self, sql: str) -> Optional[Table]:
        """Parse and execute one SQL statement.

        SELECTs return a :class:`Table`; DDL/DML return None.
        """
        statement = parse(sql)
        return self.execute_statement(statement)

    def execute_statement(self, statement: ast.Statement) -> Optional[Table]:
        with self._lock:
            if isinstance(statement, ast.Select):
                return execute_select(statement, self)
            if isinstance(statement, ast.CreateTable):
                return self._create_table(statement)
            if isinstance(statement, ast.DropTable):
                self.drop_table(statement.name, statement.if_exists)
                return None
            if isinstance(statement, ast.InsertValues):
                return self._insert_values(statement)
            if isinstance(statement, ast.InsertSelect):
                return self._insert_select(statement)
            if isinstance(statement, ast.DeleteFrom):
                return self._delete(statement)
            if isinstance(statement, ast.CreateFunction):
                definition = UDFDefinition(
                    statement.name, statement.parameters, statement.returns, statement.body
                )
                self.register_function(definition, replace=statement.or_replace)
                return None
            if isinstance(statement, ast.DropFunction):
                if statement.name not in self._functions:
                    if statement.if_exists:
                        return None
                    raise CatalogError(f"no such function: {statement.name!r}")
                del self._functions[statement.name]
                return None
            if isinstance(statement, ast.CreateRemoteTable):
                return self._create_remote(statement)
            if isinstance(statement, ast.CreateMergeTable):
                schema = Schema([ColumnSpec(n, t) for n, t in statement.columns])
                self._register_entry(statement.name, MergeTable(statement.name, schema))
                return None
            if isinstance(statement, ast.AlterMergeAdd):
                return self._merge_add(statement)
        raise ExecutionError(f"unsupported statement type {type(statement).__name__}")

    def query(self, sql: str) -> Table:
        """Execute a statement that must produce rows."""
        result = self.execute(sql)
        if result is None:
            raise ExecutionError("statement did not produce a result set")
        return result

    def scalar(self, sql: str) -> Any:
        """Execute a query and return the single value of a 1x1 result."""
        result = self.query(sql)
        if result.num_rows != 1 or result.num_columns != 1:
            raise ExecutionError(
                f"expected 1x1 result, got {result.num_rows}x{result.num_columns}"
            )
        return result.column_at(0)[0]

    # ------------------------------------------------------- source resolving

    def resolve_source(self, source: ast.TableSource) -> Table:
        """Resolve a FROM-clause source into a concrete Table."""
        if isinstance(source, ast.NamedTable):
            return self.get_table(source.name)
        if isinstance(source, ast.SubquerySource):
            return execute_select(source.query, self)
        if isinstance(source, ast.UDFCall):
            definition = self.get_function(source.name)
            tables = [execute_select(q, self) for q in source.query_args]
            return run_udf(definition, self, tables, list(source.literal_args))
        if isinstance(source, ast.JoinSource):
            from repro.engine.executor import execute_join

            left = self._resolve_qualified(source.left)
            right = self._resolve_qualified(source.right)
            return execute_join(left, right, source.condition, source.kind)
        raise ExecutionError(f"unknown table source {type(source).__name__}")

    def _resolve_qualified(self, source: ast.TableSource) -> Table:
        """Resolve a join operand, qualifying its columns with its alias."""
        table = self.resolve_source(source)
        alias = None
        if isinstance(source, ast.NamedTable):
            alias = source.alias or source.name
        elif isinstance(source, ast.SubquerySource):
            alias = source.alias
        if alias is None:
            return table
        return table.rename([f"{alias}.{spec.name}" for spec in table.schema])

    def call_udf(self, name: str, table_args: Sequence[Table], literal_args: Sequence[Any] = ()) -> Table:
        """Invoke a registered UDF directly (bypassing SQL), for the runtime."""
        definition = self.get_function(name)
        return run_udf(definition, self, table_args, literal_args)

    # ----------------------------------------------------------------- private

    def _register_entry(self, name: str, entry: _CatalogEntry) -> None:
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[name] = entry

    def _materialize(self, entry: _CatalogEntry) -> Table:
        if isinstance(entry, Table):
            return entry
        if isinstance(entry, RemoteTable):
            return entry.materialize()
        return entry.materialize_with(self.get_table)

    def _create_table(self, statement: ast.CreateTable) -> None:
        if statement.name in self._tables:
            if statement.if_not_exists:
                return None
            raise CatalogError(f"table {statement.name!r} already exists")
        schema = Schema([ColumnSpec(n, t) for n, t in statement.columns])
        self._tables[statement.name] = Table.empty(schema)
        return None

    def _base_table(self, name: str) -> Table:
        entry = self._tables.get(name)
        if entry is None:
            raise CatalogError(f"no such table: {name!r}")
        if not isinstance(entry, Table):
            raise ExecutionError(f"{name!r} is not a base table")
        return entry

    def _insert_values(self, statement: ast.InsertValues) -> None:
        existing = self._base_table(statement.table)
        addition = Table.from_rows(existing.schema, statement.rows)
        self._tables[statement.table] = existing.concat(addition)
        return None

    def _insert_select(self, statement: ast.InsertSelect) -> None:
        existing = self._base_table(statement.table)
        addition = execute_select(statement.query, self)
        if len(addition.schema) != len(existing.schema):
            raise ExecutionError(
                f"INSERT SELECT: {len(addition.schema)} columns for "
                f"{len(existing.schema)}-column table"
            )
        coerced = Table(
            existing.schema,
            [col.cast(spec.sql_type) for col, spec in zip(addition.columns, existing.schema)],
        )
        self._tables[statement.table] = existing.concat(coerced)
        return None

    def _delete(self, statement: ast.DeleteFrom) -> None:
        existing = self._base_table(statement.table)
        if statement.where is None:
            self._tables[statement.table] = Table.empty(existing.schema)
            return None
        predicate = evaluate(statement.where, existing)
        keep = ~(predicate.values & ~predicate.nulls)
        self._tables[statement.table] = existing.filter(keep)
        return None

    def _create_remote(self, statement: ast.CreateRemoteTable) -> None:
        schema = Schema([ColumnSpec(n, t) for n, t in statement.columns])
        remote = RemoteTable(
            statement.name, schema, statement.location, lambda loc: self._remote_resolver(loc)
        )
        self._register_entry(statement.name, remote)
        return None

    def _merge_add(self, statement: ast.AlterMergeAdd) -> None:
        entry = self._tables.get(statement.merge_table)
        if entry is None:
            raise CatalogError(f"no such table: {statement.merge_table!r}")
        if not isinstance(entry, MergeTable):
            raise ExecutionError(f"{statement.merge_table!r} is not a merge table")
        if statement.part_table not in self._tables:
            raise CatalogError(f"no such table: {statement.part_table!r}")
        entry.add_part(statement.part_table)
        return None


def table_from_arrays(names: Sequence[str], arrays: Sequence[np.ndarray],
                      types: Sequence[SQLType] | None = None) -> Table:
    """Convenience: build a Table from parallel numpy arrays."""
    if types is None:
        types = []
        for array in arrays:
            if np.issubdtype(np.asarray(array).dtype, np.integer):
                types.append(SQLType.INT)
            elif np.issubdtype(np.asarray(array).dtype, np.floating):
                types.append(SQLType.REAL)
            elif np.asarray(array).dtype == np.bool_:
                types.append(SQLType.BOOL)
            else:
                types.append(SQLType.VARCHAR)
    specs = [ColumnSpec(name, t) for name, t in zip(names, types)]
    columns = [Column.from_numpy(t, np.asarray(a)) for t, a in zip(types, arrays)]
    return Table(Schema(specs), columns)
