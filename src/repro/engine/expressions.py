"""Expression and statement AST for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.engine.types import SQLType


class Expression:
    """Base class for expression AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    value: Any  # None means SQL NULL

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # '-' or 'NOT'
    operand: Expression

    def __str__(self) -> str:
        return f"{self.op} ({self.operand})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # arithmetic, comparison, AND/OR
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {suffix})"


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(item) for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {keyword} ({inner}))"


@dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE pattern match (% = any run, _ = any one character)."""

    operand: Expression
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand} {keyword} '{escaped}')"


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {keyword} {self.low} AND {self.high})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call (ABS, SQRT, COALESCE, ...)."""

    name: str
    args: tuple[Expression, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregate call: COUNT/SUM/AVG/MIN/MAX/STDDEV_SAMP/VAR_SAMP.

    ``argument`` is None only for COUNT(*).
    """

    name: str
    argument: Optional[Expression]
    distinct: bool = False

    def __str__(self) -> str:
        if self.argument is None:
            return f"{self.name}(*)"
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{self.argument})"


@dataclass(frozen=True)
class Cast(Expression):
    operand: Expression
    target: SQLType

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.target.value})"


@dataclass(frozen=True)
class CaseWhen(Expression):
    """CASE WHEN cond THEN value [WHEN ...] [ELSE value] END."""

    branches: tuple[tuple[Expression, Expression], ...]
    otherwise: Optional[Expression]

    def __str__(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond} THEN {value}")
        if self.otherwise is not None:
            parts.append(f"ELSE {self.otherwise}")
        parts.append("END")
        return " ".join(parts)


# --------------------------------------------------------------------- plans


@dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return f"col_{position}"


class TableSource:
    """Base class for the FROM clause of a SELECT."""

    __slots__ = ()


@dataclass(frozen=True)
class NamedTable(TableSource):
    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class SubquerySource(TableSource):
    query: "Select"
    alias: Optional[str] = None


@dataclass(frozen=True)
class JoinSource(TableSource):
    """INNER or LEFT join of two sources on a boolean condition.

    Output columns are exposed under ``alias.column`` qualified names (plus
    their bare names where unambiguous).
    """

    left: TableSource
    right: TableSource
    condition: Expression
    kind: str = "INNER"  # 'INNER' | 'LEFT'


@dataclass(frozen=True)
class UDFCall(TableSource):
    """A table-function call, MonetDB style: ``f((SELECT ...), literal, ...)``."""

    name: str
    query_args: tuple["Select", ...]
    literal_args: tuple[Any, ...] = ()


@dataclass(frozen=True)
class OrderKey:
    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]  # empty tuple means SELECT *
    source: Optional[TableSource]
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderKey, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


# ----------------------------------------------------------------- DDL / DML


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[tuple[str, SQLType], ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class InsertValues:
    table: str
    rows: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class InsertSelect:
    table: str
    query: Select


@dataclass(frozen=True)
class DeleteFrom:
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class CreateFunction:
    """CREATE [OR REPLACE] FUNCTION f(args) RETURNS TABLE(cols) LANGUAGE PYTHON {body}."""

    name: str
    parameters: tuple[tuple[str, SQLType], ...]
    returns: tuple[tuple[str, SQLType], ...]
    body: str
    or_replace: bool = False


@dataclass(frozen=True)
class DropFunction:
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateRemoteTable:
    """CREATE REMOTE TABLE name (cols) ON 'node/table'."""

    name: str
    columns: tuple[tuple[str, SQLType], ...]
    location: str


@dataclass(frozen=True)
class CreateMergeTable:
    name: str
    columns: tuple[tuple[str, SQLType], ...]


@dataclass(frozen=True)
class AlterMergeAdd:
    merge_table: str
    part_table: str


Statement = (
    Select
    | CreateTable
    | DropTable
    | InsertValues
    | InsertSelect
    | DeleteFrom
    | CreateFunction
    | DropFunction
    | CreateRemoteTable
    | CreateMergeTable
    | AlterMergeAdd
)
