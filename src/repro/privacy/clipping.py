"""Sensitivity control by norm clipping (used before DP noise in training)."""

from __future__ import annotations

import numpy as np

from repro.errors import PrivacyError


def clip_by_l2_norm(values: np.ndarray, clip_norm: float) -> np.ndarray:
    """Scale a vector down so its L2 norm is at most ``clip_norm``.

    This bounds the contribution of one worker's update, making the update's
    sensitivity equal to ``clip_norm`` for the DP mechanisms.
    """
    if clip_norm <= 0:
        raise PrivacyError(f"clip norm must be positive, got {clip_norm}")
    values = np.asarray(values, dtype=np.float64)
    norm = float(np.linalg.norm(values))
    if norm <= clip_norm or norm == 0.0:
        return values.copy()
    return values * (clip_norm / norm)
