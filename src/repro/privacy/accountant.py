"""(epsilon, delta) budget accounting with basic and advanced composition."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import PrivacyError
from repro.observability.metrics import global_registry


@dataclass(frozen=True)
class PrivacySpent:
    """Total privacy loss under a chosen composition theorem."""

    epsilon: float
    delta: float


class PrivacyAccountant:
    """Tracks the (epsilon, delta) cost of a sequence of mechanism releases.

    ``spent()`` reports basic (sequential) composition; ``spent_advanced()``
    applies the advanced composition theorem (Dwork-Rothblum-Vadhan), useful
    when an experiment performs many homogeneous releases (e.g. one per
    training round).
    """

    def __init__(
        self,
        epsilon_budget: float | None = None,
        delta_budget: float | None = None,
        audit=None,
        scope: str = "",
    ) -> None:
        if epsilon_budget is not None and epsilon_budget <= 0:
            raise PrivacyError("epsilon budget must be positive")
        if delta_budget is not None and not 0 <= delta_budget < 1:
            raise PrivacyError("delta budget must be in [0, 1)")
        self.epsilon_budget = epsilon_budget
        self.delta_budget = delta_budget
        #: Optional observability.audit.AuditLog; each accounted release is
        #: recorded there as a ``privacy_spend`` event under ``scope``.
        self.audit = audit
        self.scope = scope
        self._releases: list[tuple[float, float]] = []

    def record(self, epsilon: float, delta: float = 0.0) -> None:
        """Account one release; raises if a budget would be exceeded."""
        if epsilon <= 0:
            raise PrivacyError("released epsilon must be positive")
        if not 0 <= delta < 1:
            raise PrivacyError("released delta must be in [0, 1)")
        prospective = self._basic(self._releases + [(epsilon, delta)])
        if self.epsilon_budget is not None and prospective.epsilon > self.epsilon_budget + 1e-12:
            raise PrivacyError(
                f"epsilon budget exhausted: {prospective.epsilon:.4f} > {self.epsilon_budget}"
            )
        if self.delta_budget is not None and prospective.delta > self.delta_budget + 1e-15:
            raise PrivacyError(
                f"delta budget exhausted: {prospective.delta:.2e} > {self.delta_budget}"
            )
        self._releases.append((epsilon, delta))
        global_registry.counter(
            "repro_privacy_epsilon_spent_total", "Total epsilon accounted across releases"
        ).inc(epsilon)
        global_registry.counter(
            "repro_privacy_delta_spent_total", "Total delta accounted across releases"
        ).inc(delta)
        global_registry.counter(
            "repro_privacy_releases_total", "Number of accounted mechanism releases"
        ).inc()
        if self.audit is not None:
            self.audit.record(
                "privacy_spend",
                job_id=self.scope or None,
                epsilon=epsilon,
                delta=delta,
                total_epsilon=prospective.epsilon,
                total_delta=prospective.delta,
                epsilon_budget=self.epsilon_budget,
                delta_budget=self.delta_budget,
            )

    @property
    def n_releases(self) -> int:
        return len(self._releases)

    def spent(self) -> PrivacySpent:
        """Basic composition: epsilons and deltas add."""
        return self._basic(self._releases)

    @staticmethod
    def _basic(releases: list[tuple[float, float]]) -> PrivacySpent:
        return PrivacySpent(
            epsilon=sum(e for e, _ in releases),
            delta=min(1.0, sum(d for _, d in releases)),
        )

    def spent_advanced(self, delta_slack: float = 1e-6) -> PrivacySpent:
        """Advanced composition for k releases at (epsilon_0, delta_0) each.

        epsilon' = eps0 * sqrt(2 k ln(1/delta')) + k eps0 (e^eps0 - 1),
        delta' = k delta0 + delta_slack.  Falls back to basic composition if
        the releases are heterogeneous or basic happens to be tighter.
        """
        if not self._releases:
            return PrivacySpent(0.0, 0.0)
        if not 0 < delta_slack < 1:
            raise PrivacyError("delta_slack must be in (0, 1)")
        epsilons = {round(e, 12) for e, _ in self._releases}
        basic = self.spent()
        if len(epsilons) != 1:
            return basic
        epsilon_0 = self._releases[0][0]
        k = len(self._releases)
        advanced_epsilon = epsilon_0 * math.sqrt(2 * k * math.log(1 / delta_slack)) + (
            k * epsilon_0 * (math.exp(epsilon_0) - 1)
        )
        advanced_delta = min(1.0, sum(d for _, d in self._releases) + delta_slack)
        if advanced_epsilon < basic.epsilon:
            return PrivacySpent(advanced_epsilon, advanced_delta)
        return basic
