"""Noise mechanisms for differential privacy."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PrivacyError


def _validate_epsilon(epsilon: float) -> None:
    if not epsilon > 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")


def _validate_sensitivity(sensitivity: float) -> None:
    if not sensitivity > 0:
        raise PrivacyError(f"sensitivity must be positive, got {sensitivity}")


@dataclass(frozen=True)
class LaplaceMechanism:
    """Pure epsilon-DP via Laplace noise with scale sensitivity/epsilon."""

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        _validate_epsilon(self.epsilon)
        _validate_sensitivity(self.sensitivity)

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    def add_noise(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return values + rng.laplace(0.0, self.scale, values.shape)


@dataclass(frozen=True)
class GaussianMechanism:
    """(epsilon, delta)-DP via Gaussian noise.

    Uses the classic calibration sigma = sensitivity * sqrt(2 ln(1.25/delta))
    / epsilon, valid for epsilon <= 1; for larger epsilon we fall back to the
    same formula, which stays a (looser) upper bound on the noise needed.
    """

    epsilon: float
    delta: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        _validate_epsilon(self.epsilon)
        _validate_sensitivity(self.sensitivity)
        if not 0 < self.delta < 1:
            raise PrivacyError(f"delta must be in (0, 1), got {self.delta}")

    @property
    def sigma(self) -> float:
        return gaussian_sigma(self.epsilon, self.delta, self.sensitivity)

    def add_noise(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return values + rng.normal(0.0, self.sigma, values.shape)


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float = 1.0) -> float:
    """The Gaussian-mechanism noise scale for an (epsilon, delta) target."""
    _validate_epsilon(epsilon)
    _validate_sensitivity(sensitivity)
    if not 0 < delta < 1:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    return sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon
