"""Differential privacy: mechanisms, budget accounting, clipping.

The paper's training path offers "local differential privacy (DP)" — the
Worker injects Gaussian noise before sending updates — or secure aggregation
followed by noise injected inside the SMPC protocol.  This package provides
the mechanisms (Laplace, Gaussian, analytic Gaussian calibration), an
(epsilon, delta) accountant with basic and advanced composition, and gradient
clipping to bound sensitivity.
"""

from repro.privacy.accountant import PrivacyAccountant, PrivacySpent
from repro.privacy.clipping import clip_by_l2_norm
from repro.privacy.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    gaussian_sigma,
)

__all__ = [
    "GaussianMechanism",
    "LaplaceMechanism",
    "PrivacyAccountant",
    "PrivacySpent",
    "clip_by_l2_norm",
    "gaussian_sigma",
]
