"""Secure multi-party computation (the SCALE-MAMBA / SPDZ substitute).

The paper's SMPC engine supports two sharing schemes with an explicit
security/efficiency trade-off:

- **full threshold (FT)** — additive sharing with SPDZ-style information-
  theoretic MACs; secure *with abort* against an active-malicious majority
  (all-but-one corrupt), but slow,
- **Shamir** — polynomial sharing with ``t < n/2``; fast, but secure only
  against honest-but-curious adversaries.

Supported aggregations (paper §2): sum, multiplication, min/max, disjoint
union; plus Laplacian/Gaussian noise injected *inside* the protocol before a
result is opened.

Our reproduction implements the protocols at the algorithmic level: Beaver
multiplication triples and shared random bits come from a trusted-dealer
offline phase (the stand-in for SPDZ's offline preprocessing); secure
comparison uses the standard statistically-masked-open + BitLT construction.
Communication (rounds and field elements sent) is metered so that the
benchmarks reproduce the paper's FT-vs-Shamir cost ordering.
"""

from repro.smpc.cluster import SMPCCluster, SecureComputationRequest
from repro.smpc.encoding import FixedPointEncoder
from repro.smpc.field import PRIME, FieldVector
from repro.smpc.protocol import FTProtocol, Protocol, ShamirProtocol

__all__ = [
    "FTProtocol",
    "FieldVector",
    "FixedPointEncoder",
    "PRIME",
    "Protocol",
    "SMPCCluster",
    "SecureComputationRequest",
    "ShamirProtocol",
]
