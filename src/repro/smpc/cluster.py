"""The SMPC cluster: the component MIP's Master signals for secure
aggregation.

Paper §2: "the Master node signals the SMPC cluster, the SMPC nodes import
the secret shares from the Workers and run the SMPC protocol.  When the SMPC
computation finishes, the result is sent to the Master node. [...] when a
computation is triggered, it is assigned a global unique identifier, which is
used to retrieve results asynchronously".

The cluster aggregates *secure transfer* payloads (dicts of
``{key: {"data": scalar-or-nested-list, "operation": op}}``), supports the
four operations the paper lists (sum, multiplication, min/max, disjoint
union) and can inject Laplacian or Gaussian noise inside the protocol before
a result is opened: every SMPC node contributes an authenticated share of
partial noise, so no single node ever knows the total perturbation.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Literal, Mapping, Sequence

import numpy as np

from repro.errors import SMPCError
from repro.observability.trace import tracer
from repro.simtest import hooks as sim_hooks
from repro.smpc.encoding import FixedPointEncoder
from repro.smpc.field import active_kernel
from repro.smpc.protocol import CommunicationMeter
from repro.smpc.protocol import FTProtocol, Protocol, ShamirProtocol

SchemeName = Literal["shamir", "full_threshold"]


@dataclass(frozen=True)
class NoiseSpec:
    """Noise injected inside the protocol before opening a result."""

    mechanism: Literal["gaussian", "laplace"]
    scale: float

    def partial(self, rng: np.random.Generator, n_nodes: int, size: int) -> np.ndarray:
        """One node's partial noise; partials across nodes sum to the target
        distribution (exactly for Gaussian, via infinite divisibility for
        Laplace using the Gamma-difference representation)."""
        if self.mechanism == "gaussian":
            return rng.normal(0.0, self.scale / np.sqrt(n_nodes), size)
        shape = 1.0 / n_nodes
        return rng.gamma(shape, self.scale, size) - rng.gamma(shape, self.scale, size)


@dataclass
class SecureComputationRequest:
    """One pending aggregation job inside the cluster."""

    job_id: str
    payloads: dict[str, dict[str, Any]] = field(default_factory=dict)  # worker -> transfer


@dataclass(frozen=True)
class _Flattened:
    values: np.ndarray  # 1-D float64
    shape: tuple[int, ...] | None  # None for a scalar


class SMPCCluster:
    """A simulated cluster of SMPC computing nodes."""

    def __init__(
        self,
        n_nodes: int = 3,
        scheme: SchemeName = "shamir",
        seed: int | None = None,
        encoder: FixedPointEncoder | None = None,
    ) -> None:
        if scheme == "shamir":
            self.protocol: Protocol = ShamirProtocol(n_nodes, seed=seed, encoder=encoder)
        elif scheme == "full_threshold":
            self.protocol = FTProtocol(n_nodes, seed=seed, encoder=encoder)
        else:
            raise SMPCError(f"unknown SMPC scheme {scheme!r}")
        self.scheme = scheme
        self.n_nodes = n_nodes
        self._jobs: dict[str, SecureComputationRequest] = {}
        self._results: dict[str, dict[str, Any]] = {}
        self._noise_rng = np.random.default_rng(seed)
        # Protocol state (shares, MACs, the meter) is shared mutable state;
        # concurrent experiments reach the cluster from separate executor
        # threads, so imports and aggregations are serialized.  The lock
        # also makes the before/after meter delta in aggregate() exact,
        # which is what per-job attribution relies on.
        self._lock = threading.RLock()
        self._job_meters: dict[str, CommunicationMeter] = {}

    # ------------------------------------------------------------ job intake

    def import_shares(self, job_id: str, worker_id: str, payload: Mapping[str, Any]) -> None:
        """Secret-share one worker's secure-transfer payload into the cluster.

        In deployment the worker splits its values into shares and sends one
        share to each SMPC node over a secure channel; here the sharing
        happens inside :meth:`Protocol.input_vector` and the communication is
        metered identically.
        """
        with tracer.span(
            "smpc.import_shares", job=job_id, worker=worker_id, keys=len(payload)
        ), self._lock:
            job = self._jobs.setdefault(job_id, SecureComputationRequest(job_id))
            if worker_id in job.payloads:
                raise SMPCError(
                    f"worker {worker_id!r} already contributed to job {job_id!r}"
                )
            job.payloads[worker_id] = {k: dict(v) for k, v in payload.items()}

    def has_job(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._jobs or job_id in self._results

    def drop_worker(self, job_id: str, worker_id: str) -> bool:
        """Discard a (dead) worker's contribution before aggregation.

        The survivor re-split path: when the federation evicts a worker
        mid-flow, its imported payload must not poison the aggregate.  The
        surviving workers' payloads are freshly secret-shared at
        :meth:`aggregate` time, so dropping a contribution re-splits the job
        over exactly the survivors.  Returns True if anything was removed.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return False
            dropped = job.payloads.pop(worker_id, None) is not None
        if dropped:
            with tracer.span("smpc.drop_worker", job=job_id, worker=worker_id):
                pass
        return dropped

    def abort_job(self, job_id: str) -> bool:
        """Forget a pending job (a failed flow cleaning up after itself)."""
        with self._lock:
            return self._jobs.pop(job_id, None) is not None

    # ------------------------------------------------------------ aggregation

    def aggregate(self, job_id: str, noise: NoiseSpec | None = None) -> dict[str, Any]:
        """Run the protocol for every key of a job and return plain results."""
        sim = sim_hooks.current()
        if sim is not None:
            # Yield before (never inside) the cluster lock so another task
            # can be scheduled here without any risk of lock-holding parks.
            sim.flow_step(f"smpc:{job_id}")
        with self._lock:
            return self._aggregate_locked(job_id, noise)

    def _aggregate_locked(self, job_id: str, noise: NoiseSpec | None) -> dict[str, Any]:
        if job_id in self._results:
            return self._results[job_id]
        job = self._jobs.get(job_id)
        if job is None:
            raise SMPCError(f"no such SMPC job: {job_id!r}")
        if not job.payloads:
            raise SMPCError(f"SMPC job {job_id!r} has no imported shares")
        workers = sorted(job.payloads)
        keys = list(job.payloads[workers[0]])
        for worker in workers[1:]:
            if list(job.payloads[worker]) != keys:
                raise SMPCError(f"SMPC job {job_id!r}: workers disagree on transfer keys")
        result: dict[str, Any] = {}
        with tracer.span(
            "smpc.aggregate",
            job=job_id,
            workers=len(workers),
            keys=len(keys),
            scheme=self.scheme,
            kernel=active_kernel(),
        ) as span:
            rounds_before = self.protocol.meter.rounds
            elements_before = self.protocol.meter.elements
            for key in keys:
                operations = {job.payloads[w][key]["operation"] for w in workers}
                if len(operations) != 1:
                    raise SMPCError(
                        f"SMPC job {job_id!r}, key {key!r}: conflicting operations"
                    )
                operation = operations.pop()
                flattened = [_flatten(job.payloads[w][key]["data"]) for w in workers]
                shapes = {f.shape for f in flattened}
                if len(shapes) != 1:
                    raise SMPCError(f"SMPC job {job_id!r}, key {key!r}: shape mismatch")
                with tracer.span("smpc.aggregate_key", key=key, operation=operation):
                    result[key] = self._aggregate_one(operation, flattened, noise)
            span.set_attribute("rounds", self.protocol.meter.rounds - rounds_before)
        meter = self._job_meters.setdefault(job_id, CommunicationMeter())
        meter.record(
            rounds=self.protocol.meter.rounds - rounds_before,
            elements=self.protocol.meter.elements - elements_before,
        )
        self._results[job_id] = result
        del self._jobs[job_id]
        return result

    def get_result(self, job_id: str) -> dict[str, Any]:
        """Retrieve a finished result by its global unique identifier."""
        if job_id not in self._results:
            raise SMPCError(f"no finished SMPC result for job {job_id!r}")
        return self._results[job_id]

    def _aggregate_one(
        self, operation: str, inputs: Sequence[_Flattened], noise: NoiseSpec | None
    ) -> Any:
        protocol = self.protocol
        encoder = protocol.encoder
        integer_mode = operation == "union"
        encoded_inputs = []
        for item in inputs:
            if integer_mode:
                encoded = encoder.encode_ints_to_field_vector(item.values)
            else:
                encoded = encoder.encode_to_field_vector(item.values)
            encoded_inputs.append(protocol.input_vector(encoded))
        if operation == "sum":
            combined = protocol.sum_inputs(encoded_inputs)
        elif operation == "product":
            combined = protocol.product_fixed_point(encoded_inputs)
        elif operation == "min":
            combined = protocol.minimum_inputs(encoded_inputs)
        elif operation == "max":
            combined = protocol.maximum_inputs(encoded_inputs)
        elif operation == "union":
            combined = protocol.union_inputs(encoded_inputs)
        else:
            raise SMPCError(f"unsupported SMPC operation {operation!r}")
        if noise is not None and operation in ("sum",):
            combined = self._inject_noise(combined, noise, len(inputs[0].values))
        opened = protocol.open(combined)
        if integer_mode:
            values = np.asarray(encoder.decode_ints_from_field_vector(opened), dtype=np.int64)
        else:
            values = encoder.decode_field_vector(opened)
        return _unflatten(values, inputs[0].shape, integer_mode)

    def _inject_noise(self, combined, noise: NoiseSpec, length: int):
        protocol = self.protocol
        for _ in range(self.n_nodes):
            partial = noise.partial(self._noise_rng, self.n_nodes, length)
            encoded = protocol.encoder.encode_to_field_vector(partial)
            combined = protocol.add(combined, protocol.input_vector(encoded))
        return combined

    # ------------------------------------------------------------- telemetry

    @property
    def communication(self):
        return self.protocol.meter

    def job_communication(self, job_prefix: str) -> CommunicationMeter:
        """Rounds/elements attributable to one job id prefix.

        Cluster job ids are step-scoped (``{experiment}_s{n}_{param}``), so
        querying with an experiment id sums every aggregation the experiment
        triggered — the per-job view :class:`ExperimentTelemetry` reports,
        exact even when experiments overlap.
        """
        total = CommunicationMeter()
        with self._lock:
            for job_id, meter in self._job_meters.items():
                if job_id == job_prefix or job_id.startswith(f"{job_prefix}_"):
                    total.record(rounds=meter.rounds, elements=meter.elements)
        return total

    def drop_job_meters(self, job_prefix: str) -> None:
        """Forget a finished experiment's per-job meters (prefix match)."""
        with self._lock:
            for job_id in [
                j
                for j in self._job_meters
                if j == job_prefix or j.startswith(f"{job_prefix}_")
            ]:
                del self._job_meters[job_id]

    @property
    def offline_usage(self):
        return self.protocol.dealer.usage


def _flatten(data: Any) -> _Flattened:
    if isinstance(data, (int, float, np.integer, np.floating)):
        return _Flattened(np.array([float(data)], dtype=np.float64), None)
    array = np.asarray(data, dtype=np.float64)
    return _Flattened(array.ravel(), array.shape)


def _unflatten(values: np.ndarray, shape: tuple[int, ...] | None, integer_mode: bool) -> Any:
    if shape is None:
        scalar = values[0]
        return int(scalar) if integer_mode else float(scalar)
    reshaped = values.reshape(shape)
    return reshaped.tolist()
