"""Vectorized arithmetic in Z_p (p = 2^127 - 1) on numpy limb arrays.

A length-N field vector is an ``(N, 5)`` int64 array of radix-2^26 limbs:
element ``v = sum(limbs[i] << (26 * i))``.  In *canonical* form limbs 0-3 are
below 2^26 and limb 4 below 2^23 (127 = 4 * 26 + 23), and the all-ones
pattern (the value p itself) is normalized to zero, so canonical arrays are
bit-for-bit unique per residue — equality and serialization need no extra
reduction.

Why this layout works on int64 hardware:

* **Schoolbook multiply.**  Limb products are below 2^52 and each of the nine
  output positions accumulates at most five of them (< 5 * 2^52 < 2^55), so
  the whole product fits int64 with no intermediate carries.
* **Mersenne folding.**  Position k >= 5 carries weight 2^(26k) =
  2^(26(k-5)) * 2^130 and 2^130 = 8 * 2^127 ≡ 8 (mod p), so the high half
  folds back as ``z[:, k-5] += z[:, k] << 3`` — reduction costs four shifted
  adds instead of a wide division.
* **Lazy accumulation.**  Canonical limbs are < 2^26, so int64 limb sums of
  up to 2^36 vectors cannot overflow; ``vector_sum`` and the Lagrange /
  MAC-check linear combinations add first and carry once at the end.

All public functions take canonical inputs and return canonical outputs
unless explicitly documented otherwise (the ``acc_*`` helpers).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SMPCError

#: The field modulus (kept in sync with :mod:`repro.smpc.field`).
PRIME = (1 << 127) - 1

#: Limbs per element and the radix split 127 = 4 * 26 + 23.
N_LIMBS = 5
LIMB_BITS = 26
TOP_BITS = 23
_MASK = (1 << LIMB_BITS) - 1
_TOP_MASK = (1 << TOP_BITS) - 1

#: Canonical limb pattern of p itself (all ones): normalized to zero.
_P_LIMBS = np.array([_MASK, _MASK, _MASK, _MASK, _TOP_MASK], dtype=np.int64)

#: How many canonical vectors a lazy int64 accumulator absorbs before a
#: carry pass is forced (2^36 * 2^26 = 2^62 leaves one safety bit).
LAZY_ADD_LIMIT = 1 << 36

#: How many scalar-product terms ``acc_scale`` may accumulate before a fold:
#: each term adds < 5 * 2^52 per position and folding multiplies by 8, so 32
#: terms stay below 2^52 * 5 * 32 * 8 < 2^63.
LAZY_MUL_LIMIT = 32


# ------------------------------------------------------------- conversions


def to_limbs(elements: Sequence[int]) -> np.ndarray:
    """Pack canonical field elements (ints in [0, p)) into an (N, 5) array.

    Elements are serialized to 16 little-endian bytes each in one C-level
    pass, reinterpreted as two uint64 halves, and split into limbs with
    vectorized shifts — the only per-element Python cost is ``int.to_bytes``.
    """
    if not isinstance(elements, (list, tuple)):
        elements = list(elements)
    if not elements:
        return np.zeros((0, N_LIMBS), dtype=np.int64)
    buffer = b"".join([value.to_bytes(16, "little") for value in elements])
    return limbs_from_le16(buffer)


def limbs_from_le16(buffer: bytes) -> np.ndarray:
    """Unpack concatenated 16-byte little-endian elements into limbs."""
    if not buffer:
        return np.zeros((0, N_LIMBS), dtype=np.int64)
    halves = np.frombuffer(buffer, dtype="<u8").reshape(-1, 2)
    lo, hi = halves[:, 0], halves[:, 1]
    out = np.empty((halves.shape[0], N_LIMBS), dtype=np.int64)
    out[:, 0] = (lo & _MASK).astype(np.int64)
    out[:, 1] = ((lo >> 26) & _MASK).astype(np.int64)
    out[:, 2] = (((lo >> 52) | (hi << 12)) & _MASK).astype(np.int64)
    out[:, 3] = ((hi >> 14) & _MASK).astype(np.int64)
    out[:, 4] = ((hi >> 40) & _TOP_MASK).astype(np.int64)
    return out


def from_limbs(limbs: np.ndarray) -> list[int]:
    """Unpack a canonical (N, 5) limb array into a list of Python ints."""
    n = limbs.shape[0]
    if n == 0:
        return []
    u = limbs.astype(np.uint64)
    packed = np.empty((n, 2), dtype="<u8")
    packed[:, 0] = u[:, 0] | (u[:, 1] << 26) | ((u[:, 2] & 0xFFF) << 52)
    packed[:, 1] = (u[:, 2] >> 12) | (u[:, 3] << 14) | (u[:, 4] << 40)
    buffer = packed.tobytes()
    view = memoryview(buffer)
    return [int.from_bytes(view[i * 16 : i * 16 + 16], "little") for i in range(n)]


#: Magnitude bound for the int64 fast paths: |value| < 2^62 round-trips
#: through int64 with a sign bit and one safety bit to spare.
INT64_BOUND = 1 << 62
_SMALL_L2 = 1 << (62 - 2 * LIMB_BITS)  # limb-2 bound for values < 2^62


def from_signed_int64(values: np.ndarray) -> np.ndarray:
    """Pack signed int64 residues (|v| < 2^62) into canonical limbs.

    The fixed-point encoder's fast path: statistics encode to small signed
    integers, and ``v mod p`` is ``v`` for ``v >= 0`` and ``p - |v|``
    otherwise — the latter is a borrow-free limbwise subtraction from p's
    all-ones pattern, so no 127-bit intermediates ever materialize.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and int(np.abs(values).max()) >= INT64_BOUND:
        raise SMPCError("from_signed_int64 operand exceeds 2^62")
    magnitude = np.abs(values)
    out = np.empty((len(values), N_LIMBS), dtype=np.int64)
    out[:, 0] = magnitude & _MASK
    out[:, 1] = (magnitude >> 26) & _MASK
    out[:, 2] = magnitude >> 52
    out[:, 3] = 0
    out[:, 4] = 0
    negative = values < 0
    if negative.any():
        # p - |v|, borrow-free against the all-ones limb pattern; |v| == 0
        # must stay 0 (p maps to the zero residue).
        nonzero = negative & (values != 0)
        out[nonzero] = _P_LIMBS - out[nonzero]
    return out


def to_signed_int64(limbs: np.ndarray) -> np.ndarray | None:
    """Unpack canonical limbs into signed int64 residues, or None.

    Returns the centered representative (positive below p/2, negative
    above) when *every* element has magnitude below 2^62; otherwise None so
    callers fall back to the exact big-int path.  The decode hot path: no
    Python ints are built for national-scale result vectors.
    """
    if limbs.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    small_pos = (
        (limbs[:, 2] < _SMALL_L2) & (limbs[:, 3] == 0) & (limbs[:, 4] == 0)
    )
    complement = _P_LIMBS - limbs
    small_neg = (
        (complement[:, 2] < _SMALL_L2)
        & (complement[:, 3] == 0)
        & (complement[:, 4] == 0)
    )
    if not np.all(small_pos | small_neg):
        return None
    positive = limbs[:, 0] | (limbs[:, 1] << 26) | (limbs[:, 2] << 52)
    negative = complement[:, 0] | (complement[:, 1] << 26) | (complement[:, 2] << 52)
    return np.where(small_pos, positive, -negative)


def scalar_to_limbs(scalar: int) -> np.ndarray:
    """Decompose one canonical scalar into its five limbs (shape (5,))."""
    scalar = scalar % PRIME
    return np.array(
        [
            scalar & _MASK,
            (scalar >> 26) & _MASK,
            (scalar >> 52) & _MASK,
            (scalar >> 78) & _MASK,
            (scalar >> 104) & _TOP_MASK,
        ],
        dtype=np.int64,
    )


def zeros(length: int) -> np.ndarray:
    return np.zeros((length, N_LIMBS), dtype=np.int64)


# --------------------------------------------------------------- reduction


def reduce(z: np.ndarray) -> np.ndarray:
    """Carry-propagate a lazy 5-limb array (limbs < 2^62) into canonical form.

    Carries run limb 0 -> 4 and the carry out of bit 127 wraps to limb 0 with
    weight 1 (2^127 ≡ 1 mod p); a couple of passes converge because carries
    shrink geometrically.  Mutates and returns ``z``.
    """
    carry = z[:, 0] >> LIMB_BITS
    z[:, 0] &= _MASK
    z[:, 1] += carry
    carry = z[:, 1] >> LIMB_BITS
    z[:, 1] &= _MASK
    z[:, 2] += carry
    carry = z[:, 2] >> LIMB_BITS
    z[:, 2] &= _MASK
    z[:, 3] += carry
    carry = z[:, 3] >> LIMB_BITS
    z[:, 3] &= _MASK
    z[:, 4] += carry
    carry = z[:, 4] >> TOP_BITS
    z[:, 4] &= _TOP_MASK
    # The 2^127 wrap re-enters at limb 0; carries shrink geometrically, so
    # instead of a second full pass, cascade limb by limb until quiet.
    position = 0
    while np.any(carry):
        z[:, position] += carry
        if position < 4:
            carry = z[:, position] >> LIMB_BITS
            z[:, position] &= _MASK
            position += 1
        else:  # pragma: no cover - needs a carry surviving to the top again
            carry = z[:, 4] >> TOP_BITS
            z[:, 4] &= _TOP_MASK
            position = 0
    return _canonicalize(z)


def _canonicalize(z: np.ndarray) -> np.ndarray:
    """Map the residue-p pattern (all ones) to zero; assumes limbs masked."""
    # Cheap pre-screen: the pattern needs a saturated top limb, which random
    # residues hit with probability 2^-23 — skip the full row compare then.
    if not (z[:, 4] == _TOP_MASK).any():
        return z
    full = (z == _P_LIMBS).all(axis=1)
    if full.any():
        z[full] = 0
    return z


def _reduce_wide(z: np.ndarray) -> np.ndarray:
    """Reduce a 9-position schoolbook accumulator into canonical 5 limbs."""
    z[:, 0:4] += z[:, 5:9] << 3
    return reduce(z[:, 0:5])


# ------------------------------------------------------------- field ops


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return reduce(a + b)


def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # a + (p - b); p's limbs are all-ones so the limbwise difference never
    # borrows for canonical b.
    return reduce(a + (_P_LIMBS - b))


def neg(a: np.ndarray) -> np.ndarray:
    return _canonicalize(_P_LIMBS - a)


def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise product via schoolbook limb multiply + Mersenne fold."""
    n = a.shape[0]
    z = np.zeros((n, 2 * N_LIMBS - 1), dtype=np.int64)
    for i in range(N_LIMBS):
        z[:, i : i + N_LIMBS] += a[:, i : i + 1] * b
    return _reduce_wide(z)


def scale(a: np.ndarray, scalar: int) -> np.ndarray:
    """Multiply every element by one public scalar."""
    scalar = scalar % PRIME
    if scalar == 0:
        return zeros(a.shape[0])
    if scalar == 1:
        return a.copy()
    if scalar <= _MASK:
        # Single-limb scalar: products stay below 2^52, no fold needed.
        return reduce(a * scalar)
    limbs = scalar_to_limbs(scalar)
    z = np.zeros((a.shape[0], 2 * N_LIMBS - 1), dtype=np.int64)
    for i in range(N_LIMBS):
        if limbs[i]:
            z[:, i : i + N_LIMBS] += a * limbs[i]
    return _reduce_wide(z)


def add_scalar(a: np.ndarray, scalar: int) -> np.ndarray:
    return reduce(a + scalar_to_limbs(scalar))


def is_zero(a: np.ndarray) -> bool:
    """True when every element is the zero residue (canonical input)."""
    return not a.any()


# ----------------------------------------------------- lazy-reduction kernels


def vector_sum(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Sum several canonical limb arrays with one final carry pass."""
    if not arrays:
        raise SMPCError("vector_sum of zero vectors")
    acc = arrays[0].astype(np.int64, copy=True)
    for count, array in enumerate(arrays[1:], start=2):
        if array.shape[0] != acc.shape[0]:
            raise SMPCError("vector_sum length mismatch")
        acc += array
        if count % LAZY_ADD_LIMIT == 0:  # unreachable in practice; safety net
            reduce(acc)
    return reduce(acc)


def combine_small_weights(weights: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """Batched dot products: (P, T) small weights × (T, N, 5) → (P, N, 5).

    The Shamir share-evaluation shape: every party's share is the same
    T-term combination of coefficient vectors under different small integer
    weights (the evaluation-point powers).  One broadcast multiply-add per
    coefficient and a single carry pass over all P·N rows replace P separate
    combinations.  Caller guarantees ``weights.sum(axis=1).max() < 2^36`` so
    limb products accumulate inside int64.
    """
    acc = coeffs[0][None, :, :] * weights[:, 0, None, None]
    for t in range(1, coeffs.shape[0]):
        acc += coeffs[t][None, :, :] * weights[:, t, None, None]
    shape = acc.shape
    return reduce(acc.reshape(-1, N_LIMBS)).reshape(shape)


def linear_combination(
    scalars: Sequence[int], arrays: Sequence[np.ndarray]
) -> np.ndarray:
    """``sum_i scalars[i] * arrays[i]`` with lazy reduction.

    The dot-product shape of Lagrange interpolation and the SPDZ MAC check:
    scalar products accumulate in the 9-position schoolbook domain and a
    single fold + carry pass finishes the job.  Chunks of
    :data:`LAZY_MUL_LIMIT` terms keep the accumulator inside int64.
    """
    if len(scalars) != len(arrays):
        raise SMPCError("linear_combination arity mismatch")
    if not arrays:
        raise SMPCError("linear_combination of zero terms")
    n = arrays[0].shape[0]
    if len(scalars) <= LAZY_MUL_LIMIT and all(
        s <= _MASK or PRIME - s <= _MASK for s in scalars
    ):
        # All scalars are small or small-negative (Shamir point powers,
        # Lagrange weights like p - 1): single-limb products stay below
        # 2^52, so up to 32 terms accumulate in the canonical 5-limb domain
        # with no schoolbook widening.  A small-negative scalar contributes
        # as (p - a) * (p - s), the same residue with small limbs.
        acc: np.ndarray | None = None
        for scalar, array in zip(scalars, arrays):
            if array.shape[0] != n:
                raise SMPCError("linear_combination length mismatch")
            if scalar <= _MASK:
                term = array * scalar
            else:
                term = (_P_LIMBS - array) * (PRIME - scalar)
            acc = term if acc is None else acc + term
        return reduce(acc)
    wide = np.zeros((n, 2 * N_LIMBS - 1), dtype=np.int64)
    total: np.ndarray | None = None
    pending = 0
    for scalar, array in zip(scalars, arrays):
        if array.shape[0] != n:
            raise SMPCError("linear_combination length mismatch")
        limbs = scalar_to_limbs(scalar)
        for i in range(N_LIMBS):
            if limbs[i]:
                wide[:, i : i + N_LIMBS] += array * limbs[i]
        pending += 1
        if pending == LAZY_MUL_LIMIT:
            part = _reduce_wide(wide.copy())
            total = part if total is None else reduce(total + part)
            wide[:] = 0
            pending = 0
    if pending or total is None:
        part = _reduce_wide(wide)
        total = part if total is None else reduce(total + part)
    return total
