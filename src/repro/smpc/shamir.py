"""Shamir secret sharing over Z_p (the fast, honest-but-curious scheme).

A secret is the constant term of a random degree-t polynomial; party i holds
the evaluation at x = i + 1.  Any t+1 shares reconstruct via Lagrange
interpolation; t or fewer reveal nothing.  The paper deploys this scheme with
``t < n/2, t >= n/3`` as the fast option.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SMPCError, ThresholdError
from repro.smpc import field, limb
from repro.smpc.field import PRIME, FieldVector, finv


@dataclass
class ShamirShared:
    """A Shamir-shared vector: party i holds evaluations at point i+1."""

    shares: list[FieldVector]
    threshold: int

    def __post_init__(self) -> None:
        lengths = {len(s) for s in self.shares}
        if len(lengths) != 1:
            raise SMPCError("ragged Shamir sharing")
        if not 0 < self.threshold < len(self.shares):
            raise SMPCError(
                f"invalid threshold t={self.threshold} for n={len(self.shares)} parties"
            )

    @property
    def n_parties(self) -> int:
        return len(self.shares)

    def __len__(self) -> int:
        return len(self.shares[0])


def default_threshold(n_parties: int) -> int:
    """The paper's setting: the largest t with t < n/2 (and t >= n/3 when possible)."""
    return max(1, (n_parties - 1) // 2)


def share_vector(
    vector: FieldVector, n_parties: int, threshold: int, rng: random.Random
) -> ShamirShared:
    """Share each element with an independent random degree-t polynomial.

    Both kernels consume the RNG identically (element-major coefficient
    order) and produce identical shares; the numpy path samples the whole
    coefficient matrix in one batch and evaluates every polynomial at once
    with a vectorized Horner scheme over the limb kernel.
    """
    if threshold >= n_parties:
        raise SMPCError("threshold must be below the party count")
    if field.use_numpy(len(vector)):
        return _share_vector_batched(vector, n_parties, threshold, rng)
    shares = [FieldVector.zeros(len(vector)) for _ in range(n_parties)]
    for index, secret in enumerate(vector.elements):
        coefficients = [secret] + [rng.randrange(PRIME) for _ in range(threshold)]
        for party in range(n_parties):
            shares[party].elements[index] = _poly_eval(coefficients, party + 1)
    return ShamirShared(shares, threshold)


def _share_vector_batched(
    vector: FieldVector, n_parties: int, threshold: int, rng: random.Random
) -> ShamirShared:
    """Batched sharing: one RNG draw, vectorized Horner per party point.

    ``flat[i * threshold + j]`` is element i's degree-(j + 1) coefficient —
    exactly the order the reference per-element loop draws, so seeded share
    values match it bit for bit.
    """
    length = len(vector)
    flat = field._random_field_limbs(length * threshold, rng)
    coefficients = [vector] + [
        FieldVector._from_limbs(np.ascontiguousarray(flat[j::threshold]))
        for j in range(threshold)
    ]
    powers = [
        [pow(party + 1, j, PRIME) for j in range(threshold + 1)]
        for party in range(n_parties)
    ]
    if max(sum(row) for row in powers) < 1 << 36:
        # Evaluation-point powers are small (any realistic party count):
        # all parties' shares come out of one batched limb combination.
        stacked = np.stack([c._as_limbs() for c in coefficients])
        evaluated = limb.combine_small_weights(
            np.array(powers, dtype=np.int64), stacked
        )
        shares = [FieldVector._from_limbs(evaluated[p]) for p in range(n_parties)]
    else:  # pragma: no cover - needs ~2^9 parties at high threshold
        shares = [
            field.linear_combination(row, coefficients) for row in powers
        ]
    return ShamirShared(shares, threshold)


def _poly_eval(coefficients: Sequence[int], x: int) -> int:
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % PRIME
    return result


def lagrange_coefficients_at_zero(points: Sequence[int]) -> list[int]:
    """Lagrange basis coefficients evaluating the polynomial at x = 0."""
    coefficients = []
    for i, xi in enumerate(points):
        numerator = 1
        denominator = 1
        for j, xj in enumerate(points):
            if i == j:
                continue
            numerator = (numerator * (-xj)) % PRIME
            denominator = (denominator * (xi - xj)) % PRIME
        coefficients.append((numerator * finv(denominator)) % PRIME)
    return coefficients


def reconstruct(shared: ShamirShared, degree: int | None = None) -> FieldVector:
    """Interpolate the secret vector from the first ``degree + 1`` shares.

    ``degree`` defaults to the sharing threshold; after one local
    multiplication the underlying polynomial has degree ``2t`` and callers
    pass ``degree=2t`` (requires ``2t + 1 <= n``, i.e. t < n/2).
    """
    degree = shared.threshold if degree is None else degree
    needed = degree + 1
    if needed > shared.n_parties:
        raise ThresholdError(
            f"need {needed} shares to reconstruct a degree-{degree} sharing, "
            f"have {shared.n_parties}"
        )
    points = list(range(1, needed + 1))
    coefficients = lagrange_coefficients_at_zero(points)
    # The Lagrange combine is a dot product of public coefficients with the
    # share vectors; linear_combination dispatches to the lazy-reduction limb
    # kernel (one fold for the whole combine) or the python reference.
    return field.linear_combination(coefficients, shared.shares[:needed])


def reconstruct_from_subset(
    shares: Sequence[tuple[int, FieldVector]], threshold: int
) -> FieldVector:
    """Reconstruct from an explicit subset of (party_index, share) pairs."""
    if len(shares) < threshold + 1:
        raise ThresholdError(
            f"need {threshold + 1} shares, have {len(shares)}"
        )
    chosen = list(shares[: threshold + 1])
    points = [party + 1 for party, _ in chosen]
    coefficients = lagrange_coefficients_at_zero(points)
    return field.linear_combination(coefficients, [share for _, share in chosen])


def reshare(
    shared: ShamirShared,
    survivors: Sequence[int],
    rng: random.Random,
    new_threshold: int | None = None,
) -> ShamirShared:
    """Redistribute a sharing to a surviving party subset, without ever
    reconstructing the secret.

    The survivor re-split path after node loss: each surviving party ``i``
    re-shares its Lagrange-weighted share ``lambda_i * s_i`` among the
    survivors with a fresh random polynomial; summing the sub-sharings gives
    a new ``len(survivors)``-party sharing of the *same* secret (the weighted
    shares sum to it by interpolation), at threshold ``new_threshold``
    (default: the paper's setting for the new party count).  No coalition of
    ``new_threshold`` or fewer survivors learns anything new.

    Requires at least ``threshold + 1`` survivors — below that the secret is
    information-theoretically gone, and :class:`ThresholdError` is raised.
    """
    survivors = list(survivors)
    if len(set(survivors)) != len(survivors):
        raise SMPCError("duplicate survivor indices")
    if any(not 0 <= party < shared.n_parties for party in survivors):
        raise SMPCError("survivor index out of range")
    if len(survivors) < shared.threshold + 1:
        raise ThresholdError(
            f"need {shared.threshold + 1} survivors to reshare a threshold-"
            f"{shared.threshold} sharing, have {len(survivors)}"
        )
    n_new = len(survivors)
    threshold = default_threshold(n_new) if new_threshold is None else new_threshold
    if not 0 < threshold < n_new:
        raise SMPCError(f"invalid new threshold t={threshold} for n={n_new} survivors")
    points = [party + 1 for party in survivors]
    coefficients = lagrange_coefficients_at_zero(points)
    total: ShamirShared | None = None
    for coefficient, party in zip(coefficients, survivors):
        contribution = shared.shares[party].scale(coefficient)
        sub_sharing = share_vector(contribution, n_new, threshold, rng)
        total = sub_sharing if total is None else add(total, sub_sharing)
    assert total is not None
    return total


# --------------------------------------------------- local (linear) operators


def add(a: ShamirShared, b: ShamirShared) -> ShamirShared:
    """Share-wise addition (local, no communication)."""
    _check_compatible(a, b)
    return ShamirShared([x + y for x, y in zip(a.shares, b.shares)], a.threshold)


def sub(a: ShamirShared, b: ShamirShared) -> ShamirShared:
    """Share-wise subtraction (local)."""
    _check_compatible(a, b)
    return ShamirShared([x - y for x, y in zip(a.shares, b.shares)], a.threshold)


def scale(a: ShamirShared, scalar: int) -> ShamirShared:
    """Multiply by a public scalar (local)."""
    return ShamirShared([x.scale(scalar) for x in a.shares], a.threshold)


def add_public(a: ShamirShared, public: FieldVector) -> ShamirShared:
    """Adding a constant shifts every party's share (poly + c)."""
    return ShamirShared([x + public for x in a.shares], a.threshold)


def multiply_local(a: ShamirShared, b: ShamirShared) -> ShamirShared:
    """Share-wise product: a valid sharing of a*b at degree 2t.

    The result must be reconstructed with ``degree=2t`` or degree-reduced; it
    is how one final multiplication before an open is done cheaply.
    """
    _check_compatible(a, b)
    return ShamirShared([x * y for x, y in zip(a.shares, b.shares)], a.threshold)


def public_to_shared(public: FieldVector, n_parties: int, threshold: int) -> ShamirShared:
    """Deterministic (zero-polynomial) sharing of a public constant."""
    return ShamirShared([public.copy() for _ in range(n_parties)], threshold)


def _check_compatible(a: ShamirShared, b: ShamirShared) -> None:
    if a.n_parties != b.n_parties or a.threshold != b.threshold:
        raise SMPCError("incompatible Shamir sharings")
