"""Arithmetic in the prime field Z_p with p = 2^127 - 1.

All SMPC values are field elements.  The Mersenne prime 2^127 - 1 leaves
enough headroom for fixed-point encodings of statistics (80 magnitude bits,
wide enough for second-moment sums over national-scale caseloads) plus the
statistical-masking bits that secure comparison and truncation need,
matching the parameter regime of real SPDZ deployments.

Two interchangeable kernels implement the vector arithmetic:

* ``python`` — plain Python-int lists, the reference implementation.  Every
  operation is a transparent one-liner; differential tests hold the fast
  kernel to byte-exact agreement with it.
* ``numpy`` — ``(N, 5)`` int64 limb arrays with Mersenne folding
  (:mod:`repro.smpc.limb`), the hot path for national-scale vectors.

Selection: ``REPRO_SMPC_KERNEL=python|numpy|auto`` in the environment, or
:func:`set_kernel` for programmatic override (tests).  The default ``auto``
routes each operation by vector length (:data:`NUMPY_MIN_ELEMENTS`): bulk
aggregation vectors take the limb kernel, the short vectors inside
bit-decomposed comparison protocols stay on Python bignums, which beat
numpy's fixed dispatch cost at that size.  Both kernels produce
identical field elements for identical inputs — arithmetic in Z_p is exact —
and :meth:`FieldVector.random` consumes the seeded RNG stream identically
under either, so seeded runs are kernel-independent end to end.

A :class:`FieldVector` caches both representations and converts lazily;
accessing the public ``elements`` list invalidates the limb cache because
callers may mutate the list they receive.
"""

from __future__ import annotations

import os
import random
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SMPCError
from repro.smpc import limb

#: The field modulus (Mersenne prime 2^127 - 1).
PRIME = (1 << 127) - 1

#: Environment variable selecting the vector kernel.
KERNEL_ENV = "REPRO_SMPC_KERNEL"

_KERNELS = ("python", "numpy", "auto")
_kernel_override: str | None = None

#: In ``auto`` mode, vectors shorter than this use the python path: the limb
#: kernel's fixed per-op dispatch cost (~tens of numpy calls per reduction)
#: beats Python bignums only once a few hundred elements amortize it.  The
#: bit-decomposed comparison protocols live below this line; bulk secure
#: sums live far above it.  Results are identical either way.
NUMPY_MIN_ELEMENTS = 512


def set_kernel(name: str | None) -> str | None:
    """Override the kernel selection (``None`` restores the env/default).

    Returns the previous override so tests can restore it.
    """
    global _kernel_override
    if name is not None and name not in _KERNELS:
        raise SMPCError(f"unknown SMPC kernel {name!r}; choose from {_KERNELS}")
    previous = _kernel_override
    _kernel_override = name
    return previous


def active_kernel() -> str:
    """The kernel in effect: override, else $REPRO_SMPC_KERNEL, else auto."""
    if _kernel_override is not None:
        return _kernel_override
    value = os.environ.get(KERNEL_ENV, "").strip().lower()
    if not value:
        return "auto"
    if value not in _KERNELS:
        raise SMPCError(f"{KERNEL_ENV} must be one of {_KERNELS}, got {value!r}")
    return value


def use_numpy(length: int) -> bool:
    """Whether the limb kernel handles a *newly created* vector of ``length``.

    ``numpy`` and ``python`` force their path unconditionally (the
    differential suite relies on that); ``auto`` — the default — picks the
    limb kernel once a vector is long enough to amortize numpy dispatch.
    Existing vectors route per-operation via representation stickiness
    (:meth:`FieldVector._prefer_numpy`).
    """
    kernel = active_kernel()
    if kernel == "numpy":
        return True
    if kernel == "python":
        return False
    return length >= NUMPY_MIN_ELEMENTS


def fadd(a: int, b: int) -> int:
    """Field addition."""
    return (a + b) % PRIME


def fsub(a: int, b: int) -> int:
    """Field subtraction."""
    return (a - b) % PRIME


def fmul(a: int, b: int) -> int:
    """Field multiplication."""
    return (a * b) % PRIME


def fneg(a: int) -> int:
    """Field additive inverse."""
    return (-a) % PRIME


def finv(a: int) -> int:
    """Field multiplicative inverse (Fermat)."""
    if a % PRIME == 0:
        raise SMPCError("zero has no multiplicative inverse")
    return pow(a, PRIME - 2, PRIME)


def fpow(a: int, exponent: int) -> int:
    """Field exponentiation."""
    return pow(a, exponent, PRIME)


def random_field_elements(count: int, rng: random.Random) -> list[int]:
    """Draw ``count`` uniform field elements in one batch.

    Stream-identical to ``count`` sequential ``rng.randrange(PRIME)`` calls:
    CPython's ``randrange(n)`` is ``getrandbits(n.bit_length())`` with
    rejection of draws ``>= n``, which for the Mersenne modulus rejects only
    the all-ones pattern (probability 2^-127).  Calling ``getrandbits``
    directly skips ``randrange``'s per-call argument handling, which is the
    bulk of its cost at this batch shape; the regression suite pins the
    equivalence so chaos/trace determinism never depends on which path drew.
    """
    getrandbits = rng.getrandbits
    out = []
    append = out.append
    for _ in range(count):
        value = getrandbits(127)
        while value >= PRIME:  # pragma: no cover - probability 2^-127
            value = getrandbits(127)
        append(value)
    return out


#: Little-endian bytes of the one rejected 127-bit pattern (the value p).
_P_BYTES = PRIME.to_bytes(16, "little")


def _random_field_limbs(count: int, rng: random.Random) -> np.ndarray:
    """Draw ``count`` uniform field elements directly into limb form.

    Consumes the RNG stream exactly like :func:`random_field_elements` (same
    ``getrandbits(127)`` draws, same rejection) but serializes each draw to
    bytes in one comprehension, skipping the Python-int list entirely — the
    numpy kernel's share-sampling hot path.  The rejection case (a draw equal
    to p, probability 2^-127) is handled by snapshotting the RNG state up
    front and replaying the batch through the careful per-draw loop, so the
    stream stays identical to the reference even then.
    """
    state = rng.getstate()
    getrandbits = rng.getrandbits
    parts = [getrandbits(127).to_bytes(16, "little") for _ in range(count)]
    if _P_BYTES in parts:  # pragma: no cover - probability ~count * 2^-127
        rng.setstate(state)
        parts = []
        append = parts.append
        for _ in range(count):
            value = getrandbits(127)
            while value >= PRIME:
                value = getrandbits(127)
            append(value.to_bytes(16, "little"))
    return limb.limbs_from_le16(b"".join(parts))


def random_bit_elements(count: int, rng: random.Random) -> list[int]:
    """Draw ``count`` uniform bits, stream-identical to ``rng.randrange(2)``.

    ``randrange(2)`` draws ``getrandbits(2)`` (k = n.bit_length() = 2) and
    rejects values >= 2, so half the draws reject once on average; the loop
    below replicates that exactly.
    """
    getrandbits = rng.getrandbits
    out = []
    append = out.append
    for _ in range(count):
        value = getrandbits(2)
        while value >= 2:
            value = getrandbits(2)
        append(value)
    return out


class FieldVector:
    """A vector of field elements with element-wise operations.

    Internally either a list of Python ints (``python`` kernel, and the
    public ``elements`` view) or an ``(N, 5)`` int64 limb array (``numpy``
    kernel); conversions are lazy and cached.  The list returned by
    ``elements`` may be mutated by callers (the reference Shamir sharer
    does), so reading it drops the limb cache; mutating a previously
    obtained list *after* further field operations is unsupported.
    """

    __slots__ = ("_elements", "_limbs")

    def __init__(self, elements: Sequence[int]) -> None:
        self._elements: list[int] | None = [int(e) % PRIME for e in elements]
        self._limbs: np.ndarray | None = None

    @classmethod
    def zeros(cls, length: int) -> "FieldVector":
        return cls._raw([0] * length)

    @classmethod
    def random(cls, length: int, rng: random.Random) -> "FieldVector":
        """Uniform random vector (batched draw, see :func:`random_field_elements`).

        Both kernels consume the seeded RNG stream identically; the numpy
        kernel lands the draws straight in limb form.
        """
        if use_numpy(length):
            return cls._from_limbs(_random_field_limbs(length, rng))
        return cls._raw(random_field_elements(length, rng))

    @classmethod
    def from_signed_int64(cls, values: np.ndarray) -> "FieldVector":
        """Build a vector from signed int64 residues (|v| < 2^62).

        The fixed-point encoder's bridge: negative values map to ``p - |v|``.
        Under the numpy kernel the limbs are packed directly — no Python
        bignums materialize; the python kernel takes the transparent
        ``v % PRIME`` route.  Both produce identical field elements.
        """
        if use_numpy(len(values)):
            return cls._from_limbs(limb.from_signed_int64(values))
        return cls._raw([int(v) % PRIME for v in values])

    def to_signed_int64(self) -> np.ndarray | None:
        """Centered signed-int64 view, or ``None`` if any |value| >= 2^62.

        The decode bridge: elements below p/2 come back positive, elements
        above come back negative, without materializing Python ints under
        the numpy kernel.  Callers must fall back to the exact big-int path
        on ``None``.
        """
        if self._limbs is not None and self._elements is None:
            return limb.to_signed_int64(self._limbs)
        half = PRIME >> 1
        bound = limb.INT64_BOUND
        out = np.empty(len(self), dtype=np.int64)
        for i, value in enumerate(self._as_elements()):
            signed = value if value <= half else value - PRIME
            if not -bound < signed < bound:
                return None
            out[i] = signed
        return out

    @classmethod
    def _raw(cls, elements: list[int]) -> "FieldVector":
        vector = cls.__new__(cls)
        vector._elements = elements
        vector._limbs = None
        return vector

    @classmethod
    def _from_limbs(cls, limbs: np.ndarray) -> "FieldVector":
        vector = cls.__new__(cls)
        vector._elements = None
        vector._limbs = limbs
        return vector

    # ------------------------------------------------------- representations

    @property
    def elements(self) -> list[int]:
        """The vector as a list of Python ints (the public, mutable view)."""
        if self._elements is None:
            self._elements = limb.from_limbs(self._limbs)
        # The caller may mutate the list it gets; a cached limb view would
        # go stale silently, so it is dropped here.
        self._limbs = None
        return self._elements

    def _as_elements(self) -> list[int]:
        """Internal read-only view; keeps the limb cache alive."""
        if self._elements is None:
            self._elements = limb.from_limbs(self._limbs)
        return self._elements

    def _as_limbs(self) -> np.ndarray:
        if self._limbs is None:
            self._limbs = limb.to_limbs(self._elements)
        return self._limbs

    def copy(self) -> "FieldVector":
        """An independent copy (cheap: copies whichever cache is live)."""
        if self._limbs is not None:
            return FieldVector._from_limbs(self._limbs.copy())
        return FieldVector._raw(list(self._elements))

    # ------------------------------------------------------------- protocol

    def __len__(self) -> int:
        if self._elements is not None:
            return len(self._elements)
        return self._limbs.shape[0]

    def __iter__(self) -> Iterator[int]:
        return iter(self.elements)

    def __getitem__(self, index: int) -> int:
        return self._as_elements()[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldVector):
            return NotImplemented
        return self._as_elements() == other._as_elements()

    def _check_length(self, other: "FieldVector") -> None:
        if len(self) != len(other):
            raise SMPCError(f"length mismatch: {len(self)} vs {len(other)}")

    def _prefer_numpy(self, other: "FieldVector | None" = None) -> bool:
        """Per-operation kernel choice for existing vectors.

        In ``auto`` mode the limb kernel is used only when the vector is
        long enough AND an operand is already limb-backed: limb-born data
        (random shares, encoder output) stays on the fast path, while
        element-born data (the bit vectors of comparison protocols, whose
        consumers read ``elements`` every round) stays on Python bignums
        instead of paying a representation conversion per operation.
        """
        kernel = active_kernel()
        if kernel == "numpy":
            return True
        if kernel == "python":
            return False
        if len(self) < NUMPY_MIN_ELEMENTS:
            return False
        return self._limbs is not None or (
            other is not None and other._limbs is not None
        )

    # ------------------------------------------------------------ arithmetic

    def __add__(self, other: "FieldVector") -> "FieldVector":
        self._check_length(other)
        if self._prefer_numpy(other):
            return FieldVector._from_limbs(limb.add(self._as_limbs(), other._as_limbs()))
        return FieldVector._raw(
            [(a + b) % PRIME for a, b in zip(self._as_elements(), other._as_elements())]
        )

    def __sub__(self, other: "FieldVector") -> "FieldVector":
        self._check_length(other)
        if self._prefer_numpy(other):
            return FieldVector._from_limbs(limb.sub(self._as_limbs(), other._as_limbs()))
        return FieldVector._raw(
            [(a - b) % PRIME for a, b in zip(self._as_elements(), other._as_elements())]
        )

    def __mul__(self, other: "FieldVector") -> "FieldVector":
        self._check_length(other)
        if self._prefer_numpy(other):
            return FieldVector._from_limbs(limb.mul(self._as_limbs(), other._as_limbs()))
        return FieldVector._raw(
            [(a * b) % PRIME for a, b in zip(self._as_elements(), other._as_elements())]
        )

    def scale(self, scalar: int) -> "FieldVector":
        scalar = scalar % PRIME
        if self._prefer_numpy():
            return FieldVector._from_limbs(limb.scale(self._as_limbs(), scalar))
        return FieldVector._raw([(a * scalar) % PRIME for a in self._as_elements()])

    def negate(self) -> "FieldVector":
        if self._prefer_numpy():
            return FieldVector._from_limbs(limb.neg(self._as_limbs()))
        return FieldVector._raw([(-a) % PRIME for a in self._as_elements()])

    def add_scalar(self, scalar: int) -> "FieldVector":
        scalar = scalar % PRIME
        if self._prefer_numpy():
            return FieldVector._from_limbs(limb.add_scalar(self._as_limbs(), scalar))
        return FieldVector._raw([(a + scalar) % PRIME for a in self._as_elements()])

    # -------------------------------------------------------------- queries

    def is_zero(self) -> bool:
        """True when every element is zero (no materialization under numpy)."""
        if self._limbs is not None and self._elements is None:
            return limb.is_zero(self._limbs)
        return not any(self._as_elements())

    def take(self, indices: Sequence[int] | np.ndarray) -> "FieldVector":
        """Gather elements at ``indices`` (the bit-column reshape hot path)."""
        if self._prefer_numpy():
            return FieldVector._from_limbs(
                self._as_limbs()[np.asarray(indices, dtype=np.intp)]
            )
        elements = self._as_elements()
        return FieldVector._raw([elements[int(i)] for i in indices])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = self._as_elements()[:4]
        suffix = "..." if len(self) > 4 else ""
        return f"FieldVector({preview}{suffix}, n={len(self)})"


def vector_sum(vectors: Iterable[FieldVector]) -> FieldVector:
    """Element-wise sum of several equal-length vectors.

    Uses lazy modular reduction: under the numpy kernel limb accumulators
    absorb up to 2^36 canonical vectors before a single carry pass; under the
    python kernel elements are < 2^127, so bignum addition cannot lose
    information and one ``% PRIME`` per element at the end replaces one per
    element *per vector*.  This is the SMPC aggregation hot path — every
    share import and every reconstruction funnels through here.
    """
    iterator = iter(vectors)
    try:
        first = next(iterator)
    except StopIteration:
        raise SMPCError("vector_sum of zero vectors") from None
    if first._prefer_numpy():
        acc = first._as_limbs().astype(np.int64, copy=True)
        count = 1
        for vector in iterator:
            other = vector._as_limbs()
            if other.shape[0] != acc.shape[0]:
                raise SMPCError("vector_sum length mismatch")
            acc += other
            count += 1
            if count % limb.LAZY_ADD_LIMIT == 0:  # pragma: no cover - safety net
                limb.reduce(acc)
        return FieldVector._from_limbs(limb.reduce(acc))
    result = list(first._as_elements())
    for vector in iterator:
        other = vector._as_elements()
        if len(other) != len(result):
            raise SMPCError("vector_sum length mismatch")
        for i, value in enumerate(other):
            result[i] += value
    return FieldVector._raw([value % PRIME for value in result])


def linear_combination(scalars: Sequence[int], vectors: Sequence[FieldVector]) -> FieldVector:
    """``sum_i scalars[i] * vectors[i]`` — the Lagrange/MAC dot-product shape.

    Under the numpy kernel the scalar products accumulate lazily in the wide
    schoolbook domain with one fold at the end (:func:`limb.linear_combination`);
    the python path is the transparent fold of :meth:`FieldVector.scale`.
    """
    if len(scalars) != len(vectors):
        raise SMPCError("linear_combination arity mismatch")
    if not vectors:
        raise SMPCError("linear_combination of zero terms")
    if vectors[0]._prefer_numpy():
        return FieldVector._from_limbs(
            limb.linear_combination(
                [s % PRIME for s in scalars], [v._as_limbs() for v in vectors]
            )
        )
    length = len(vectors[0])
    result = [0] * length
    for scalar, vector in zip(scalars, vectors):
        scalar = scalar % PRIME
        elements = vector._as_elements()
        if len(elements) != length:
            raise SMPCError("linear_combination length mismatch")
        for i, value in enumerate(elements):
            result[i] = (result[i] + scalar * value) % PRIME
    return FieldVector._raw(result)
