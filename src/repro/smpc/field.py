"""Arithmetic in the prime field Z_p with p = 2^127 - 1.

All SMPC values are field elements.  The Mersenne prime 2^127 - 1 leaves
enough headroom for fixed-point encodings of statistics (80 magnitude bits,
wide enough for second-moment sums over national-scale caseloads) plus the
statistical-masking bits that secure comparison and truncation need,
matching the parameter regime of real SPDZ deployments.

Vectors of field elements are plain Python-int lists wrapped in
:class:`FieldVector`; element width exceeds what int64 numpy arrays can
multiply without overflow, and correctness beats vectorization here.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.errors import SMPCError

#: The field modulus (Mersenne prime 2^127 - 1).
PRIME = (1 << 127) - 1


def fadd(a: int, b: int) -> int:
    """Field addition."""
    return (a + b) % PRIME


def fsub(a: int, b: int) -> int:
    """Field subtraction."""
    return (a - b) % PRIME


def fmul(a: int, b: int) -> int:
    """Field multiplication."""
    return (a * b) % PRIME


def fneg(a: int) -> int:
    """Field additive inverse."""
    return (-a) % PRIME


def finv(a: int) -> int:
    """Field multiplicative inverse (Fermat)."""
    if a % PRIME == 0:
        raise SMPCError("zero has no multiplicative inverse")
    return pow(a, PRIME - 2, PRIME)


def fpow(a: int, exponent: int) -> int:
    """Field exponentiation."""
    return pow(a, exponent, PRIME)


class FieldVector:
    """A vector of field elements with element-wise operations."""

    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[int]) -> None:
        self.elements = [int(e) % PRIME for e in elements]

    @classmethod
    def zeros(cls, length: int) -> "FieldVector":
        vector = cls.__new__(cls)
        vector.elements = [0] * length
        return vector

    @classmethod
    def random(cls, length: int, rng: random.Random) -> "FieldVector":
        vector = cls.__new__(cls)
        vector.elements = [rng.randrange(PRIME) for _ in range(length)]
        return vector

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[int]:
        return iter(self.elements)

    def __getitem__(self, index: int) -> int:
        return self.elements[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldVector):
            return NotImplemented
        return self.elements == other.elements

    def _check_length(self, other: "FieldVector") -> None:
        if len(self) != len(other):
            raise SMPCError(f"length mismatch: {len(self)} vs {len(other)}")

    def __add__(self, other: "FieldVector") -> "FieldVector":
        self._check_length(other)
        return FieldVector._raw([(a + b) % PRIME for a, b in zip(self.elements, other.elements)])

    def __sub__(self, other: "FieldVector") -> "FieldVector":
        self._check_length(other)
        return FieldVector._raw([(a - b) % PRIME for a, b in zip(self.elements, other.elements)])

    def __mul__(self, other: "FieldVector") -> "FieldVector":
        self._check_length(other)
        return FieldVector._raw([(a * b) % PRIME for a, b in zip(self.elements, other.elements)])

    def scale(self, scalar: int) -> "FieldVector":
        scalar = scalar % PRIME
        return FieldVector._raw([(a * scalar) % PRIME for a in self.elements])

    def negate(self) -> "FieldVector":
        return FieldVector._raw([(-a) % PRIME for a in self.elements])

    def add_scalar(self, scalar: int) -> "FieldVector":
        scalar = scalar % PRIME
        return FieldVector._raw([(a + scalar) % PRIME for a in self.elements])

    @classmethod
    def _raw(cls, elements: list[int]) -> "FieldVector":
        vector = cls.__new__(cls)
        vector.elements = elements
        return vector

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = self.elements[:4]
        suffix = "..." if len(self.elements) > 4 else ""
        return f"FieldVector({preview}{suffix}, n={len(self)})"


def vector_sum(vectors: Iterable[FieldVector]) -> FieldVector:
    """Element-wise sum of several equal-length vectors.

    Uses lazy modular reduction: elements are < 2^127, so Python's bignum
    addition cannot lose information, and one ``% PRIME`` per element at the
    end replaces one per element *per vector*.  This is the SMPC aggregation
    hot path — every share import and every reconstruction funnels through
    here — and modular reduction of 127-bit values dominates its cost.
    """
    iterator = iter(vectors)
    try:
        total = next(iterator)
    except StopIteration:
        raise SMPCError("vector_sum of zero vectors") from None
    result = list(total.elements)
    for vector in iterator:
        other = vector.elements
        if len(other) != len(result):
            raise SMPCError("vector_sum length mismatch")
        for i, value in enumerate(other):
            result[i] += value
    return FieldVector._raw([value % PRIME for value in result])
