"""Fixed-point encoding of reals into the prime field.

SPDZ-style engines compute over integers; reals are scaled by 2^f and
negatives are represented as p - |x|.  The magnitude bound (2^L) matters for
the secure-comparison protocol: masked opens are statistically hiding only
when the mask has ``kappa`` extra bits beyond L, and L + kappa + 1 must stay
below the field size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SMPCError
from repro.smpc.field import PRIME

#: Default fractional bits.
DEFAULT_FRACTIONAL_BITS = 16
#: Default magnitude bits (values encode into [-2^L, 2^L)).  80 bits leave a
#: real-valued range of ±2^64 — enough for second-moment sums over national-
#: scale caseloads — while 80 + 40 + 2 still fits the 127-bit field.
DEFAULT_MAGNITUDE_BITS = 80
#: Statistical-security bits for masked opens.
STATISTICAL_BITS = 40


class FixedPointEncoder:
    """Encode/decode reals as field elements with a fixed scale."""

    def __init__(
        self,
        fractional_bits: int = DEFAULT_FRACTIONAL_BITS,
        magnitude_bits: int = DEFAULT_MAGNITUDE_BITS,
    ) -> None:
        if magnitude_bits + STATISTICAL_BITS + 2 >= PRIME.bit_length():
            raise SMPCError("magnitude + statistical bits exceed field capacity")
        if fractional_bits >= magnitude_bits:
            raise SMPCError("fractional bits must be below magnitude bits")
        self.fractional_bits = fractional_bits
        self.magnitude_bits = magnitude_bits
        self.scale = 1 << fractional_bits
        self.bound = 1 << magnitude_bits

    def encode(self, value: float) -> int:
        """Encode one real into the field; raises if out of range."""
        scaled = int(round(float(value) * self.scale))
        if abs(scaled) >= self.bound:
            raise SMPCError(
                f"value {value} exceeds fixed-point range "
                f"(±2^{self.magnitude_bits - self.fractional_bits})"
            )
        return scaled % PRIME

    def decode(self, element: int) -> float:
        """Decode one field element back to a real."""
        element = element % PRIME
        if element > PRIME // 2:
            signed = element - PRIME
        else:
            signed = element
        return signed / self.scale

    def encode_vector(self, values: Sequence[float] | np.ndarray) -> list[int]:
        return [self.encode(v) for v in np.asarray(values, dtype=np.float64).ravel()]

    def decode_vector(self, elements: Sequence[int]) -> np.ndarray:
        return np.array([self.decode(e) for e in elements], dtype=np.float64)

    def encode_int(self, value: int) -> int:
        """Encode an integer without scaling (for counts and unions)."""
        if abs(int(value)) >= self.bound:
            raise SMPCError(f"integer {value} exceeds fixed-point range")
        return int(value) % PRIME

    def decode_int(self, element: int) -> int:
        element = element % PRIME
        if element > PRIME // 2:
            return element - PRIME
        return element
