"""Fixed-point encoding of reals into the prime field.

SPDZ-style engines compute over integers; reals are scaled by 2^f and
negatives are represented as p - |x|.  The magnitude bound (2^L) matters for
the secure-comparison protocol: masked opens are statistically hiding only
when the mask has ``kappa`` extra bits beyond L, and L + kappa + 1 must stay
below the field size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SMPCError
from repro.smpc import limb
from repro.smpc.field import PRIME, FieldVector

#: Default fractional bits.
DEFAULT_FRACTIONAL_BITS = 16
#: Default magnitude bits (values encode into [-2^L, 2^L)).  80 bits leave a
#: real-valued range of ±2^64 — enough for second-moment sums over national-
#: scale caseloads — while 80 + 40 + 2 still fits the 127-bit field.
DEFAULT_MAGNITUDE_BITS = 80
#: Statistical-security bits for masked opens.
STATISTICAL_BITS = 40


class FixedPointEncoder:
    """Encode/decode reals as field elements with a fixed scale."""

    def __init__(
        self,
        fractional_bits: int = DEFAULT_FRACTIONAL_BITS,
        magnitude_bits: int = DEFAULT_MAGNITUDE_BITS,
    ) -> None:
        if magnitude_bits + STATISTICAL_BITS + 2 >= PRIME.bit_length():
            raise SMPCError("magnitude + statistical bits exceed field capacity")
        if fractional_bits >= magnitude_bits:
            raise SMPCError("fractional bits must be below magnitude bits")
        self.fractional_bits = fractional_bits
        self.magnitude_bits = magnitude_bits
        self.scale = 1 << fractional_bits
        self.bound = 1 << magnitude_bits

    def encode(self, value: float) -> int:
        """Encode one real into the field; raises if out of range."""
        scaled = int(round(float(value) * self.scale))
        if abs(scaled) >= self.bound:
            raise SMPCError(
                f"value {value} exceeds fixed-point range "
                f"(±2^{self.magnitude_bits - self.fractional_bits})"
            )
        return scaled % PRIME

    def decode(self, element: int) -> float:
        """Decode one field element back to a real."""
        element = element % PRIME
        if element > PRIME // 2:
            signed = element - PRIME
        else:
            signed = element
        return signed / self.scale

    def encode_vector(self, values: Sequence[float] | np.ndarray) -> list[int]:
        return [self.encode(v) for v in np.asarray(values, dtype=np.float64).ravel()]

    def decode_vector(self, elements: Sequence[int]) -> np.ndarray:
        return np.array([self.decode(e) for e in elements], dtype=np.float64)

    def encode_to_field_vector(self, values: Sequence[float] | np.ndarray) -> FieldVector:
        """Vectorized :meth:`encode` of a whole array into a FieldVector.

        Bit-exact with the scalar path: the scale is a power of two, so the
        float multiply is an exact exponent shift and ``np.rint`` applies the
        same round-half-even rule as Python's ``round``.  Non-finite inputs
        or magnitudes at 2^62 and beyond take the scalar reference path so
        range errors surface identically.
        """
        array = np.asarray(values, dtype=np.float64).ravel()
        scaled = array * self.scale
        limit = float(min(self.bound, limb.INT64_BOUND))
        if array.size and np.all(np.isfinite(scaled)):
            rounded = np.rint(scaled)
            if np.all(np.abs(rounded) < limit):
                return FieldVector.from_signed_int64(rounded.astype(np.int64))
        return FieldVector(self.encode_vector(array))

    def decode_field_vector(self, vector: FieldVector) -> np.ndarray:
        """Vectorized :meth:`decode` of an opened FieldVector.

        Uses the centered signed-int64 view when every magnitude is below
        2^62 (always true for in-range statistics); division by the
        power-of-two scale is an exact exponent shift, so results match the
        scalar decode bit for bit.  Falls back to the scalar path otherwise.
        """
        signed = vector.to_signed_int64()
        if signed is None:
            return self.decode_vector(vector.elements)
        return signed.astype(np.float64) / self.scale

    def encode_ints_to_field_vector(self, values: Sequence[int] | np.ndarray) -> FieldVector:
        """Vectorized ``encode_int(int(round(v)))`` (counts and unions).

        Float inputs are rounded half-even like the scalar ``round``;
        out-of-int64-range or non-finite inputs fall back to the scalar path
        so errors surface identically.
        """
        array = np.asarray(values).ravel()
        limit = min(self.bound, limb.INT64_BOUND)
        if array.size and np.issubdtype(array.dtype, np.floating):
            rounded = np.rint(array)
            with np.errstate(invalid="ignore"):
                small = np.isfinite(rounded) & (np.abs(rounded) < float(limit))
            if np.all(small):
                return FieldVector.from_signed_int64(rounded.astype(np.int64))
        elif (
            array.size
            and np.issubdtype(array.dtype, np.integer)
            and np.all(np.abs(array) < limit)
        ):
            return FieldVector.from_signed_int64(array.astype(np.int64))
        if array.size and np.issubdtype(array.dtype, np.floating):
            return FieldVector([self.encode_int(int(round(float(v)))) for v in array])
        return FieldVector([self.encode_int(int(v)) for v in array])

    def decode_ints_from_field_vector(self, vector: FieldVector) -> np.ndarray | list[int]:
        """Vectorized :meth:`decode_int` of an opened FieldVector."""
        signed = vector.to_signed_int64()
        if signed is None:
            return [self.decode_int(e) for e in vector.elements]
        return signed

    def encode_int(self, value: int) -> int:
        """Encode an integer without scaling (for counts and unions)."""
        if abs(int(value)) >= self.bound:
            raise SMPCError(f"integer {value} exceeds fixed-point range")
        return int(value) % PRIME

    def decode_int(self, element: int) -> int:
        element = element % PRIME
        if element > PRIME // 2:
            return element - PRIME
        return element
