"""The online SMPC protocols: FT (SPDZ-style) and Shamir.

Both protocols expose the same operation set — input, linear ops, Beaver
multiplication, open, secure comparison (LTZ), min/max folds, and disjoint
union — over their respective share representations.  A
:class:`CommunicationMeter` counts rounds and field elements exchanged; the
E4 benchmark derives the paper's FT-vs-Shamir cost ordering from it and from
wall-clock time.

Secure comparison uses the statistically-masked-open construction: to test
``x < 0`` for |x| < 2^L, open ``c = x + 2^L + r`` where ``r`` is a shared
random of L + kappa bits with bitwise sharings; then ``floor((c-r)/2^L) = C -
R - u`` with ``C, c'`` public digits of ``c``, ``R`` the linear combination of
r's high bits, and ``u = BitLT(c', r')`` computed with one secure
multiplication per bit.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Generic, Sequence, TypeVar

import numpy as np

from repro.errors import SMPCError
from repro.smpc import additive, shamir
from repro.smpc.encoding import STATISTICAL_BITS, FixedPointEncoder
from repro.smpc.field import PRIME, FieldVector, vector_sum
from repro.smpc.triples import TrustedDealer

S = TypeVar("S")


@dataclass
class CommunicationMeter:
    """Rounds and field elements exchanged during the online phase."""

    rounds: int = 0
    elements: int = 0

    def record(self, rounds: int, elements: int) -> None:
        self.rounds += rounds
        self.elements += elements

    @property
    def bytes_sent(self) -> int:
        """Approximate bytes (16 bytes per 127-bit field element)."""
        return self.elements * 16

    def reset(self) -> None:
        self.rounds = 0
        self.elements = 0


class Protocol(abc.ABC, Generic[S]):
    """Common operation set over a share representation ``S``."""

    name: str = "abstract"

    def __init__(
        self,
        n_parties: int,
        dealer: TrustedDealer | None = None,
        encoder: FixedPointEncoder | None = None,
        seed: int | None = None,
    ) -> None:
        if n_parties < 2:
            raise SMPCError("SMPC needs at least two computing parties")
        self.n_parties = n_parties
        self.dealer = dealer or TrustedDealer(n_parties, seed)
        if self.dealer.n_parties != n_parties:
            raise SMPCError("dealer was built for a different party count")
        self.encoder = encoder or FixedPointEncoder()
        self.meter = CommunicationMeter()
        self._rng = random.Random(seed)
        # Comparison parameters: |operand| must stay below 2^comparison_bits.
        self.comparison_bits = self.encoder.magnitude_bits + 2
        self.mask_bits = self.comparison_bits + STATISTICAL_BITS
        # Truncation parameters: post-multiplication values carry two scale
        # factors, so the magnitude bound is wider and the statistical slack
        # narrower (still 2^-28 hiding within the 127-bit field).
        self.truncation_bits = min(self.comparison_bits + self.encoder.fractional_bits, 98)
        self.truncation_mask_bits = min(
            self.truncation_bits + STATISTICAL_BITS, PRIME.bit_length() - 1
        )

    # ----------------------------------------------------------- primitives

    @abc.abstractmethod
    def input_vector(self, values: FieldVector) -> S:
        """Secret-share a vector held by one input party."""

    @abc.abstractmethod
    def open(self, shared: S) -> FieldVector:
        """Reveal a shared vector to every party (with MAC check under FT)."""

    @abc.abstractmethod
    def add(self, a: S, b: S) -> S: ...

    @abc.abstractmethod
    def sub(self, a: S, b: S) -> S: ...

    @abc.abstractmethod
    def scale(self, a: S, scalar: int) -> S: ...

    @abc.abstractmethod
    def add_public(self, a: S, public: FieldVector) -> S: ...

    @abc.abstractmethod
    def mul(self, a: S, b: S) -> S:
        """Beaver multiplication (consumes one triple, two masked opens)."""

    @abc.abstractmethod
    def _random_bits(self, count: int) -> S:
        """Dealer-supplied shared random bits."""

    @abc.abstractmethod
    def _length(self, shared: S) -> int: ...

    @abc.abstractmethod
    def _take_bit_columns(self, bits: S, length: int, n_bits: int) -> list[S]:
        """Reshape a flat bit sharing into per-bit-position vectors."""

    # ------------------------------------------------------------ aggregates

    def sum_inputs(self, inputs: Sequence[S]) -> S:
        """Element-wise sum of several parties' shared vectors (linear).

        Subclasses override with a batched share-wise :func:`vector_sum`
        (one lazy reduction per party instead of one reduction per addend);
        the results are identical because the fold is associative in Z_p.
        """
        if not inputs:
            raise SMPCError("sum of zero inputs")
        total = inputs[0]
        for item in inputs[1:]:
            total = self.add(total, item)
        return total

    def product_inputs(self, inputs: Sequence[S]) -> S:
        """Element-wise product fold (one Beaver mult per extra input)."""
        if not inputs:
            raise SMPCError("product of zero inputs")
        total = inputs[0]
        for item in inputs[1:]:
            total = self.mul(total, item)
        return total

    def ltz(self, x: S) -> S:
        """Element-wise [x < 0] as a shared 0/1 vector.

        Operands must be bounded: |x| < 2^comparison_bits (guaranteed for
        fixed-point encoded values and their pairwise differences).
        """
        length = self._length(x)
        n_bits = self.mask_bits
        flat_bits = self._random_bits(length * n_bits)
        bit_columns = self._take_bit_columns(flat_bits, length, n_bits)
        # r = sum 2^i b_i ; r_low = low L bits ; R_high = high bits value.
        r = self._weighted_bit_sum(bit_columns, 0, n_bits, shift=0)
        shift = 1 << self.comparison_bits
        # c = x + 2^L + r, opened (statistically masked).
        masked = self.add_public(self.add(x, r), _constant_vector(shift, length))
        c_public = self.open(masked)
        c_low = [c % shift for c in c_public.elements]
        c_high = [c // shift for c in c_public.elements]
        # u = [c_low < r_low] via BitLT with public c bits.
        u = self._bit_lt(c_low, bit_columns[: self.comparison_bits])
        r_high = self._weighted_bit_sum(
            bit_columns, self.comparison_bits, n_bits, shift=self.comparison_bits
        )
        # floor((c - r)/2^L) = C - R_high - u  in {0, 1};  x >= 0  <=>  1.
        sign = self.add_public(
            self.sub(self.scale(r_high, PRIME - 1), u), FieldVector(c_high)
        )
        # ltz = 1 - sign
        return self.add_public(self.scale(sign, PRIME - 1), _constant_vector(1, length))

    def _weighted_bit_sum(self, bit_columns: list[S], start: int, stop: int, shift: int) -> S:
        total: S | None = None
        for i in range(start, stop):
            term = self.scale(bit_columns[i], 1 << (i - shift))
            total = term if total is None else self.add(total, term)
        assert total is not None
        return total

    def _bit_lt(self, public_values: list[int], bit_columns: list[S]) -> S:
        """[public < shared] where both are L-bit integers, LSB first bits.

        Recurrence from LSB to MSB: lt = r_i(1 - c_i) + (1 - xor_i) * lt.
        With c_i public, ``xor_i`` and ``r_i (1-c_i)`` are share-linear; only
        ``xor_i * lt`` needs a Beaver multiplication — one per bit.
        """
        length = len(public_values)
        lt: S | None = None
        for i, r_bits in enumerate(bit_columns):
            c_bits = [(v >> i) & 1 for v in public_values]
            c_vec = FieldVector(c_bits)
            # xor = c + r - 2cr ; with c public: xor = c + (1-2c) * r
            one_minus_2c = FieldVector([(1 - 2 * c) % PRIME for c in c_bits])
            xor = self.add_public(self._scale_by_vector(r_bits, one_minus_2c), c_vec)
            # base = r * (1 - c)
            base = self._scale_by_vector(r_bits, FieldVector([(1 - c) % PRIME for c in c_bits]))
            if lt is None:
                lt = base
            else:
                keep = self.sub(lt, self.mul(xor, lt))
                lt = self.add(base, keep)
        assert lt is not None
        return lt

    @abc.abstractmethod
    def _scale_by_vector(self, a: S, public: FieldVector) -> S:
        """Element-wise product with a public vector (local operation)."""

    def truncate(self, x: S, fractional_bits: int | None = None) -> S:
        """Secure floor division by 2^f (fixed-point rescaling after a
        multiplication).

        Standard masked-open truncation: open ``c = x + 2^L + r`` with a
        bitwise-shared statistical mask ``r``; then
        ``floor((c - r)/2^f) = (c >> f) - [r >> f] - [c mod 2^f < r mod 2^f]``
        is share-linear except for one BitLT (f Beaver multiplications).
        Exact floor semantics, so each truncation costs at most one unit of
        the fixed-point resolution.
        """
        f = self.encoder.fractional_bits if fractional_bits is None else fractional_bits
        length = self._length(x)
        L = self.truncation_bits
        n_bits = self.truncation_mask_bits
        flat_bits = self._random_bits(length * n_bits)
        bit_columns = self._take_bit_columns(flat_bits, length, n_bits)
        r = self._weighted_bit_sum(bit_columns, 0, n_bits, shift=0)
        shift = 1 << L
        masked = self.add_public(self.add(x, r), _constant_vector(shift, length))
        c_public = self.open(masked)
        step = 1 << f
        c_low = [c % step for c in c_public.elements]
        c_high = FieldVector([c // step for c in c_public.elements])
        u = self._bit_lt(c_low, bit_columns[:f])
        r_high = self._weighted_bit_sum(bit_columns, f, n_bits, shift=f)
        floored = self.add_public(
            self.sub(self.scale(r_high, PRIME - 1), u), c_high
        )
        # remove the 2^(L-f) offset introduced by the positivity shift
        return self.add_public(floored, _constant_vector(PRIME - (1 << (L - f)), length))

    def mul_fixed_point(self, a: S, b: S) -> S:
        """Multiply two fixed-point sharings and rescale back to one scale."""
        return self.truncate(self.mul(a, b))

    def product_fixed_point(self, inputs: Sequence[S]) -> S:
        """Element-wise fixed-point product fold with per-step truncation."""
        if not inputs:
            raise SMPCError("product of zero inputs")
        total = inputs[0]
        for item in inputs[1:]:
            total = self.mul_fixed_point(total, item)
        return total

    def minimum_inputs(self, inputs: Sequence[S]) -> S:
        """Element-wise minimum fold: min(a,b) = b + [a<b] * (a - b)."""
        if not inputs:
            raise SMPCError("minimum of zero inputs")
        result = inputs[0]
        for item in inputs[1:]:
            less = self.ltz(self.sub(result, item))  # [result < item]
            result = self.add(item, self.mul(less, self.sub(result, item)))
        return result

    def maximum_inputs(self, inputs: Sequence[S]) -> S:
        """Element-wise maximum fold: max(a,b) = a + [a<b] * (b - a)."""
        if not inputs:
            raise SMPCError("maximum of zero inputs")
        result = inputs[0]
        for item in inputs[1:]:
            less = self.ltz(self.sub(result, item))
            result = self.add(result, self.mul(less, self.sub(item, result)))
        return result

    def union_inputs(self, inputs: Sequence[S]) -> S:
        """Disjoint union of 0/1 membership vectors: [sum >= 1]."""
        total = self.sum_inputs(inputs)
        length = self._length(total)
        # sum >= 1  <=>  not (sum - 1 < 0)
        shifted = self.add_public(total, _constant_vector(PRIME - 1, length))
        below = self.ltz(shifted)
        return self.add_public(self.scale(below, PRIME - 1), _constant_vector(1, length))


def _constant_vector(value: int, length: int) -> FieldVector:
    return FieldVector([value % PRIME] * length)


# ------------------------------------------------------------------------ FT


class FTProtocol(Protocol[additive.AdditiveShared]):
    """Full-threshold SPDZ-style protocol: secure with abort against an
    active-malicious majority, at the cost of MACs on every share and MAC
    checks (extra rounds) on every open."""

    name = "full_threshold"

    def input_vector(self, values: FieldVector) -> additive.AdditiveShared:
        shared = additive.share_vector(values, self.n_parties, self.dealer.alpha, self._rng)
        # Input sharing: the input party sends one share (+MAC) to each party.
        self.meter.record(rounds=1, elements=2 * self.n_parties * len(values))
        return shared

    def open(self, shared: additive.AdditiveShared) -> FieldVector:
        opened = additive.reconstruct(shared)
        additive.check_macs(shared, opened, self.dealer.alpha_shares)
        # Broadcast of shares + MAC-check commit and open rounds.
        self.meter.record(rounds=3, elements=3 * self.n_parties * len(opened))
        return opened

    def add(self, a, b):
        return additive.add(a, b)

    def sub(self, a, b):
        return additive.sub(a, b)

    def scale(self, a, scalar: int):
        return additive.scale(a, scalar)

    def add_public(self, a, public: FieldVector):
        return additive.add_public(a, public, self.dealer.alpha_shares)

    def _scale_by_vector(self, a, public: FieldVector):
        return additive.AdditiveShared(
            [s * public for s in a.shares], [m * public for m in a.macs]
        )

    def mul(self, a, b):
        length = len(a.shares[0])
        triple = self.dealer.additive_triple(length)
        d = self.open(self.sub(a, triple.a))
        e = self.open(self.sub(b, triple.b))
        # z = c + d*b + e*a + d*e
        term_db = self._scale_by_vector(triple.b, d)
        term_ea = self._scale_by_vector(triple.a, e)
        z = additive.add(additive.add(triple.c, term_db), term_ea)
        return self.add_public(z, d * e)

    def sum_inputs(self, inputs: Sequence[additive.AdditiveShared]) -> additive.AdditiveShared:
        if not inputs:
            raise SMPCError("sum of zero inputs")
        if len(inputs) == 1:
            return inputs[0]
        return additive.AdditiveShared(
            [vector_sum([inp.shares[p] for inp in inputs]) for p in range(self.n_parties)],
            [vector_sum([inp.macs[p] for inp in inputs]) for p in range(self.n_parties)],
        )

    def _random_bits(self, count: int) -> additive.AdditiveShared:
        return self.dealer.additive_random_bits(count)

    def _length(self, shared: additive.AdditiveShared) -> int:
        return len(shared)

    def _take_bit_columns(self, bits, length: int, n_bits: int):
        columns = []
        for i in range(n_bits):
            idx = np.arange(i, length * n_bits, n_bits)
            columns.append(
                additive.AdditiveShared(
                    [s.take(idx) for s in bits.shares],
                    [m.take(idx) for m in bits.macs],
                )
            )
        return columns


# -------------------------------------------------------------------- Shamir


class ShamirProtocol(Protocol[shamir.ShamirShared]):
    """Shamir-sharing protocol (t < n/2): fast, honest-but-curious."""

    name = "shamir"

    def __init__(
        self,
        n_parties: int,
        threshold: int | None = None,
        dealer: TrustedDealer | None = None,
        encoder: FixedPointEncoder | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(n_parties, dealer, encoder, seed)
        self.threshold = threshold if threshold is not None else shamir.default_threshold(n_parties)
        if not self.threshold < n_parties / 2:
            raise SMPCError("Shamir multiplication needs t < n/2")

    def input_vector(self, values: FieldVector) -> shamir.ShamirShared:
        shared = shamir.share_vector(values, self.n_parties, self.threshold, self._rng)
        self.meter.record(rounds=1, elements=self.n_parties * len(values))
        return shared

    def open(self, shared: shamir.ShamirShared) -> FieldVector:
        opened = shamir.reconstruct(shared)
        self.meter.record(rounds=1, elements=self.n_parties * len(opened))
        return opened

    def add(self, a, b):
        return shamir.add(a, b)

    def sub(self, a, b):
        return shamir.sub(a, b)

    def scale(self, a, scalar: int):
        return shamir.scale(a, scalar)

    def add_public(self, a, public: FieldVector):
        return shamir.add_public(a, public)

    def _scale_by_vector(self, a, public: FieldVector):
        return shamir.ShamirShared([s * public for s in a.shares], a.threshold)

    def mul(self, a, b):
        length = len(a.shares[0])
        triple = self.dealer.shamir_triple(length, self.threshold)
        d = self.open(shamir.sub(a, triple.a))
        e = self.open(shamir.sub(b, triple.b))
        term_db = self._scale_by_vector(triple.b, d)
        term_ea = self._scale_by_vector(triple.a, e)
        z = shamir.add(shamir.add(triple.c, term_db), term_ea)
        return shamir.add_public(z, d * e)

    def sum_inputs(self, inputs: Sequence[shamir.ShamirShared]) -> shamir.ShamirShared:
        if not inputs:
            raise SMPCError("sum of zero inputs")
        if len(inputs) == 1:
            return inputs[0]
        for item in inputs[1:]:
            shamir._check_compatible(inputs[0], item)
        return shamir.ShamirShared(
            [vector_sum([inp.shares[p] for inp in inputs]) for p in range(self.n_parties)],
            inputs[0].threshold,
        )

    def _random_bits(self, count: int) -> shamir.ShamirShared:
        return self.dealer.shamir_random_bits(count, self.threshold)

    def _length(self, shared: shamir.ShamirShared) -> int:
        return len(shared)

    def _take_bit_columns(self, bits, length: int, n_bits: int):
        columns = []
        for i in range(n_bits):
            idx = np.arange(i, length * n_bits, n_bits)
            columns.append(
                shamir.ShamirShared(
                    [s.take(idx) for s in bits.shares],
                    bits.threshold,
                )
            )
        return columns
